"""Shared benchmark harness.

Every figure/table bench replays design points over the ten-game suite
through one session-cached :class:`~repro.sim.experiment.ExperimentRunner`
(so the expensive functional renders happen once per session) and prints
a paper-vs-measured table.  Tables are also written to
``benchmarks/results/`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — ``small`` (default, 512x256), ``paper``
  (1960x768, Table II), or ``WIDTHxHEIGHT``.
* ``REPRO_BENCH_GAMES`` — comma-separated aliases (default: all ten).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.config import GPUConfig
from repro.core.dtexl import DTexLConfig, PAPER_CONFIGURATIONS
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.workloads.games import game_aliases

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_config() -> GPUConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale == "paper":
        return GPUConfig()
    if scale == "small":
        return GPUConfig(screen_width=512, screen_height=256)
    width, height = scale.lower().split("x")
    return GPUConfig(screen_width=int(width), screen_height=int(height))


def _bench_games():
    games = os.environ.get("REPRO_BENCH_GAMES")
    if games:
        return [g.strip() for g in games.split(",")]
    return game_aliases()


class BenchHarness:
    """Session-wide cache of traces and suite results."""

    def __init__(self):
        self.config = _bench_config()
        self.games = _bench_games()
        self.runner = ExperimentRunner(self.config, games=self.games)
        self._suites: Dict[str, SuiteResult] = {}

    def suite(self, design: DTexLConfig) -> SuiteResult:
        """Suite results for a design point, cached by name."""
        if design.name not in self._suites:
            self._suites[design.name] = self.runner.run_suite(design)
        return self._suites[design.name]

    def named_suite(self, name: str) -> SuiteResult:
        return self.suite(PAPER_CONFIGURATIONS[name])

    def baseline(self) -> SuiteResult:
        return self.named_suite("baseline")

    def emit(self, name: str, table: str) -> None:
        """Print a result table and persist it under benchmarks/results/."""
        print()
        print(table)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")


@pytest.fixture(scope="session")
def harness() -> BenchHarness:
    return BenchHarness()
