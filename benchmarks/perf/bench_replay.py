"""Render- and replay-engine performance harness.

Measures the throughput of the pass-1 render front-end and the pass-2
replay engine (fast vs reference for both) over the game suite, plus
serial-vs-parallel sweep wall time, and writes the results as
``BENCH_replay.json`` at the repository root.  This is the evidence for
the fast-engine speedup targets and the CI perf-smoke regression gate.
The render leg also cross-checks the two engines' trace digests per
game, so the perf evidence doubles as a bit-exactness smoke test.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_replay.py
    PYTHONPATH=src python benchmarks/perf/bench_replay.py \
        --check benchmarks/perf/baseline_small.json

Environment knobs (matching the figure benches):

* ``REPRO_BENCH_SCALE``   — ``small`` (default, 512x256), ``paper``, or
  ``WIDTHxHEIGHT``.
* ``REPRO_BENCH_GAMES``   — comma-separated aliases (default: all ten).
* ``REPRO_BENCH_REPEATS`` — timing repeats, best-of (default 3).
* ``REPRO_BENCH_JOBS``    — worker count for the parallel sweep leg
  (default: 2, clamped to the host's CPU count — extra workers on a
  single-CPU host only add pool overhead).
* ``REPRO_BENCH_REGRESSION_FACTOR`` — regression tolerance for
  ``--check`` (default 2.0; raise it on noisy runners instead of
  deleting the gate).

``--check BASELINE.json`` compares the measured fast-engine throughput
against a committed baseline and exits non-zero on a more-than-2x
regression (generous on purpose: CI machines vary, order-of-magnitude
slowdowns don't).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT_NAME = "BENCH_replay.json"

#: A measured throughput below baseline * (1 / REGRESSION_FACTOR) fails.
#: Overridable per runner so a flaky CI host widens the gate instead of
#: switching it off.
REGRESSION_FACTOR = float(
    os.environ.get("REPRO_BENCH_REGRESSION_FACTOR", "2.0")
)

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint.sanitizer import trace_digest  # noqa: E402
from repro.config import GPUConfig  # noqa: E402
from repro.core.dtexl import BASELINE, DTEXL_BEST  # noqa: E402
from repro.sim.checkpoint import TraceCheckpointStore, trace_key  # noqa: E402
from repro.sim.driver import ENGINES as RENDER_ENGINES  # noqa: E402
from repro.sim.driver import FrameRenderer  # noqa: E402
from repro.sim.experiment import ExperimentRunner  # noqa: E402
from repro.sim.replay import ENGINES, TraceReplayer  # noqa: E402
from repro.sim.sweep import DesignSweep  # noqa: E402
from repro.workloads.games import GAMES, build_game, game_aliases  # noqa: E402

DESIGNS = (BASELINE, DTEXL_BEST)


def bench_config() -> GPUConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale == "paper":
        return GPUConfig()
    if scale == "small":
        return GPUConfig(screen_width=512, screen_height=256)
    width, height = scale.lower().split("x")
    return GPUConfig(screen_width=int(width), screen_height=int(height))


def bench_games():
    games = os.environ.get("REPRO_BENCH_GAMES")
    if games:
        return [g.strip() for g in games.split(",")]
    return game_aliases()


def render_traces(config, games):
    """Time pass-1 for both render engines over prebuilt workloads.

    Workloads are built once up front so the timings are pure render.
    Returns ``(traces, render_s, render_section)``: the fast-engine
    traces (reused by the replay legs), the total fast-engine render
    seconds, and the per-game ``render`` section for the JSON output —
    including a per-game digest cross-check of the two engines.
    """
    workloads = {g: build_game(g, config) for g in games}
    renderers = {e: FrameRenderer(config, engine=e) for e in RENDER_ENGINES}
    seconds = {e: {} for e in RENDER_ENGINES}
    traces = {}
    digests_match = True
    for game in games:
        digests = {}
        for engine in RENDER_ENGINES:
            t0 = time.perf_counter()
            trace, _ = renderers[engine].render(workloads[game])
            seconds[engine][game] = time.perf_counter() - t0
            digests[engine] = trace_digest(trace)
            if engine == "fast":
                traces[game] = trace
        digests_match &= len(set(digests.values())) == 1
    fast_s = sum(seconds["fast"].values())
    reference_s = sum(seconds["reference"].values())
    total_quads = sum(t.total_quads for t in traces.values())
    section = {
        "per_game_seconds": {
            e: {g: round(s, 4) for g, s in per_game.items()}
            for e, per_game in seconds.items()
        },
        "fast_seconds": round(fast_s, 4),
        "reference_seconds": round(reference_s, 4),
        "quads_per_s": round(total_quads / fast_s, 1),
        "engine_speedup": round(reference_s / fast_s, 3),
        "digests_match": digests_match,
    }
    return traces, fast_s, section


def time_engines(config, traces, repeats: int) -> dict:
    """Best-of-``repeats`` seconds per engine to replay every pair.

    Repeats are interleaved across engines (fast, reference, fast, ...)
    so slow drift of the host — frequency scaling, noisy neighbours —
    hits both engines alike instead of biasing whichever ran last.
    """
    replayers = {e: TraceReplayer(config, engine=e) for e in ENGINES}
    best = {e: float("inf") for e in ENGINES}
    for _ in range(repeats):
        for engine in ENGINES:
            replayer = replayers[engine]
            t0 = time.perf_counter()
            for trace in traces.values():
                for design in DESIGNS:
                    replayer.run(trace, design)
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best


def time_sweep(config, games, jobs: int, store) -> float:
    """Seconds for one small sweep grid over pre-rendered traces.

    Both the serial and the parallel leg load pass-1 from the same
    checkpoint store, so the comparison isolates the replay fan-out.
    """
    sweep = DesignSweep(
        groupings=("FG-xshift2", "CG-square"),
        assignments=("const",),
        orders=("zorder",),
        decoupled=(True,),
    )
    runner = ExperimentRunner(
        config, games=list(games), checkpoint_store=store
    )
    t0 = time.perf_counter()
    sweep.run(runner, jobs=jobs)
    return time.perf_counter() - t0


def run_bench() -> dict:
    config = bench_config()
    games = bench_games()
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    cpu_count = os.cpu_count() or 1
    jobs_env = os.environ.get("REPRO_BENCH_JOBS")
    # Default jobs clamp to the host: oversubscribing a single CPU only
    # measures pool overhead.  An explicit REPRO_BENCH_JOBS still wins.
    jobs = int(jobs_env) if jobs_env else max(1, min(2, cpu_count))

    print(f"rendering {len(games)} traces at "
          f"{config.screen_width}x{config.screen_height} "
          f"(fast + reference engines) ...")
    traces, render_s, render_section = render_traces(config, games)
    print(f"render fast {render_section['fast_seconds']:.3f} s, reference "
          f"{render_section['reference_seconds']:.3f} s "
          f"({render_section['engine_speedup']:.2f}x, digests_match="
          f"{render_section['digests_match']})")
    replays = len(traces) * len(DESIGNS)
    total_quads = sum(t.total_quads for t in traces.values()) * len(DESIGNS)
    total_lines = (
        sum(t.total_texture_lines for t in traces.values()) * len(DESIGNS)
    )

    engines = {}
    for engine, seconds in time_engines(config, traces, repeats).items():
        engines[engine] = {
            "seconds": round(seconds, 4),
            "quads_per_s": round(total_quads / seconds, 1),
            "lines_per_s": round(total_lines / seconds, 1),
        }
        print(f"engine {engine:9s}: {seconds:7.3f} s  "
              f"({total_quads / seconds:,.0f} quads/s)")
    speedup = engines["reference"]["seconds"] / engines["fast"]["seconds"]
    print(f"fast-engine speedup: {speedup:.2f}x")

    store_dir = tempfile.mkdtemp(prefix="repro-bench-traces-")
    try:
        store = TraceCheckpointStore(store_dir)
        for alias, trace in traces.items():
            store.save(trace_key(config, GAMES[alias].recipe), trace)
        serial_s = time_sweep(config, games, 1, store)
        if jobs > 1:
            parallel_s = time_sweep(config, games, jobs, store)
        else:
            # A second serial run would only measure noise; on a
            # single-CPU host (or with REPRO_BENCH_JOBS=1) the
            # parallel leg degenerates to the serial one.
            print("jobs=1 (clamped to host CPUs): parallel leg skipped")
            parallel_s = serial_s
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    print(f"sweep serial {serial_s:.3f} s, jobs={jobs} {parallel_s:.3f} s")

    return {
        "scale": f"{config.screen_width}x{config.screen_height}",
        "games": list(games),
        "repeats": repeats,
        # Numbers are only comparable on the same interpreter and host
        # class; stamp both so a diff of two BENCH files self-explains.
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
        "render_seconds": round(render_s, 4),
        "render": render_section,
        "replays_timed": replays,
        "total_quads": total_quads,
        "total_texture_lines": total_lines,
        "engines": engines,
        "fast_vs_reference_speedup": round(speedup, 3),
        "sweep": {
            "grid_points": 2,
            "serial_seconds": round(serial_s, 4),
            "jobs": jobs,
            "parallel_seconds": round(parallel_s, 4),
            "parallel_scaling": round(serial_s / parallel_s, 3),
        },
    }


def check_regression(result: dict, baseline_path: Path) -> int:
    """Exit code 1 on a > ``REGRESSION_FACTOR`` throughput regression.

    Gates both the replay engine and the render front-end against the
    committed baseline, and fails outright if the render leg's
    fast-vs-reference digest cross-check diverged — a perf win that
    changes the trace is a correctness bug, not a speedup.
    """
    baseline = json.loads(baseline_path.read_text())
    failed = 0
    gates = [("replay", result["engines"]["fast"]["quads_per_s"],
              baseline["engines"]["fast"]["quads_per_s"])]
    if "render" in baseline:
        gates.append(("render", result["render"]["quads_per_s"],
                      baseline["render"]["quads_per_s"]))
    for name, measured, base_tp in gates:
        floor = base_tp / REGRESSION_FACTOR
        print(f"{name} regression gate: measured {measured:,.0f} quads/s "
              f"vs baseline {base_tp:,.0f} (floor {floor:,.0f})")
        if measured < floor:
            print(f"FAIL: fast {name} throughput regressed more than "
                  f"{REGRESSION_FACTOR}x vs {baseline_path}",
                  file=sys.stderr)
            failed = 1
    if not result["render"]["digests_match"]:
        print("FAIL: fast and reference render engines produced "
              "different trace digests", file=sys.stderr)
        failed = 1
    if not failed:
        print("regression gates passed")
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", metavar="BASELINE.json", default=None,
        help="compare against a committed baseline and fail on a "
             f">{REGRESSION_FACTOR}x throughput regression",
    )
    parser.add_argument(
        "-o", "--output", default=str(REPO_ROOT / OUTPUT_NAME),
        help=f"output path (default: {OUTPUT_NAME} at the repo root)",
    )
    args = parser.parse_args(argv)

    result = run_bench()
    output = Path(args.output)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if args.check:
        return check_regression(result, Path(args.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
