"""Render- and replay-engine performance harness.

Measures the throughput of the pass-1 render front-end and the pass-2
replay engine (fast vs reference for both) over the game suite, plus
serial-vs-parallel sweep wall time and the memory/overlap profile of
the three tile-stream drivers, and writes the results as
``BENCH_replay.json`` at the repository root.  This is the evidence for
the fast-engine speedup targets and the CI perf-smoke regression gate.
The render leg also cross-checks the two engines' trace digests per
game, so the perf evidence doubles as a bit-exactness smoke test.

The streaming leg spawns one subprocess per driver (``ru_maxrss`` is
monotonic per process, so peak RSS cannot be measured twice in one
interpreter) and stamps end-to-end seconds, peak RSS, and a digest of
the :class:`~repro.sim.replay.RunResult` for the largest suite game.
``--check`` then gates on the batch-vs-streaming RSS ratio and on
result equality across drivers.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_replay.py
    PYTHONPATH=src python benchmarks/perf/bench_replay.py \
        --check benchmarks/perf/baseline_small.json

Environment knobs (matching the figure benches):

* ``REPRO_BENCH_SCALE``   — ``small`` (default, 512x256), ``paper``, or
  ``WIDTHxHEIGHT``.
* ``REPRO_BENCH_GAMES``   — comma-separated aliases (default: all ten).
* ``REPRO_BENCH_REPEATS`` — timing repeats, best-of (default 3).
* ``REPRO_BENCH_JOBS``    — worker count for the parallel sweep leg
  (default: 2, clamped to the host's CPU count — extra workers on a
  single-CPU host only add pool overhead).
* ``REPRO_BENCH_REGRESSION_FACTOR`` — regression tolerance for
  ``--check`` (default 2.0; raise it on noisy runners instead of
  deleting the gate).

``--check BASELINE.json`` compares the measured fast-engine throughput
against a committed baseline and exits non-zero on a more-than-2x
regression (generous on purpose: CI machines vary, order-of-magnitude
slowdowns don't).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import platform
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT_NAME = "BENCH_replay.json"

#: A measured throughput below baseline * (1 / REGRESSION_FACTOR) fails.
#: Overridable per runner so a flaky CI host widens the gate instead of
#: switching it off.
REGRESSION_FACTOR = float(
    os.environ.get("REPRO_BENCH_REGRESSION_FACTOR", "2.0")
)

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint.sanitizer import trace_digest  # noqa: E402
from repro.config import GPUConfig  # noqa: E402
from repro.core.dtexl import BASELINE, DTEXL_BEST  # noqa: E402
from repro.sim.checkpoint import TraceCheckpointStore, trace_key  # noqa: E402
from repro.sim.driver import ENGINES as RENDER_ENGINES  # noqa: E402
from repro.sim.driver import FrameRenderer  # noqa: E402
from repro.sim.experiment import ExperimentRunner  # noqa: E402
from repro.sim.replay import ENGINES, TraceReplayer  # noqa: E402
from repro.sim.stream import STREAM_DRIVERS  # noqa: E402
from repro.sim.sweep import DesignSweep  # noqa: E402
from repro.workloads.games import GAMES, build_game, game_aliases  # noqa: E402

DESIGNS = (BASELINE, DTEXL_BEST)

#: Acceptance target: streaming's peak-RSS growth must stay at least
#: this many times below batch's on the largest game.  Widened by
#: REPRO_BENCH_REGRESSION_FACTOR like the throughput gates (factor 2.0,
#: the default, keeps the full 2x target; factor 4.0 halves it).
RSS_RATIO_TARGET = 2.0

#: Streaming's end-to-end seconds must stay within this fraction of
#: batch's (same work, different interleaving).  Also widened by the
#: regression factor.
TIME_TOLERANCE = 0.10


def bench_config() -> GPUConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale == "paper":
        return GPUConfig()
    if scale == "small":
        return GPUConfig(screen_width=512, screen_height=256)
    width, height = scale.lower().split("x")
    return GPUConfig(screen_width=int(width), screen_height=int(height))


def bench_games():
    games = os.environ.get("REPRO_BENCH_GAMES")
    if games:
        return [g.strip() for g in games.split(",")]
    return game_aliases()


def render_traces(config, games):
    """Time pass-1 for both render engines over prebuilt workloads.

    Workloads are built once up front so the timings are pure render.
    Returns ``(traces, render_s, render_section)``: the fast-engine
    traces (reused by the replay legs), the total fast-engine render
    seconds, and the per-game ``render`` section for the JSON output —
    including a per-game digest cross-check of the two engines.
    """
    workloads = {g: build_game(g, config) for g in games}
    renderers = {e: FrameRenderer(config, engine=e) for e in RENDER_ENGINES}
    seconds = {e: {} for e in RENDER_ENGINES}
    traces = {}
    digests_match = True
    for game in games:
        digests = {}
        for engine in RENDER_ENGINES:
            t0 = time.perf_counter()
            trace, _ = renderers[engine].render(workloads[game])
            seconds[engine][game] = time.perf_counter() - t0
            digests[engine] = trace_digest(trace)
            if engine == "fast":
                traces[game] = trace
        digests_match &= len(set(digests.values())) == 1
    fast_s = sum(seconds["fast"].values())
    reference_s = sum(seconds["reference"].values())
    total_quads = sum(t.total_quads for t in traces.values())
    section = {
        "per_game_seconds": {
            e: {g: round(s, 4) for g, s in per_game.items()}
            for e, per_game in seconds.items()
        },
        "fast_seconds": round(fast_s, 4),
        "reference_seconds": round(reference_s, 4),
        "quads_per_s": round(total_quads / fast_s, 1),
        "engine_speedup": round(reference_s / fast_s, 3),
        "digests_match": digests_match,
    }
    return traces, fast_s, section


def time_engines(config, traces, repeats: int) -> dict:
    """Best-of-``repeats`` seconds per engine to replay every pair.

    Repeats are interleaved across engines (fast, reference, fast, ...)
    so slow drift of the host — frequency scaling, noisy neighbours —
    hits both engines alike instead of biasing whichever ran last.
    """
    replayers = {e: TraceReplayer(config, engine=e) for e in ENGINES}
    best = {e: float("inf") for e in ENGINES}
    for _ in range(repeats):
        for engine in ENGINES:
            replayer = replayers[engine]
            t0 = time.perf_counter()
            for trace in traces.values():
                for design in DESIGNS:
                    replayer.run(trace, design)
            best[engine] = min(best[engine], time.perf_counter() - t0)
    return best


def time_sweep(config, games, jobs: int, store) -> float:
    """Seconds for one small sweep grid over pre-rendered traces.

    Both the serial and the parallel leg load pass-1 from the same
    checkpoint store, so the comparison isolates the replay fan-out.
    """
    sweep = DesignSweep(
        groupings=("FG-xshift2", "CG-square"),
        assignments=("const",),
        orders=("zorder",),
        decoupled=(True,),
    )
    runner = ExperimentRunner(
        config, games=list(games), checkpoint_store=store
    )
    t0 = time.perf_counter()
    sweep.run(runner, jobs=jobs)
    return time.perf_counter() - t0


def result_digest(result) -> str:
    """Stable cross-process fingerprint of one :class:`RunResult`.

    The drivers promise bit-identical results, so a canonical-JSON hash
    of the dataclass tree is enough — any float that differs in the
    last ulp changes the digest.
    """
    payload = json.dumps(
        dataclasses.asdict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _self_peak_rss_kb() -> int:
    """This process's peak RSS in KiB.

    ``ru_maxrss`` survives fork+exec on Linux, so a probe spawned from
    the (by then large) bench process would inherit the parent's peak
    as its floor.  ``VmHWM`` tracks the *current* address space, which
    exec recreates, so it is read first; ``ru_maxrss`` is the fallback
    for hosts without procfs.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return kb // 1024 if sys.platform == "darwin" else kb


def run_probe(driver: str, game: str) -> int:
    """Child-process body: one render+replay under ``driver``.

    Prints a JSON record of seconds, peak RSS, and the result digest.
    RSS is sampled as the max of self and reaped children so the
    overlap driver's render worker is charged to its driver, and the
    baseline snapshot (taken after imports and config setup) lets the
    parent report working-set *growth* rather than interpreter
    overhead.
    """
    config = bench_config()
    baseline_kb = _self_peak_rss_kb()
    t0 = time.perf_counter()
    if driver == "batch":
        workload = build_game(game, config)
        trace, _ = FrameRenderer(config).render(workload)
        result = TraceReplayer(config).run(trace, DTEXL_BEST)
    else:
        runner = ExperimentRunner(config, games=[game], stream=driver)
        result = runner.run(game, DTEXL_BEST)
    seconds = time.perf_counter() - t0
    peak_kb = max(
        _self_peak_rss_kb(),
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    print(json.dumps({
        "seconds": round(seconds, 4),
        "peak_rss_kb": peak_kb,
        "baseline_rss_kb": baseline_kb,
        "delta_rss_kb": peak_kb - baseline_kb,
        "digest": result_digest(result),
    }))
    return 0


def time_streams(games, traces) -> dict:
    """Per-driver memory/time profile on the largest suite game.

    One subprocess per driver: ``ru_maxrss`` never decreases within a
    process, so the second driver measured in-process would inherit the
    first one's peak.  The largest game (by traced quads) is where the
    full-``FrameTrace`` working set hurts most, hence where the
    bounded-memory claim is tested.
    """
    largest = max(games, key=lambda g: traces[g].total_quads)
    drivers = {}
    for driver in STREAM_DRIVERS:
        proc = subprocess.run(
            [sys.executable, __file__,
             "--probe", driver, "--probe-game", largest],
            capture_output=True, text=True, check=True,
        )
        drivers[driver] = json.loads(proc.stdout.splitlines()[-1])
        print(f"stream {driver:9s}: {drivers[driver]['seconds']:7.3f} s  "
              f"peak {drivers[driver]['peak_rss_kb'] / 1024:6.1f} MiB  "
              f"(+{drivers[driver]['delta_rss_kb'] / 1024:.1f} MiB)")
    batch, streaming = drivers["batch"], drivers["streaming"]
    return {
        "game": largest,
        "game_quads": traces[largest].total_quads,
        "drivers": drivers,
        "results_match": len({d["digest"] for d in drivers.values()}) == 1,
        "rss_ratio_batch_over_streaming": round(
            batch["delta_rss_kb"] / max(1, streaming["delta_rss_kb"]), 3
        ),
        "time_ratio_streaming_over_batch": round(
            streaming["seconds"] / batch["seconds"], 3
        ),
    }


def run_bench() -> dict:
    config = bench_config()
    games = bench_games()
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    cpu_count = os.cpu_count() or 1
    jobs_env = os.environ.get("REPRO_BENCH_JOBS")
    # Default jobs clamp to the host: oversubscribing a single CPU only
    # measures pool overhead.  An explicit REPRO_BENCH_JOBS still wins.
    jobs = int(jobs_env) if jobs_env else max(1, min(2, cpu_count))

    print(f"rendering {len(games)} traces at "
          f"{config.screen_width}x{config.screen_height} "
          f"(fast + reference engines) ...")
    traces, render_s, render_section = render_traces(config, games)
    print(f"render fast {render_section['fast_seconds']:.3f} s, reference "
          f"{render_section['reference_seconds']:.3f} s "
          f"({render_section['engine_speedup']:.2f}x, digests_match="
          f"{render_section['digests_match']})")
    replays = len(traces) * len(DESIGNS)
    total_quads = sum(t.total_quads for t in traces.values()) * len(DESIGNS)
    total_lines = (
        sum(t.total_texture_lines for t in traces.values()) * len(DESIGNS)
    )

    engines = {}
    for engine, seconds in time_engines(config, traces, repeats).items():
        engines[engine] = {
            "seconds": round(seconds, 4),
            "quads_per_s": round(total_quads / seconds, 1),
            "lines_per_s": round(total_lines / seconds, 1),
        }
        print(f"engine {engine:9s}: {seconds:7.3f} s  "
              f"({total_quads / seconds:,.0f} quads/s)")
    speedup = engines["reference"]["seconds"] / engines["fast"]["seconds"]
    print(f"fast-engine speedup: {speedup:.2f}x")

    store_dir = tempfile.mkdtemp(prefix="repro-bench-traces-")
    try:
        store = TraceCheckpointStore(store_dir)
        for alias, trace in traces.items():
            store.save(trace_key(config, GAMES[alias].recipe), trace)
        serial_s = time_sweep(config, games, 1, store)
        if jobs > 1:
            parallel_s = time_sweep(config, games, jobs, store)
        else:
            # A second serial run would only measure noise; on a
            # single-CPU host (or with REPRO_BENCH_JOBS=1) the
            # parallel leg degenerates to the serial one.
            print("jobs=1 (clamped to host CPUs): parallel leg skipped")
            parallel_s = serial_s
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    print(f"sweep serial {serial_s:.3f} s, jobs={jobs} {parallel_s:.3f} s")

    streaming = time_streams(games, traces)
    print(f"stream drivers: results_match={streaming['results_match']}, "
          f"batch/streaming RSS growth "
          f"{streaming['rss_ratio_batch_over_streaming']:.2f}x")

    return {
        "scale": f"{config.screen_width}x{config.screen_height}",
        "games": list(games),
        "repeats": repeats,
        # Numbers are only comparable on the same interpreter and host
        # class; stamp both so a diff of two BENCH files self-explains.
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": cpu_count,
        },
        "render_seconds": round(render_s, 4),
        "render": render_section,
        "replays_timed": replays,
        "total_quads": total_quads,
        "total_texture_lines": total_lines,
        "engines": engines,
        "fast_vs_reference_speedup": round(speedup, 3),
        "sweep": {
            "grid_points": 2,
            "serial_seconds": round(serial_s, 4),
            "jobs": jobs,
            "parallel_seconds": round(parallel_s, 4),
            "parallel_scaling": round(serial_s / parallel_s, 3),
        },
        "streaming": streaming,
    }


def check_regression(result: dict, baseline_path: Path) -> int:
    """Exit code 1 on a > ``REGRESSION_FACTOR`` throughput regression.

    Gates both the replay engine and the render front-end against the
    committed baseline, and fails outright if the render leg's
    fast-vs-reference digest cross-check diverged — a perf win that
    changes the trace is a correctness bug, not a speedup.
    """
    baseline = json.loads(baseline_path.read_text())
    failed = 0
    gates = [("replay", result["engines"]["fast"]["quads_per_s"],
              baseline["engines"]["fast"]["quads_per_s"])]
    if "render" in baseline:
        gates.append(("render", result["render"]["quads_per_s"],
                      baseline["render"]["quads_per_s"]))
    for name, measured, base_tp in gates:
        floor = base_tp / REGRESSION_FACTOR
        print(f"{name} regression gate: measured {measured:,.0f} quads/s "
              f"vs baseline {base_tp:,.0f} (floor {floor:,.0f})")
        if measured < floor:
            print(f"FAIL: fast {name} throughput regressed more than "
                  f"{REGRESSION_FACTOR}x vs {baseline_path}",
                  file=sys.stderr)
            failed = 1
    if not result["render"]["digests_match"]:
        print("FAIL: fast and reference render engines produced "
              "different trace digests", file=sys.stderr)
        failed = 1
    failed |= check_streaming(result)
    if not failed:
        print("regression gates passed")
    return failed


def check_streaming(result: dict) -> int:
    """Gate the stream drivers: equal results, bounded memory, no slowdown.

    Result equality is a hard failure — a driver that drifts is a
    correctness bug.  The RSS and time gates scale with
    ``REPRO_BENCH_REGRESSION_FACTOR`` (at the default 2.0 they demand
    the full 2x memory win and 10% time window; a noisy runner can
    widen both without editing the bench).
    """
    streaming = result.get("streaming")
    if not streaming:
        return 0
    failed = 0
    if not streaming["results_match"]:
        print("FAIL: stream drivers produced different RunResult digests",
              file=sys.stderr)
        failed = 1
    rss_floor = RSS_RATIO_TARGET * 2.0 / REGRESSION_FACTOR
    rss_ratio = streaming["rss_ratio_batch_over_streaming"]
    print(f"streaming RSS gate: batch/streaming growth {rss_ratio:.2f}x "
          f"(floor {rss_floor:.2f}x)")
    if rss_ratio < rss_floor:
        print(f"FAIL: streaming's peak-RSS growth is only {rss_ratio:.2f}x "
              f"below batch's (need {rss_floor:.2f}x)", file=sys.stderr)
        failed = 1
    time_ceiling = 1.0 + TIME_TOLERANCE * REGRESSION_FACTOR / 2.0
    time_ratio = streaming["time_ratio_streaming_over_batch"]
    print(f"streaming time gate: streaming/batch {time_ratio:.2f}x "
          f"(ceiling {time_ceiling:.2f}x)")
    if time_ratio > time_ceiling:
        print(f"FAIL: streaming is {time_ratio:.2f}x batch's end-to-end "
              f"time (ceiling {time_ceiling:.2f}x)", file=sys.stderr)
        failed = 1
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", metavar="BASELINE.json", default=None,
        help="compare against a committed baseline and fail on a "
             f">{REGRESSION_FACTOR}x throughput regression",
    )
    parser.add_argument(
        "-o", "--output", default=str(REPO_ROOT / OUTPUT_NAME),
        help=f"output path (default: {OUTPUT_NAME} at the repo root)",
    )
    parser.add_argument(
        "--probe", choices=STREAM_DRIVERS, default=None,
        help="internal: run one driver's RSS/time probe and print JSON",
    )
    parser.add_argument(
        "--probe-game", default=None,
        help="game alias for --probe (required with it)",
    )
    args = parser.parse_args(argv)

    if args.probe:
        if not args.probe_game:
            parser.error("--probe requires --probe-game")
        return run_probe(args.probe, args.probe_game)

    result = run_bench()
    output = Path(args.output)
    output.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if args.check:
        return check_regression(result, Path(args.check))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
