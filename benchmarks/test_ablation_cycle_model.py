"""Ablation: analytic vs cycle-level shader-core timing.

The replay uses a closed-form SC model (``C + S/overlap``) that is
deliberately conservative about latency hiding (see
``repro.shader.shader_core``).  This bench re-times real per-subtile
warp populations from one game's trace against two bounds: the
event-driven **idealized** round-robin cycle model (maximum hiding) and
the **serial** bound ``C + S`` (no hiding).  The analytic model must lie
between them, closer to the idealized bound — that bracket is the error
bar on every cycle count in Figures 13 and 17.
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE
from repro.shader.cycle_model import CycleAccurateShaderCore
from repro.shader.shader_core import ShaderCore
from repro.sim.replay import TraceReplayer


def collect_subtiles(harness, game):
    """Warp-cost populations per (tile, SC) from a real replay."""
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.raster.pipeline import SubtileWork

    trace = harness.runner.trace_for(game)
    config = harness.config
    hierarchy = MemoryHierarchy(config)
    scheduler = BASELINE.build_scheduler(config)
    subtiles = []
    for step, tile in enumerate(scheduler.tiles):
        entry = trace.tiles.get(tile)
        if entry is None or not entry.quads:
            continue
        works = [SubtileWork() for _ in range(config.num_shader_cores)]
        perm = scheduler.permutation_at(step)
        for quad in entry.quads:
            core = perm[scheduler.slot_of(quad.qx, quad.qy)]
            stall = 0
            for line in quad.texture_lines:
                result = hierarchy.texture_access(core, line)
                if not result.l1_hit:
                    stall += result.latency
            works[core].add_quad(quad.compute_cycles, stall)
        subtiles.extend(w for w in works if w.num_quads)
    return subtiles


def test_ablation_cycle_model(harness, benchmark):
    game = harness.games[0]
    subtiles = collect_subtiles(harness, game)
    shader_config = harness.config.shader
    analytic = ShaderCore(shader_config)
    cycle = CycleAccurateShaderCore(shader_config)

    sample = subtiles[:: max(1, len(subtiles) // 200)]  # bound the cost
    analytic_total = cycle_total = serial_total = compute_total = 0
    for work in sample:
        warps = work.warp_costs()
        analytic_total += analytic.execute_subtile(warps).total_cycles
        cycle_total += cycle.execute_subtile(warps).total_cycles
        compute = sum(w.compute_cycles for w in warps)
        stall = sum(w.stall_cycles for w in warps)
        serial_total += compute + stall
        compute_total += compute
    above_ideal = (analytic_total - cycle_total) / cycle_total * 100.0
    below_serial = (serial_total - analytic_total) / serial_total * 100.0

    table = format_table(
        ["metric", "value"],
        [
            ["game", game],
            ["subtiles timed", len(sample)],
            ["compute-only lower bound", compute_total],
            ["idealized cycle model (max hiding)", cycle_total],
            ["analytic model (replay uses this)", analytic_total],
            ["serial bound (no hiding)", serial_total],
            ["analytic above idealized %", above_ideal],
            ["analytic below serial %", below_serial],
        ],
        title="Ablation: analytic SC model vs idealized/serial bounds",
    )
    harness.emit("ablation_cycle_model", table)

    # The analytic model sits strictly inside the bracket...
    assert cycle_total <= analytic_total <= serial_total
    # ...and much closer to the idealized machine than to serial.
    assert above_ideal < 35.0

    warps = sample[0].warp_costs()
    benchmark.pedantic(
        cycle.execute_subtile, args=(warps,), rounds=3, iterations=1,
    )
