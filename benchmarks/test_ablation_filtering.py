"""Ablation: texture filtering mode vs DTexL's benefit.

§II-B: adjacent quads re-access texels "more so in trilinear and
anisotropic filtering than in bilinear" — wider filters mean more
sharing between neighbouring quads, so DTexL's grouping should save at
least as much under trilinear as under nearest filtering.

Filtering changes the quads' cache-line footprints, so this ablation
re-renders (pass 1) per mode; it runs on a two-game subset to stay fast.
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.driver import FrameRenderer
from repro.sim.replay import TraceReplayer
from repro.texture.sampler import FilterMode, Sampler
from repro.workloads.games import build_game

MODES = [FilterMode.NEAREST, FilterMode.BILINEAR, FilterMode.TRILINEAR,
         FilterMode.ANISOTROPIC]


def test_ablation_filtering(harness, benchmark):
    games = harness.games[:2]
    dtexl = PAPER_CONFIGURATIONS["HLB-flp2"]
    replayer = TraceReplayer(harness.config)
    rows = []
    decreases = {}
    for mode in MODES:
        renderer = FrameRenderer(harness.config, Sampler(mode))
        base_total = dtexl_total = lines = 0
        for game in games:
            trace, _ = renderer.render(build_game(game, harness.config))
            lines += trace.total_texture_lines
            base_total += replayer.run(trace, BASELINE).l2_accesses
            dtexl_total += replayer.run(trace, dtexl).l2_accesses
        decrease = (base_total - dtexl_total) / base_total * 100.0
        decreases[mode] = decrease
        rows.append([mode.value, lines, base_total, dtexl_total, decrease])
    table = format_table(
        ["filter", "texture lines", "baseline L2", "DTexL L2", "% decrease"],
        rows,
        title=f"Ablation: texture filtering ({', '.join(games)}; wider "
              "filters = more cross-quad sharing for DTexL to exploit)",
    )
    harness.emit("ablation_filtering", table)

    # DTexL helps under every filter...
    assert all(d > 10.0 for d in decreases.values())
    # ...and trilinear gives it at least as much to work with as nearest.
    assert decreases[FilterMode.TRILINEAR] >= decreases[FilterMode.NEAREST] - 5.0

    trace = harness.runner.trace_for(games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, dtexl),
        rounds=2, iterations=1,
    )
