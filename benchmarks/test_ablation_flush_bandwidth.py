"""Ablation: Color-Buffer flush bandwidth, coupled vs decoupled.

The baseline serializes a whole-tile flush before Blending may start the
next tile; the Decoupled-Barrier architecture flushes per bank.  The
narrower the flush port, the bigger the serialization the decoupling
removes — this sweep quantifies that term of the speedup in isolation
(fine-grained grouping, so no caching or imbalance effects mix in).
"""

import dataclasses

from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.replay import TraceReplayer

FLUSH_BYTES_PER_CYCLE = [4, 8, 16, 32, 64]


def test_ablation_flush_bandwidth(harness, benchmark):
    fg_dec = PAPER_CONFIGURATIONS["FG-xshift2-decoupled"]
    rows = []
    gains = {}
    for bandwidth in FLUSH_BYTES_PER_CYCLE:
        config = dataclasses.replace(
            harness.config, flush_bytes_per_cycle=bandwidth
        )
        replayer = TraceReplayer(config)
        coupled = decoupled = 0
        for game in harness.games:
            trace = harness.runner.trace_for(game)
            coupled += replayer.run(trace, BASELINE).frame_cycles
            decoupled += replayer.run(trace, fg_dec).frame_cycles
        gain = coupled / decoupled
        gains[bandwidth] = gain
        rows.append([f"{bandwidth} B/cy", coupled, decoupled, gain])
    table = format_table(
        ["flush bandwidth", "coupled cycles", "decoupled cycles",
         "decoupling gain"],
        rows,
        title="Ablation: Color-Buffer flush bandwidth "
              "(16 B/cy is the default; narrower ports favour decoupling)",
    )
    harness.emit("ablation_flush_bandwidth", table)

    # Decoupling never hurts, and pays more the narrower the port.
    assert all(g >= 1.0 for g in gains.values())
    assert gains[4] >= gains[64]

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, fg_dec),
        rounds=2, iterations=1,
    )
