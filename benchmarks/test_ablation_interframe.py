"""Ablation: inter-frame texture reuse (animated sequences, warm caches).

The paper's workloads are animated: consecutive frames sample the same
textures from slightly shifted geometry.  This bench runs a short
animation with caches persisting across frames versus cold caches each
frame, under both the baseline and DTexL, to show (a) the warm-up
effect and (b) that DTexL's win survives in steady state.
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.multiframe import AnimationSimulator
from repro.workloads.animation import Animation

NUM_FRAMES = 3


def test_ablation_interframe(harness, benchmark):
    game = harness.games[0]
    animation = Animation.of_game(game, num_frames=NUM_FRAMES)
    simulator = AnimationSimulator(harness.config)
    dtexl = PAPER_CONFIGURATIONS["HLB-flp2"]

    warm_base = simulator.run(animation, BASELINE)
    cold_base = simulator.run(animation, BASELINE, cold_caches_each_frame=True)
    warm_dtexl = simulator.run(animation, dtexl)

    rows = []
    for index in range(NUM_FRAMES):
        rows.append(
            [
                index,
                cold_base.frames[index].dram_accesses,
                warm_base.frames[index].dram_accesses,
                warm_base.frames[index].l2_accesses,
                warm_dtexl.frames[index].l2_accesses,
            ]
        )
    rows.append(
        [
            "TOTAL",
            sum(f.dram_accesses for f in cold_base.frames),
            sum(f.dram_accesses for f in warm_base.frames),
            warm_base.total_l2_accesses,
            warm_dtexl.total_l2_accesses,
        ]
    )
    table = format_table(
        ["frame", "DRAM (cold)", "DRAM (warm)", "L2 baseline (warm)",
         "L2 DTexL (warm)"],
        rows,
        title=f"Ablation: {NUM_FRAMES}-frame animation of {game} "
              "(warm caches persist across frames)",
    )
    harness.emit("ablation_interframe", table)

    # Warm replay never fetches more from DRAM than cold-per-frame.
    assert sum(f.dram_accesses for f in warm_base.frames) <= sum(
        f.dram_accesses for f in cold_base.frames
    )
    # DTexL's L2 win survives the steady state.
    assert warm_dtexl.total_l2_accesses < warm_base.total_l2_accesses

    benchmark.pedantic(
        simulator.replayer.run,
        args=(harness.runner.trace_for(game), BASELINE),
        rounds=2, iterations=1,
    )
