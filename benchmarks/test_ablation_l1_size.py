"""Ablation: L1 texture cache size vs DTexL's benefit.

DTexL's win comes from removing block replication across the private
L1s — effectively recovering aggregated capacity.  Bigger L1s should
therefore shrink the *relative* L2-access gap between the baseline and
DTexL, and tiny L1s should widen it.  The frame traces are reused; only
the replay's cache geometry changes.
"""

import dataclasses

from repro.analysis.tables import format_table
from repro.config import KIB
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.replay import TraceReplayer

L1_SIZES_KIB = [8, 16, 32, 64]


def test_ablation_l1_size(harness, benchmark):
    dtexl = PAPER_CONFIGURATIONS["HLB-flp2"]
    rows = []
    decreases = {}
    for size_kib in L1_SIZES_KIB:
        config = dataclasses.replace(
            harness.config,
            texture_cache=dataclasses.replace(
                harness.config.texture_cache, size_bytes=size_kib * KIB
            ),
        )
        replayer = TraceReplayer(config)
        base_total = dtexl_total = 0
        for game in harness.games:
            trace = harness.runner.trace_for(game)
            base_total += replayer.run(trace, BASELINE).l2_accesses
            dtexl_total += replayer.run(trace, dtexl).l2_accesses
        decrease = (base_total - dtexl_total) / base_total * 100.0
        decreases[size_kib] = decrease
        rows.append([f"{size_kib} KiB", base_total, dtexl_total, decrease])
    table = format_table(
        ["L1 size", "baseline L2", "DTexL L2", "% decrease"],
        rows,
        title="Ablation: private L1 texture-cache size "
              "(16 KiB is the paper's Table II point)",
    )
    harness.emit("ablation_l1_size", table)

    # DTexL keeps a solid win at the paper's size...
    assert decreases[16] > 25.0
    # ...and the win does not grow when capacity stops being the problem.
    assert decreases[64] <= decreases[8] + 10.0

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, dtexl),
        rounds=2, iterations=1,
    )
