"""Ablation: shader-core occupancy (max warps in flight).

The paper attributes DTexL's speedup partly to TBR shader cores being
"more susceptible to memory latency due to periods of low occupancy".
This ablation sweeps ``max_warps``: with little multithreading the
caching win should translate into a large speedup; with abundant warps
latency hiding absorbs most of it.
"""

import dataclasses

from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.replay import TraceReplayer

WARP_COUNTS = [1, 2, 4, 8, 16]


def test_ablation_occupancy(harness, benchmark):
    dtexl = PAPER_CONFIGURATIONS["HLB-flp2"]
    rows = []
    speedups = {}
    for max_warps in WARP_COUNTS:
        config = dataclasses.replace(
            harness.config,
            shader=dataclasses.replace(
                harness.config.shader, max_warps=max_warps
            ),
        )
        replayer = TraceReplayer(config)
        base_cycles = dtexl_cycles = 0
        for game in harness.games:
            trace = harness.runner.trace_for(game)
            base_cycles += replayer.run(trace, BASELINE).frame_cycles
            dtexl_cycles += replayer.run(trace, dtexl).frame_cycles
        speedup = base_cycles / dtexl_cycles
        speedups[max_warps] = speedup
        rows.append([max_warps, base_cycles, dtexl_cycles, speedup])
    table = format_table(
        ["max warps", "baseline cycles", "DTexL cycles", "DTexL speedup"],
        rows,
        title="Ablation: SC occupancy (4 warps is the calibrated default; "
              "more multithreading hides more of the latency DTexL removes)",
    )
    harness.emit("ablation_occupancy", table)

    # DTexL always wins...
    assert all(s > 1.0 for s in speedups.values())
    # ...and wins most when the SC can hide the least.
    assert speedups[1] >= speedups[16]

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, BASELINE),
        rounds=2, iterations=1,
    )
