"""Ablation: reuse-distance view of the DTexL effect.

Computes per-SC stack-distance profiles of the texture access stream
under the baseline (FG-xshift2) and DTexL (CG-square, HLB-flp2) and
predicts fully-associative LRU hit rates at several capacities.  The
Table II L1 (16 KiB = 256 lines) sits exactly where the two schedules
diverge: fine-grained interleaving pushes reuse past it, coarse-grained
grouping pulls reuse back under it.
"""

from repro.analysis.reuse import per_core_reuse_profiles
from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS

CAPACITIES_LINES = [64, 128, 256, 512, 1024]  # 256 = the Table II L1


def test_ablation_reuse(harness, benchmark):
    game = harness.games[0]
    trace = harness.runner.trace_for(game)
    fg_sched = BASELINE.build_scheduler(harness.config)
    cg_sched = PAPER_CONFIGURATIONS["HLB-flp2"].build_scheduler(harness.config)

    fg = per_core_reuse_profiles(trace, fg_sched)
    cg = per_core_reuse_profiles(trace, cg_sched)
    fg_all = fg[0]
    for profile in fg[1:]:
        fg_all = fg_all.merge(profile)
    cg_all = cg[0]
    for profile in cg[1:]:
        cg_all = cg_all.merge(profile)

    rows = []
    for lines in CAPACITIES_LINES:
        kib = lines * 64 // 1024
        rows.append(
            [f"{lines} lines ({kib} KiB)",
             fg_all.hit_rate(lines), cg_all.hit_rate(lines)]
        )
    rows.append(["mean reuse distance",
                 fg_all.mean_distance(), cg_all.mean_distance()])
    rows.append(["working set (90%)",
                 fg_all.working_set(), cg_all.working_set()])
    table = format_table(
        ["capacity", "FG-xshift2 hit rate", "DTexL hit rate"],
        rows,
        title=f"Ablation: per-SC reuse-distance profiles on {game} "
              "(predicted fully-associative LRU hit rates)",
    )
    harness.emit("ablation_reuse", table)

    l1_lines = harness.config.texture_cache.num_lines
    # At the paper's L1 size, DTexL's stream is clearly more cacheable.
    assert cg_all.hit_rate(l1_lines) > fg_all.hit_rate(l1_lines)
    # And its temporal locality is strictly tighter.
    assert cg_all.mean_distance() < fg_all.mean_distance()

    stream = [
        line
        for entry in list(trace.tiles.values())[:20]
        for quad in entry.quads
        for line in quad.texture_lines
    ]
    from repro.analysis.reuse import reuse_profile
    benchmark.pedantic(reuse_profile, args=(stream,), rounds=2, iterations=1)
