"""Ablation: tile traversal order, isolated from subtile assignment.

The paper fixes Z-order for the baseline and couples each order with an
assignment in Figure 8; this ablation isolates the order itself (CG-square
grouping, const assignment, decoupled) to show how much of the locality
win comes from *when* tiles are processed rather than from edge-aware
SC binding.
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import DTexLConfig
from repro.core.tile_order import TILE_ORDERS


def order_design(order: str) -> DTexLConfig:
    return DTexLConfig(
        name=f"order:{order}", grouping="CG-square",
        assignment="const", order=order, decoupled=True,
    )


def test_ablation_tile_order(harness, benchmark):
    base = harness.baseline()
    rows = []
    results = {}
    for order in sorted(TILE_ORDERS):
        suite = harness.suite(order_design(order))
        normalized = suite.total_l2_accesses / base.total_l2_accesses
        results[order] = normalized
        rows.append(
            [order, suite.total_l2_accesses, normalized,
             suite.mean_speedup_vs(base)]
        )
    table = format_table(
        ["tile order", "L2 accesses", "L2 norm. to baseline", "speedup"],
        rows,
        title="Ablation: tile order with CG-square/const/decoupled "
              "(locality orders should at least match scanline)",
    )
    harness.emit("ablation_tile_order", table)

    # Any order with CG grouping crushes the FG baseline's L2 traffic...
    assert all(normalized < 0.8 for normalized in results.values())
    # ...and the space-filling orders are competitive with scanline.
    assert results["hilbert"] < results["scanline"] * 1.1
    assert results["zorder"] < results["scanline"] * 1.1

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, order_design("hilbert")),
        rounds=2, iterations=1,
    )
