"""Figure 1: normalized mean deviation of threads (quads) per SC.

Compares a Load-Balancing scheduler (FG-xshift2, the baseline) against a
Texture-Locality scheduler (CG-square).  The paper's point: the locality
scheduler's thread distribution is far more imbalanced.
"""

from repro.stats import per_tile_imbalance
from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS


def test_fig01_motivation_imbalance(harness, benchmark):
    lb = harness.baseline()
    tl = harness.named_suite("CG-square-coupled")

    rows = []
    ratios = []
    for game in harness.games:
        lb_dev = per_tile_imbalance(lb.per_game[game].per_tile_quad_counts)
        tl_dev = per_tile_imbalance(tl.per_game[game].per_tile_quad_counts)
        ratio = tl_dev / lb_dev if lb_dev else float("inf")
        ratios.append(ratio)
        rows.append([game, lb_dev, tl_dev, ratio])
    finite = [r for r in ratios if r != float("inf")]
    rows.append(
        ["MEAN", "-", "-", sum(finite) / len(finite) if finite else 0.0]
    )
    table = format_table(
        ["game", "LB scheduler dev", "TL scheduler dev", "TL/LB"],
        rows,
        title="Figure 1: quad-per-SC mean deviation, Load-Balancing vs "
              "Texture-Locality scheduler (higher = more imbalanced)",
    )
    harness.emit("fig01", table)

    # Paper shape: the texture-locality scheduler is much more imbalanced.
    mean_ratio = sum(finite) / len(finite)
    assert mean_ratio > 2.0

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, BASELINE),
        rounds=2, iterations=1,
    )
