"""Figure 2: L2 accesses of a Texture-Locality scheduler normalized to a
Load-Balancing scheduler.

The flip side of Figure 1: where the LB scheduler wins on balance, the
TL scheduler wins on L2 traffic (paper shows roughly half the accesses).
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS


def test_fig02_motivation_l2(harness, benchmark):
    lb = harness.baseline()
    tl = harness.named_suite("CG-square-coupled")

    rows = []
    normalized = []
    for game in harness.games:
        ratio = tl.per_game[game].l2_accesses / lb.per_game[game].l2_accesses
        normalized.append(ratio)
        rows.append(
            [game, lb.per_game[game].l2_accesses,
             tl.per_game[game].l2_accesses, ratio]
        )
    rows.append(["MEAN", "-", "-", sum(normalized) / len(normalized)])
    table = format_table(
        ["game", "LB L2 accesses", "TL L2 accesses", "TL/LB"],
        rows,
        title="Figure 2: L2 accesses, Texture-Locality scheduler "
              "normalized to Load-Balancing (paper: ~0.5)",
    )
    harness.emit("fig02", table)

    mean_ratio = sum(normalized) / len(normalized)
    assert mean_ratio < 0.8  # TL must clearly reduce L2 traffic

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["CG-square-coupled"]),
        rounds=2, iterations=1,
    )
