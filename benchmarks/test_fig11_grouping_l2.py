"""Figure 11: average L2 accesses of all quad groupings, normalized to
FG-xshift2.

Sweeps the six fine-grained and four coarse-grained groupings of
Figure 6 with the baseline's Z-order and constant assignment.  Paper
shape: fine-grained cluster near 1.0; coarse-grained cut accesses
drastically (CG-xrect -40%, CG-yrect -45%, CG-square ~ -47%).
"""

from repro.analysis.tables import format_table
from repro.core.dtexl import DTexLConfig
from repro.core.quad_grouping import COARSE_GRAINED, FINE_GRAINED


def grouping_design(name: str) -> DTexLConfig:
    """A grouping evaluated in the baseline pipeline (coupled, Z-order)."""
    return DTexLConfig(name=f"grouping:{name}", grouping=name)


def test_fig11_grouping_l2(harness, benchmark):
    base = harness.baseline()
    base_total = base.total_l2_accesses

    rows = []
    results = {}
    for name in list(FINE_GRAINED) + list(COARSE_GRAINED):
        if name == "FG-xshift2":
            suite = base
        else:
            suite = harness.suite(grouping_design(name))
        normalized = suite.total_l2_accesses / base_total
        results[name] = normalized
        kind = "FG" if name in FINE_GRAINED else "CG"
        rows.append([name, kind, suite.total_l2_accesses, normalized])
    table = format_table(
        ["grouping", "kind", "L2 accesses", "normalized to FG-xshift2"],
        rows,
        title="Figure 11: L2 accesses per quad grouping "
              "(paper: FG ~1.0; CG-xrect 0.60, CG-yrect 0.55, CG-square ~0.53)",
    )
    harness.emit("fig11", table)

    # Shape: every coarse grouping beats every fine grouping on L2.
    worst_cg = max(results[n] for n in COARSE_GRAINED)
    best_fg = min(results[n] for n in FINE_GRAINED)
    assert worst_cg < best_fg
    # Magnitude: CG-square in the paper's ballpark (a >25% cut).
    assert results["CG-square"] < 0.75

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, grouping_design("CG-square")),
        rounds=2, iterations=1,
    )
