"""Figure 12: average normalized mean deviation in quad distribution for
all quad groupings, normalized to FG-xshift2.

The dual of Figure 11: the groupings that win on texture locality lose
on load balance (paper: CG-xrect ~6x, CG-yrect ~10x the deviation of
FG-xshift2).
"""

from repro.stats import per_tile_imbalance
from repro.analysis.tables import format_table
from repro.core.quad_grouping import COARSE_GRAINED, FINE_GRAINED

from test_fig11_grouping_l2 import grouping_design


def suite_imbalance(suite, games):
    values = [
        per_tile_imbalance(suite.per_game[g].per_tile_quad_counts)
        for g in games
    ]
    return sum(values) / len(values)


def test_fig12_grouping_balance(harness, benchmark):
    base = harness.baseline()
    base_dev = suite_imbalance(base, harness.games)

    rows = []
    results = {}
    for name in list(FINE_GRAINED) + list(COARSE_GRAINED):
        suite = base if name == "FG-xshift2" else harness.suite(
            grouping_design(name)
        )
        dev = suite_imbalance(suite, harness.games)
        normalized = dev / base_dev if base_dev else float("inf")
        results[name] = normalized
        kind = "FG" if name in FINE_GRAINED else "CG"
        rows.append([name, kind, dev, normalized])
    table = format_table(
        ["grouping", "kind", "mean deviation", "normalized to FG-xshift2"],
        rows,
        title="Figure 12: quad-distribution imbalance per grouping "
              "(paper: FG ~1x; CG-xrect ~6x, CG-yrect ~10x)",
    )
    harness.emit("fig12", table)

    # Shape: every coarse grouping is worse-balanced than every fine one.
    best_cg = min(results[n] for n in COARSE_GRAINED)
    worst_fg = max(results[n] for n in FINE_GRAINED)
    assert best_cg > worst_fg
    assert results["CG-square"] > 2.0

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, grouping_design("CG-yrect")),
        rounds=2, iterations=1,
    )
