"""Figure 13: speedup of CG-square and CG-yrect over FG-xshift2, all in
the NON-decoupled (baseline barrier) architecture.

The paper's negative result that motivates DTexL: despite a ~47% L2
cut, the coarse groupings deliver no speedup — the caching win is
offset by load imbalance.
"""

from repro.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS


def test_fig13_nondecoupled_speedup(harness, benchmark):
    base = harness.baseline()
    square = harness.named_suite("CG-square-coupled")
    yrect = harness.named_suite("CG-yrect-coupled")

    rows = []
    for game in harness.games:
        base_cycles = base.per_game[game].frame_cycles
        rows.append(
            [
                game,
                base_cycles / square.per_game[game].frame_cycles,
                base_cycles / yrect.per_game[game].frame_cycles,
            ]
        )
    mean_square = geometric_mean([r[1] for r in rows])
    mean_yrect = geometric_mean([r[2] for r in rows])
    rows.append(["GEOMEAN", mean_square, mean_yrect])
    table = format_table(
        ["game", "CG-square speedup", "CG-yrect speedup"],
        rows,
        title="Figure 13: speedup of coarse groupings without decoupling "
              "(paper: ~1.0, i.e. no speedup)",
    )
    harness.emit("fig13", table)

    # Paper shape: no real speedup without the decoupled barriers.
    assert mean_square < 1.12
    assert mean_yrect < 1.12
    # ...but no collapse either (the caching win offsets the imbalance).
    assert mean_square > 0.75

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["CG-yrect-coupled"]),
        rounds=2, iterations=1,
    )
