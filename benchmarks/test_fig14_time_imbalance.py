"""Figure 14: violin of per-tile SC *execution time* imbalance,
FG-xshift2 vs CG-square (both non-decoupled).

The paper plots, per benchmark, the distribution over tiles of the mean
deviation in SC time to finish the tile (FG averages ~5%; CG reaches
150% on TRu).  We print the violin summary statistics per game.
"""

from repro.stats import (
    per_tile_imbalance_distribution,
    violin_summary,
)
from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS


def test_fig14_time_imbalance(harness, benchmark):
    fg = harness.baseline()
    cg = harness.named_suite("CG-square-coupled")

    rows = []
    fg_means, cg_means = [], []
    for game in harness.games:
        fg_dist = per_tile_imbalance_distribution(
            fg.per_game[game].timing.per_tile_sc_cycles
        )
        cg_dist = per_tile_imbalance_distribution(
            cg.per_game[game].timing.per_tile_sc_cycles
        )
        fg_stats = violin_summary(fg_dist)
        cg_stats = violin_summary(cg_dist)
        fg_means.append(fg_stats["mean"])
        cg_means.append(cg_stats["mean"])
        rows.append(
            [game, fg_stats["mean"], fg_stats["max"],
             cg_stats["mean"], cg_stats["max"]]
        )
    rows.append(
        ["MEAN", sum(fg_means) / len(fg_means), "-",
         sum(cg_means) / len(cg_means), "-"]
    )
    table = format_table(
        ["game", "FG mean %", "FG max %", "CG mean %", "CG max %"],
        rows,
        title="Figure 14: per-tile SC execution-time deviation "
              "(paper: FG ~5% mean; CG much larger, up to 150%)",
    )
    harness.emit("fig14", table)

    assert sum(cg_means) > 1.5 * sum(fg_means)
    assert max(r[4] for r in rows[:-1]) > 50.0  # CG has extreme tiles

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["CG-square-coupled"]),
        rounds=2, iterations=1,
    )
