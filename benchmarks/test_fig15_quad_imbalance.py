"""Figure 15: violin of per-tile *quad count* imbalance, FG-xshift2 vs
CG-square.

Companion to Figure 14: the deviation in the number of quads per SC is
one of the two drivers of the execution-time deviation (the other being
per-quad workload intensity).
"""

from repro.stats import (
    per_tile_imbalance_distribution,
    violin_summary,
)
from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE


def test_fig15_quad_imbalance(harness, benchmark):
    fg = harness.baseline()
    cg = harness.named_suite("CG-square-coupled")

    rows = []
    fg_means, cg_means = [], []
    for game in harness.games:
        fg_stats = violin_summary(
            per_tile_imbalance_distribution(
                fg.per_game[game].per_tile_quad_counts
            )
        )
        cg_stats = violin_summary(
            per_tile_imbalance_distribution(
                cg.per_game[game].per_tile_quad_counts
            )
        )
        fg_means.append(fg_stats["mean"])
        cg_means.append(cg_stats["mean"])
        rows.append(
            [game, fg_stats["mean"], fg_stats["max"],
             cg_stats["mean"], cg_stats["max"]]
        )
    rows.append(
        ["MEAN", sum(fg_means) / len(fg_means), "-",
         sum(cg_means) / len(cg_means), "-"]
    )
    table = format_table(
        ["game", "FG mean %", "FG max %", "CG mean %", "CG max %"],
        rows,
        title="Figure 15: per-tile quad-count deviation per SC "
              "(paper: CG much higher than FG)",
    )
    harness.emit("fig15", table)

    assert sum(cg_means) > 1.5 * sum(fg_means)

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run, args=(trace, BASELINE),
        rounds=2, iterations=1,
    )
