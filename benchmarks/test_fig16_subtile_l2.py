"""Figure 16: percent decrease in total L2 accesses of the eight subtile
mappings of Figure 8, plus the conservative upper bound.

Paper shape: Zorder-const / HLB-const ~40.7%; HLB-flp1/2/3 ~46.5%;
Sorder-const / Sorder-flp ~46.8%; together the mappings close ~80% of
the gap between the baseline and the single-SC/4x-L1 upper bound.
"""

from repro.stats import percent_decrease
from repro.analysis.tables import format_table
from repro.core.assignment_stats import schedule_stats
from repro.core.dtexl import FIG8_MAPPING_NAMES, PAPER_CONFIGURATIONS


def test_fig16_subtile_l2(harness, benchmark):
    base = harness.baseline()
    base_total = base.total_l2_accesses
    upper = harness.named_suite("upper-bound")
    upper_decrease = percent_decrease(base_total, upper.total_l2_accesses)

    rows = []
    decreases = {}
    for name in FIG8_MAPPING_NAMES:
        design = PAPER_CONFIGURATIONS[name]
        suite = harness.named_suite(name)
        decrease = percent_decrease(base_total, suite.total_l2_accesses)
        decreases[name] = decrease
        gap_closed = decrease / upper_decrease * 100.0 if upper_decrease else 0
        stats = schedule_stats(design.build_scheduler(harness.config))
        rows.append(
            [name, suite.total_l2_accesses, decrease, gap_closed,
             stats.capture_rate, stats.fairness]
        )
    rows.append(
        ["upper-bound", upper.total_l2_accesses, upper_decrease, 100.0,
         "-", "-"]
    )
    table = format_table(
        ["mapping", "L2 accesses", "% decrease vs baseline",
         "% of gap closed", "edge capture", "SC fairness"],
        rows,
        title="Figure 16: L2-access decrease per subtile mapping "
              "(paper: const ~40.7%, flips ~46.5-46.8%, gap closed ~80%)",
    )
    harness.emit("fig16", table)

    # Every mapping improves substantially and none beats the bound.
    for name, decrease in decreases.items():
        assert decrease > 20.0, name
        assert decrease < upper_decrease, name
    # The best mapping closes a large share of the gap to the bound.
    assert max(decreases.values()) / upper_decrease > 0.55
    # Shared-edge-aware flips do not lose to the const mappings.
    flips = [decreases["HLB-flp1"], decreases["HLB-flp2"],
             decreases["HLB-flp3"], decreases["Sorder-flp"]]
    consts = [decreases["Zorder-const"], decreases["HLB-const"]]
    assert max(flips) >= max(consts) - 1.0

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["upper-bound"]),
        rounds=2, iterations=1,
    )
