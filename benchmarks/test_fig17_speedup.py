"""Figure 17: speedup of DTexL (HLB-flp2, decoupled) and of FG-xshift2
with a decoupled architecture, both over the non-decoupled baseline.

Paper shape: DTexL ~1.2x average (up to ~1.4x on GTr); FG+decoupled
~1.09x.  The caching improvement of the coarse grouping adds on top of
what decoupling alone recovers.
"""

from repro.stats import geometric_mean
from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS


def test_fig17_speedup(harness, benchmark):
    base = harness.baseline()
    dtexl = harness.named_suite("HLB-flp2")
    fg_dec = harness.named_suite("FG-xshift2-decoupled")

    rows = []
    for game in harness.games:
        base_cycles = base.per_game[game].frame_cycles
        rows.append(
            [
                game,
                base_cycles / dtexl.per_game[game].frame_cycles,
                base_cycles / fg_dec.per_game[game].frame_cycles,
            ]
        )
    mean_dtexl = geometric_mean([r[1] for r in rows])
    mean_fg = geometric_mean([r[2] for r in rows])
    rows.append(["GEOMEAN", mean_dtexl, mean_fg])
    table = format_table(
        ["game", "DTexL (HLB-flp2) speedup", "FG-xshift2 decoupled speedup"],
        rows,
        title="Figure 17: speedup over the non-decoupled baseline "
              "(paper: DTexL ~1.2x, FG+decoupled ~1.09x)",
    )
    harness.emit("fig17", table)

    # Paper shape: DTexL wins, and wins more than decoupling alone.
    assert mean_dtexl > 1.08
    assert mean_fg > 0.98
    assert mean_dtexl > mean_fg

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["HLB-flp2"]),
        rounds=2, iterations=1,
    )
