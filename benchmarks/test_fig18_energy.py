"""Figure 18: decrease in total GPU energy of DTexL (HLB-flp2) and of
FG-xshift2 + decoupled, both w.r.t. the non-decoupled baseline.

Paper shape: ~6.3% average for DTexL (8.8% CCS, 10.6% GTr), ~3% for
FG+decoupled; energy savings track the Figure 17 speedups because a
large share of GPU energy is time-proportional.
"""

from repro.stats import percent_decrease
from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS


def test_fig18_energy(harness, benchmark):
    base = harness.baseline()
    dtexl = harness.named_suite("HLB-flp2")
    fg_dec = harness.named_suite("FG-xshift2-decoupled")

    rows = []
    for game in harness.games:
        base_mj = base.per_game[game].energy.total_mj
        rows.append(
            [
                game,
                percent_decrease(base_mj, dtexl.per_game[game].energy.total_mj),
                percent_decrease(base_mj, fg_dec.per_game[game].energy.total_mj),
            ]
        )
    mean_dtexl = sum(r[1] for r in rows) / len(rows)
    mean_fg = sum(r[2] for r in rows) / len(rows)
    rows.append(["MEAN", mean_dtexl, mean_fg])
    table = format_table(
        ["game", "DTexL % energy decrease", "FG decoupled % energy decrease"],
        rows,
        title="Figure 18: total GPU energy decrease "
              "(paper: DTexL ~6.3%, FG+decoupled ~3%)",
    )
    harness.emit("fig18", table)

    # Paper shape: DTexL saves energy, more than decoupling alone, and
    # the saving correlates with the speedup (both positive).
    assert mean_dtexl > 3.0
    assert mean_dtexl > mean_fg

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        harness.runner.replayer.run,
        args=(trace, PAPER_CONFIGURATIONS["FG-xshift2-decoupled"]),
        rounds=2, iterations=1,
    )
