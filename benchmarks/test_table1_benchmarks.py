"""Table I: the benchmark suite.

Prints the published metadata for each game next to the measured
properties of its synthetic stand-in (texture footprint, primitives,
quads, overdraw) at the bench scale.
"""

from repro.analysis.tables import format_table
from repro.workloads.games import GAMES
from repro.workloads.recipe import MIB


def test_table1_benchmarks(harness, benchmark):
    rows = []
    for alias in harness.games:
        spec = GAMES[alias]
        workload = spec.build(harness.config)
        trace = harness.runner.trace_for(alias)
        rows.append(
            [
                alias,
                spec.genre,
                spec.scene_type,
                spec.texture_footprint_mib,
                workload.texture_footprint_bytes / MIB,
                trace.stats.num_primitives,
                trace.stats.num_quads,
                trace.stats.overdraw_factor(harness.config),
            ]
        )
    table = format_table(
        ["game", "genre", "type", "paper MiB", "measured MiB",
         "primitives", "quads", "overdraw"],
        rows,
        title="Table I: benchmark suite (paper metadata vs synthetic stand-in)",
    )
    harness.emit("table1", table)

    # Footprints must track Table I within the mip/pow2 quantization.
    for row in rows:
        assert 0.4 * row[3] <= row[4] <= 1.3 * row[3]
    # Every game renders real work.
    assert all(row[6] > 0 for row in rows)

    benchmark.pedantic(
        GAMES[harness.games[0]].build, args=(harness.config,),
        rounds=2, iterations=1,
    )
