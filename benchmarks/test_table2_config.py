"""Table II: GPU simulation parameters.

Asserts that the library's paper configuration reproduces Table II
exactly, and prints both the paper configuration and the scale this
bench session actually runs at.
"""

from repro.analysis.tables import format_table
from repro.config import KIB, MIB, PAPER_CONFIG, GPUConfig


def test_table2_config(harness, benchmark):
    paper = PAPER_CONFIG
    rows = [
        ["Frequency (MHz)", 600, paper.frequency_mhz],
        ["Voltage (V)", 1.0, paper.voltage],
        ["Technology (nm)", 32, paper.tech_nm],
        ["Screen", "1960x768",
         f"{paper.screen_width}x{paper.screen_height}"],
        ["Tile size", "32x32", f"{paper.tile_size}x{paper.tile_size}"],
        ["Shader cores", 4, paper.num_shader_cores],
        ["DRAM latency (cycles)", "50-100",
         f"{paper.dram.min_latency}-{paper.dram.max_latency}"],
        ["Vertex cache", "8KiB 4-way 1cy",
         f"{paper.vertex_cache.size_bytes // KIB}KiB "
         f"{paper.vertex_cache.associativity}-way "
         f"{paper.vertex_cache.hit_latency}cy"],
        ["Texture caches (4x)", "16KiB 4-way 1cy",
         f"{paper.texture_cache.size_bytes // KIB}KiB "
         f"{paper.texture_cache.associativity}-way "
         f"{paper.texture_cache.hit_latency}cy"],
        ["Tile cache", "64KiB 4-way 1cy",
         f"{paper.tile_cache.size_bytes // KIB}KiB "
         f"{paper.tile_cache.associativity}-way "
         f"{paper.tile_cache.hit_latency}cy"],
        ["L2 cache", "1MiB 8-way 12cy",
         f"{paper.l2_cache.size_bytes // MIB}MiB "
         f"{paper.l2_cache.associativity}-way "
         f"{paper.l2_cache.hit_latency}cy"],
    ]
    table = format_table(
        ["parameter", "paper", "library"],
        rows,
        title=(
            "Table II: GPU simulation parameters "
            f"(bench session runs at {harness.config.screen_width}"
            f"x{harness.config.screen_height})"
        ),
    )
    harness.emit("table2", table)

    assert paper.screen_width == 1960 and paper.screen_height == 768
    assert paper.tile_size == 32
    assert paper.texture_cache.size_bytes == 16 * KIB
    assert paper.l2_cache.size_bytes == 1 * MIB
    assert paper.l2_cache.hit_latency == 12

    benchmark.pedantic(GPUConfig, rounds=5, iterations=1)
