"""Workload characterization: validating the suite's structural claims.

The paper's arguments rest on properties of the benchmark scenes: skewed
depth complexity (§II-B), horizontally clustered overdraw (§V-A), and
per-game variation in texture reuse (§IV-B).  This bench measures all
three on the synthetic suite with the overdraw and reuse analyzers, so
the substitution of commercial traces by synthetic scenes is auditable.
"""

from repro.analysis.overdraw import overdraw_stats, shaded_pixel_map
from repro.analysis.reuse import per_core_reuse_profiles
from repro.analysis.tables import format_table
from repro.core.dtexl import BASELINE


def test_workload_characterization(harness, benchmark):
    scheduler = BASELINE.build_scheduler(harness.config)
    l1_lines = harness.config.texture_cache.num_lines

    rows = []
    clusterings = []
    reuse_rates = []
    for game in harness.games:
        trace = harness.runner.trace_for(game)
        depth_map = shaded_pixel_map(trace, harness.config)
        stats = overdraw_stats(depth_map)
        profiles = per_core_reuse_profiles(trace, scheduler)
        merged = profiles[0]
        for profile in profiles[1:]:
            merged = merged.merge(profile)
        reuse = merged.hit_rate(l1_lines)
        clusterings.append(stats.horizontal_clustering)
        reuse_rates.append(reuse)
        rows.append(
            [game, stats.mean, stats.peak, stats.concentration,
             stats.horizontal_clustering, reuse]
        )
    table = format_table(
        ["game", "overdraw mean", "peak", "top-10% share",
         "horiz. clustering", "L1-reach reuse"],
        rows,
        title="Workload characterization (depth complexity, gravity "
              "clustering, texture reuse per game)",
    )
    harness.emit("workload_characterization", table)

    # §II-B: depth complexity is skewed — the busiest 10% of pixels take
    # well over 10% of the shading in most games.
    assert sum(1 for r in rows if r[3] > 0.12) >= len(rows) // 2
    # §V-A: overdraw clusters horizontally on the suite average.
    assert sum(clusterings) / len(clusterings) > 1.0
    # §IV-B: reuse varies widely across games.
    assert max(reuse_rates) - min(reuse_rates) > 0.1

    trace = harness.runner.trace_for(harness.games[0])
    benchmark.pedantic(
        shaded_pixel_map, args=(trace, harness.config), rounds=2, iterations=1,
    )
