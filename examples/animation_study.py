#!/usr/bin/env python3
"""Animated-sequence study: warm caches across frames.

Simulates a short animation of one game — each frame's sprites scroll a
little while sampling the same textures — with the memory hierarchy
persisting across frames, and compares the baseline scheduler against
DTexL frame by frame.  Shows the cold-start DRAM spike on frame 0, the
steady state afterwards, and that DTexL's L2 cut holds throughout.

Usage::

    python examples/animation_study.py [GAME] [NUM_FRAMES]
"""

import sys

from repro import BASELINE, DTEXL_BEST, GPUConfig
from repro.analysis.tables import format_table
from repro.sim.multiframe import AnimationSimulator
from repro.workloads.animation import Animation


def main() -> None:
    game = sys.argv[1] if len(sys.argv) > 1 else "SoD"
    num_frames = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    config = GPUConfig(screen_width=256, screen_height=128)

    print(f"Simulating {num_frames} animated frames of {game} "
          f"at {config.screen_width}x{config.screen_height} ...")
    animation = Animation.of_game(game, num_frames=num_frames)
    simulator = AnimationSimulator(config)

    base = simulator.run(animation, BASELINE)
    dtexl = simulator.run(animation, DTEXL_BEST)

    rows = []
    for index in range(num_frames):
        b = base.frames[index]
        d = dtexl.frames[index]
        rows.append(
            [
                index,
                b.dram_accesses,
                b.l2_accesses,
                d.l2_accesses,
                f"{(b.l2_accesses - d.l2_accesses) / b.l2_accesses:+.1%}",
                b.frame_cycles / d.frame_cycles,
            ]
        )
    print()
    print(format_table(
        ["frame", "DRAM fills", "L2 baseline", "L2 DTexL", "L2 delta",
         "speedup"],
        rows,
        title=f"{game}: per-frame results with warm caches",
    ))
    print()
    print(
        f"warm-up ratio (frame0 L2 / steady-state L2): "
        f"baseline {base.warmup_ratio():.2f}, DTexL {dtexl.warmup_ratio():.2f}"
    )
    print(
        f"sequence FPS @600 MHz: baseline {base.fps(600):.0f}, "
        f"DTexL {dtexl.fps(600):.0f}"
    )


if __name__ == "__main__":
    main()
