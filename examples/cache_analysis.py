#!/usr/bin/env python3
"""Cache-behaviour deep dive: reuse distances, miss classes, overdraw.

Uses the analysis toolbox to explain *why* DTexL works on one game:

1. per-SC reuse-distance profiles under the baseline and DTexL (the
   coarse grouping compresses reuse under the 16 KiB L1),
2. the three-C miss decomposition (replication shows up as capacity
   misses, not conflicts),
3. the overdraw map (where the imbalance risk lives).

Usage::

    python examples/cache_analysis.py [GAME]
"""

import sys

from repro import BASELINE, DTEXL_BEST, GPUConfig, build_game
from repro.analysis.conflicts import decompose_misses
from repro.analysis.overdraw import overdraw_ascii, overdraw_stats, shaded_pixel_map
from repro.analysis.reuse import per_core_reuse_profiles
from repro.analysis.tables import format_table
from repro.sim import FrameRenderer


def merged_profile(profiles):
    merged = profiles[0]
    for profile in profiles[1:]:
        merged = merged.merge(profile)
    return merged


def main() -> None:
    game = sys.argv[1] if len(sys.argv) > 1 else "TRu"
    config = GPUConfig(screen_width=512, screen_height=256)
    print(f"Rendering {game} ...")
    trace, _ = FrameRenderer(config).render(build_game(game, config))

    # 1. Reuse-distance profiles.
    base_profiles = per_core_reuse_profiles(
        trace, BASELINE.build_scheduler(config)
    )
    dtexl_profiles = per_core_reuse_profiles(
        trace, DTEXL_BEST.build_scheduler(config)
    )
    base_all = merged_profile(base_profiles)
    dtexl_all = merged_profile(dtexl_profiles)
    l1_lines = config.texture_cache.num_lines
    rows = [
        ["mean reuse distance (lines)",
         base_all.mean_distance(), dtexl_all.mean_distance()],
        ["working set for 90% of reuse",
         base_all.working_set(), dtexl_all.working_set()],
        [f"predicted hit rate @ L1 ({l1_lines} lines)",
         base_all.hit_rate(l1_lines), dtexl_all.hit_rate(l1_lines)],
        ["predicted hit rate @ 2x L1",
         base_all.hit_rate(2 * l1_lines), dtexl_all.hit_rate(2 * l1_lines)],
    ]
    print()
    print(format_table(
        ["metric", "baseline (FG-xshift2)", "DTexL (CG-square)"],
        rows,
        title="Per-SC texture reuse (all cores merged)",
    ))

    # 2. Miss decomposition on one core's stream.
    stream = []
    scheduler = BASELINE.build_scheduler(config)
    for step, tile in enumerate(scheduler.tiles):
        entry = trace.tiles.get(tile)
        if entry is None:
            continue
        perm = scheduler.permutation_at(step)
        for quad in entry.quads:
            if perm[scheduler.slot_of(quad.qx, quad.qy)] == 0:
                stream.extend(quad.texture_lines)
    decomposition = decompose_misses(stream, config.texture_cache)
    print()
    print(format_table(
        ["miss class", "count", "share of misses"],
        [
            ["cold", decomposition.cold, decomposition.fraction("cold")],
            ["capacity", decomposition.capacity,
             decomposition.fraction("capacity")],
            ["conflict", decomposition.conflict,
             decomposition.fraction("conflict")],
        ],
        title=f"SC0 L1 miss decomposition under the baseline "
              f"(miss rate {decomposition.miss_rate:.1%})",
    ))

    # 3. Overdraw map.
    depth_map = shaded_pixel_map(trace, config)
    stats = overdraw_stats(depth_map)
    print()
    print(
        f"Overdraw: mean {stats.mean:.2f}, peak {stats.peak}, "
        f"top-10% pixel share {stats.concentration:.0%}, "
        f"horizontal clustering {stats.horizontal_clustering:.2f}"
    )
    print(overdraw_ascii(depth_map, block=16))


if __name__ == "__main__":
    main()
