#!/usr/bin/env python3
"""Decoupled-Barrier architecture demo: why decoupling pays.

Builds tiny hand-crafted tile workloads (no rendering) and runs them
through the pipeline timing model with coupled and decoupled barriers,
showing the three regimes of §III-E:

1. balanced subtiles       -> decoupling changes little,
2. rotating heavy subtile  -> decoupling wins big (fast units run ahead),
3. permanently heavy SC    -> decoupling helps little (the critical
                              chain is one SC; this is why the flip
                              assignments must be fair to all SCs).

Usage::

    python examples/decoupled_pipeline_demo.py
"""

from repro import GPUConfig
from repro.analysis.tables import format_table
from repro.raster.pipeline import RasterPipelineModel, SubtileWork, TileWork


def subtile(num_quads, compute=12, stall=6):
    work = SubtileWork()
    for _ in range(num_quads):
        work.add_quad(compute, stall)
    return work


def scenario(name, quads_per_tile):
    tiles = [
        TileWork(
            tile=(step, 0), step=step, fetch_cycles=4,
            subtiles=[subtile(n) for n in quads],
        )
        for step, quads in enumerate(quads_per_tile)
    ]
    return name, tiles


def main() -> None:
    config = GPUConfig(screen_width=128, screen_height=64)
    num_tiles = 32

    balanced = scenario(
        "balanced", [[32, 32, 32, 32]] * num_tiles
    )
    rotating = scenario(
        "rotating hot subtile",
        [
            [8, 8, 8, 8][:i % 4] + [104] + [8, 8, 8, 8][i % 4 + 1:]
            for i in range(num_tiles)
        ],
    )
    permanent = scenario(
        "permanently hot SC0", [[104, 8, 8, 8]] * num_tiles
    )

    rows = []
    for name, tiles in (balanced, rotating, permanent):
        coupled = RasterPipelineModel(config, decoupled=False).simulate(tiles)
        decoupled = RasterPipelineModel(config, decoupled=True).simulate(tiles)
        rows.append(
            [
                name,
                coupled.total_cycles,
                decoupled.total_cycles,
                coupled.total_cycles / decoupled.total_cycles,
                f"{max(coupled.sc_idle_cycles)} -> "
                f"{max(decoupled.sc_idle_cycles)}",
            ]
        )
    print(format_table(
        ["scenario", "coupled cycles", "decoupled cycles", "speedup",
         "max SC idle (coupled -> decoupled)"],
        rows,
        title="Decoupled-Barrier architecture (paper Figure 10 / §III-E)",
    ))
    print()
    print(
        "The rotating case is what a fair subtile assignment (HLB-flp2)\n"
        "produces; the permanent case is what an unfair one (HLB-flp1)\n"
        "risks — exactly why the paper designs impartial flips."
    )


if __name__ == "__main__":
    main()
