#!/usr/bin/env python3
"""Design-space exploration: sweep groupings, tile orders and assignments.

Reproduces the exploration methodology of the paper's Sections V-A and
V-C on one workload: every quad grouping of Figure 6, every tile order
of Figure 7, and every subtile assignment of Figure 8, reporting L2
accesses, load imbalance, frame time and energy for each point — the
data a GPU architect would use to pick a design.

Usage::

    python examples/design_space_explorer.py [GAME] [WIDTHxHEIGHT]
"""

import sys

from repro import DTexLConfig, GPUConfig, build_game
from repro.stats import per_tile_imbalance
from repro.analysis.tables import format_table
from repro.core.quad_grouping import GROUPINGS
from repro.core.subtile_assignment import ASSIGNMENTS
from repro.core.tile_order import TILE_ORDERS
from repro.sim import FrameRenderer, TraceReplayer


def parse_args():
    game = sys.argv[1] if len(sys.argv) > 1 else "CCS"
    if len(sys.argv) > 2:
        width, height = map(int, sys.argv[2].lower().split("x"))
    else:
        width, height = 512, 256
    return game, GPUConfig(screen_width=width, screen_height=height)


def main() -> None:
    game, config = parse_args()
    print(f"Rendering {game} at {config.screen_width}x{config.screen_height} ...")
    trace, _ = FrameRenderer(config).render(build_game(game, config))
    replayer = TraceReplayer(config)

    baseline = replayer.run(trace, DTexLConfig(name="baseline"))

    def report(design):
        result = replayer.run(trace, design)
        return [
            design.name,
            result.l2_accesses / baseline.l2_accesses,
            per_tile_imbalance(result.per_tile_quad_counts),
            baseline.frame_cycles / result.frame_cycles,
            result.energy.total_mj,
        ]

    headers = ["design point", "L2 (norm.)", "quad imbalance",
               "speedup", "energy mJ"]

    # Sweep 1: quad groupings (coupled, Z-order, const) — Figure 11/12.
    rows = [
        report(DTexLConfig(name=name, grouping=name))
        for name in sorted(GROUPINGS)
    ]
    print()
    print(format_table(headers, rows, title="Sweep 1: quad groupings"))

    # Sweep 2: tile orders with the best coarse grouping, decoupled.
    rows = [
        report(
            DTexLConfig(
                name=f"CG-square/{order}", grouping="CG-square",
                order=order, decoupled=True,
            )
        )
        for order in sorted(TILE_ORDERS)
    ]
    print()
    print(format_table(headers, rows, title="Sweep 2: tile orders (CG-square)"))

    # Sweep 3: subtile assignments on the Hilbert order — Figure 16.
    rows = [
        report(
            DTexLConfig(
                name=f"HLB/{name}", grouping="CG-square",
                assignment=name, order="hilbert", decoupled=True,
            )
        )
        for name in sorted(ASSIGNMENTS)
    ]
    print()
    print(format_table(headers, rows, title="Sweep 3: subtile assignments"))

    print()
    print(
        "Reading the sweeps: coarse groupings cut L2 but raise imbalance; "
        "decoupling plus a fair flip assignment converts the cut into speedup."
    )


if __name__ == "__main__":
    main()
