#!/usr/bin/env python3
"""Quickstart: render one game frame and compare the baseline scheduler
against DTexL.

Runs the whole pipeline end-to-end on a single synthetic game at a
reduced screen size, then replays the trace under the paper's baseline
(FG-xshift2, Z-order, coupled barriers) and under DTexL's best design
point (CG-square, Hilbert order, flp2 assignment, decoupled barriers),
printing the headline metrics side by side.

Usage::

    python examples/quickstart.py [GAME]

where GAME is a Table I alias (default: GTr, the paper's best case).
"""

import sys

from repro import BASELINE, DTEXL_BEST, GPUConfig, build_game
from repro.analysis.tables import format_table
from repro.sim import FrameRenderer, TraceReplayer


def main() -> None:
    game = sys.argv[1] if len(sys.argv) > 1 else "GTr"
    config = GPUConfig(screen_width=512, screen_height=256)

    print(f"Building synthetic workload for {game} ...")
    workload = build_game(game, config)
    print(
        f"  {len(workload.scene.draws)} draws, "
        f"{workload.scene.num_triangles} triangles, "
        f"{workload.texture_footprint_bytes / 2**20:.2f} MiB of textures"
    )

    print("Rendering the frame through the TBR pipeline (pass 1) ...")
    renderer = FrameRenderer(config)
    trace, _ = renderer.render(workload)
    stats = trace.stats
    print(
        f"  {stats.num_clipped_primitives} primitives rasterized, "
        f"{stats.num_quads} quads, overdraw {stats.overdraw_factor(config):.2f}, "
        f"Early-Z cull rate {stats.z_cull_rate:.0%}"
    )

    print("Replaying under the baseline and DTexL (pass 2) ...")
    replayer = TraceReplayer(config)
    base = replayer.run(trace, BASELINE)
    dtexl = replayer.run(trace, DTEXL_BEST)

    rows = [
        ["L2 accesses", base.l2_accesses, dtexl.l2_accesses,
         f"{(base.l2_accesses - dtexl.l2_accesses) / base.l2_accesses:+.1%}"],
        ["L1 miss rate", f"{base.l1_miss_rate:.1%}",
         f"{dtexl.l1_miss_rate:.1%}", ""],
        ["L1 replication factor", f"{base.l1_replication_factor:.2f}",
         f"{dtexl.l1_replication_factor:.2f}", ""],
        ["Frame cycles", base.frame_cycles, dtexl.frame_cycles,
         f"{base.frame_cycles / dtexl.frame_cycles:.2f}x speedup"],
        ["FPS @600MHz", f"{base.fps(600):.0f}", f"{dtexl.fps(600):.0f}", ""],
        ["GPU energy (mJ)", f"{base.energy.total_mj:.3f}",
         f"{dtexl.energy.total_mj:.3f}",
         f"{(base.energy.total_mj - dtexl.energy.total_mj) / base.energy.total_mj:+.1%}"],
    ]
    print()
    print(format_table(
        ["metric", "baseline", "DTexL", "delta"], rows,
        title=f"{game}: baseline (FG-xshift2, coupled) vs DTexL "
              "(CG-square + HLB-flp2, decoupled)",
    ))


if __name__ == "__main__":
    main()
