#!/usr/bin/env python3
"""Render a game frame to a PPM image through the full pipeline.

Demonstrates the functional half of the simulator: geometry transform,
binning, rasterization with Early-Z, perspective-correct texturing with
mip-mapped bilinear filtering, blending and tile flush — the same code
path that produces the cache traces.

Usage::

    python examples/render_frame.py [GAME] [OUTPUT.ppm]
"""

import sys
from pathlib import Path

from repro import GPUConfig, build_game
from repro.sim import FrameRenderer
from repro.texture.sampler import FilterMode, Sampler


def main() -> None:
    game = sys.argv[1] if len(sys.argv) > 1 else "CCS"
    output = Path(sys.argv[2] if len(sys.argv) > 2 else f"{game.lower()}_frame.ppm")
    config = GPUConfig(screen_width=512, screen_height=256)

    workload = build_game(game, config)
    print(
        f"Rendering {game}: {workload.scene.num_triangles} triangles, "
        f"{len(workload.textures)} textures"
    )
    renderer = FrameRenderer(config, Sampler(FilterMode.BILINEAR))
    trace, framebuffer = renderer.render(workload, with_image=True)

    output.write_bytes(framebuffer.to_ppm())
    stats = trace.stats
    print(
        f"Wrote {output} ({config.screen_width}x{config.screen_height}); "
        f"{stats.num_quads} quads shaded, "
        f"overdraw {stats.overdraw_factor(config):.2f}, "
        f"Early-Z culled {stats.z_cull_rate:.0%} of fragments"
    )


if __name__ == "__main__":
    main()
