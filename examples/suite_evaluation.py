#!/usr/bin/env python3
"""Full-suite evaluation: the paper's headline numbers in one run.

Renders all ten Table I games once, then replays each under the
baseline, FG-xshift2+decoupled, and DTexL (HLB-flp2), printing the
per-game and average L2 decrease, speedup and energy decrease — the
contents of Figures 16, 17 and 18 condensed into one table.

This is the long-running example (a few minutes at the default scale).

Usage::

    python examples/suite_evaluation.py [WIDTHxHEIGHT] [GAME,GAME,...]
"""

import sys
import time

from repro import GPUConfig
from repro.stats import geometric_mean, percent_decrease
from repro.analysis.tables import format_table
from repro.core.dtexl import PAPER_CONFIGURATIONS
from repro.sim import ExperimentRunner
from repro.workloads import GAMES


def parse_args():
    width, height = 512, 256
    games = list(GAMES)
    for arg in sys.argv[1:]:
        if "x" in arg and arg.replace("x", "").isdigit():
            width, height = map(int, arg.split("x"))
        else:
            games = [g.strip() for g in arg.split(",")]
    return GPUConfig(screen_width=width, screen_height=height), games


def main() -> None:
    config, games = parse_args()
    runner = ExperimentRunner(config, games=games)

    print(f"Pass 1: rendering {len(games)} games at "
          f"{config.screen_width}x{config.screen_height} ...")
    start = time.time()
    for alias in games:
        runner.trace_for(alias)
        print(f"  {alias} done ({time.time() - start:.0f}s elapsed)")

    print("Pass 2: replaying design points ...")
    base = runner.run_baseline()
    fg_dec = runner.run_suite(PAPER_CONFIGURATIONS["FG-xshift2-decoupled"])
    dtexl = runner.run_suite(PAPER_CONFIGURATIONS["HLB-flp2"])

    rows = []
    for game in games:
        b = base.per_game[game]
        d = dtexl.per_game[game]
        f = fg_dec.per_game[game]
        rows.append(
            [
                game,
                percent_decrease(b.l2_accesses, d.l2_accesses),
                b.frame_cycles / d.frame_cycles,
                b.frame_cycles / f.frame_cycles,
                percent_decrease(b.energy.total_mj, d.energy.total_mj),
            ]
        )
    rows.append(
        [
            "MEAN",
            sum(r[1] for r in rows) / len(rows),
            geometric_mean([r[2] for r in rows]),
            geometric_mean([r[3] for r in rows]),
            sum(r[4] for r in rows) / len(rows),
        ]
    )
    print()
    print(format_table(
        ["game", "L2 decrease %", "DTexL speedup", "FG+dec speedup",
         "energy decrease %"],
        rows,
        title="Suite evaluation (paper: 46.8% L2 decrease, 1.2x speedup, "
              "6.3% energy decrease)",
    ))


if __name__ == "__main__":
    main()
