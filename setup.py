"""Legacy setup shim so `pip install -e .` works without network access
(the offline environment has setuptools but no `wheel` package, which the
PEP 517 editable path requires)."""

from setuptools import setup

setup()
