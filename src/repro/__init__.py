"""DTexL: Decoupled Raster Pipeline for Texture Locality — reproduction.

A trace-driven simulator of a mobile Tile-Based-Rendering GPU, built to
reproduce Joseph et al., *DTexL* (MICRO 2022): texture-locality-aware
quad scheduling (quad groupings, subtile assignments, tile orders) plus
the Decoupled-Barrier raster pipeline that converts the caching win into
performance and energy.

Quickstart::

    from repro import ExperimentRunner, BASELINE, DTEXL_BEST

    runner = ExperimentRunner()
    base = runner.run_suite(BASELINE)
    best = runner.run_suite(DTEXL_BEST)
    print(best.mean_l2_decrease_vs(base), best.mean_speedup_vs(base))
"""

from repro.config import GPUConfig, PAPER_CONFIG, TEST_CONFIG
from repro.core import (
    BASELINE,
    DTEXL_BEST,
    DTexLConfig,
    PAPER_CONFIGURATIONS,
    QuadScheduler,
)
from repro.sim import ExperimentRunner, FrameRenderer, RunResult, TraceReplayer
from repro.workloads import GAMES, build_game

__version__ = "1.0.0"

__all__ = [
    "GPUConfig", "PAPER_CONFIG", "TEST_CONFIG",
    "DTexLConfig", "BASELINE", "DTEXL_BEST", "PAPER_CONFIGURATIONS",
    "QuadScheduler",
    "ExperimentRunner", "FrameRenderer", "TraceReplayer", "RunResult",
    "GAMES", "build_game",
    "__version__",
]
