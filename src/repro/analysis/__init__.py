"""Metrics and reporting helpers for the paper's figures and tables."""

from repro.stats import (
    geometric_mean,
    mean_deviation,
    per_tile_imbalance,
    per_tile_imbalance_distribution,
    percent_decrease,
    speedup,
    violin_summary,
)
from repro.analysis.tables import format_table
from repro.analysis.reuse import ReuseProfile, per_core_reuse_profiles, reuse_profile
from repro.analysis.conflicts import MissDecomposition, decompose_misses
from repro.analysis.overdraw import (
    OverdrawStats,
    overdraw_stats,
    per_tile_overdraw,
    shaded_pixel_map,
)

__all__ = [
    "ReuseProfile", "reuse_profile", "per_core_reuse_profiles",
    "MissDecomposition", "decompose_misses",
    "OverdrawStats", "overdraw_stats", "per_tile_overdraw",
    "shaded_pixel_map",
    "mean_deviation",
    "per_tile_imbalance",
    "per_tile_imbalance_distribution",
    "violin_summary",
    "geometric_mean",
    "percent_decrease",
    "speedup",
    "format_table",
]
