"""``archcheck``: whole-program layer, call-graph and API analysis.

replint (:mod:`repro.analysis.lint`) judges one file at a time; the
passes here judge the program: the import graph against the declared
layer contract (``archcontract.toml``), import cycles, the call graph
from timing-critical entry points down to shared-state mutations, and
the export surface (dead and undeclared API).  Pre-existing violations
live in a justified baseline that only ratchets downward.  Run it with
``python -m repro archcheck``.
"""

from repro.analysis.arch.baseline import Baseline, TODO_JUSTIFICATION
from repro.analysis.arch.callgraph import (
    CallGraph,
    Mutation,
    check_timing_critical_mutations,
)
from repro.analysis.arch.contract import (
    LayerContract,
    check_cycles,
    check_layers,
)
from repro.analysis.arch.deadcode import (
    check_dead_exports,
    check_undeclared_exports,
)
from repro.analysis.arch.engine import ArchCheck, ArchReport
from repro.analysis.arch.export import graph_to_dict, graph_to_json, to_dot
from repro.analysis.arch.modgraph import ImportEdge, ModuleGraph, ModuleInfo

__all__ = [
    "ArchCheck", "ArchReport",
    "Baseline", "TODO_JUSTIFICATION",
    "CallGraph", "Mutation", "check_timing_critical_mutations",
    "LayerContract", "check_cycles", "check_layers",
    "check_dead_exports", "check_undeclared_exports",
    "graph_to_dict", "graph_to_json", "to_dot",
    "ImportEdge", "ModuleGraph", "ModuleInfo",
]
