"""The archcheck baseline: record pre-existing findings once, ratchet.

A whole-program gate switched on late in a repository's life faces a
dilemma: fail on everything (and get switched off), or waive
everything (and protect nothing).  The baseline resolves it — every
*pre-existing* finding is recorded once, by fingerprint, with a human
justification, and CI fails only on findings **not** in the baseline.
The file only ever shrinks: fixing a violation makes its entry stale
(reported, so it gets deleted), while new violations are never added
automatically — ``--update-baseline`` writes ``TODO`` justifications
that themselves fail the gate until a human replaces them.

Fingerprints are location-independent (module pairs, cycle member
sets, entry-point/mutation pairs) so reformatting or moving code never
invalidates the baseline, only genuine architectural change does.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.checks_common import Finding
from repro.errors import ConfigError

#: Placeholder written by ``--update-baseline``; rejected by the gate.
TODO_JUSTIFICATION = "TODO: justify this waiver or fix the violation"


@dataclass
class Baseline:
    """Fingerprint -> justification for accepted findings."""

    path: Path
    entries: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(
                f"cannot read analysis baseline {path}: {error}"
            ) from error
        entries_raw = raw.get("entries")
        if not isinstance(entries_raw, list):
            raise ConfigError(
                f"analysis baseline {path} must contain an 'entries' list"
            )
        entries: Dict[str, str] = {}
        for row in entries_raw:
            if not isinstance(row, dict) or "fingerprint" not in row:
                raise ConfigError(
                    f"malformed baseline entry in {path}: {row!r}"
                )
            entries[row["fingerprint"]] = str(row.get("justification", ""))
        return cls(path=path, entries=entries)

    # -- the ratchet ----------------------------------------------------------

    def unjustified(self) -> List[Finding]:
        """Entries whose justification is empty or still the TODO stub."""
        findings = []
        for fingerprint in sorted(self.entries):
            justification = self.entries[fingerprint].strip()
            if justification and justification != TODO_JUSTIFICATION:
                continue
            findings.append(Finding(
                path=str(self.path), line=0, col=0,
                rule="unjustified-baseline",
                message=(
                    f"baseline entry {fingerprint} has no justification; "
                    "every waiver must say why the violation is acceptable"
                ),
            ))
        return findings

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (new, baselined) and list stale entries."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen: set = set()
        for finding in findings:
            if finding.fingerprint and finding.fingerprint in self.entries:
                baselined.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - seen)
        return new, baselined, stale

    # -- writing --------------------------------------------------------------

    def write_updated(self, findings: Sequence[Finding]) -> None:
        """Rewrite the baseline to exactly the current findings.

        Existing justifications are preserved; genuinely new entries
        get the TODO stub, which the gate rejects until a human either
        fixes the violation or writes down why it stays.
        """
        entries = []
        for fingerprint in sorted({
            f.fingerprint for f in findings if f.fingerprint
        }):
            entries.append({
                "fingerprint": fingerprint,
                "justification": self.entries.get(
                    fingerprint, TODO_JUSTIFICATION
                ),
            })
        payload = {"version": 1, "entries": entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self.entries = {
            row["fingerprint"]: row["justification"] for row in entries
        }
