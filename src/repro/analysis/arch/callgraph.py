"""Cross-module call graph and the timing-critical mutation pass.

replint's ``config-mutation`` rule sees one file: it flags
``config.x = 1`` wherever it appears.  What it cannot see is a replay
step calling a helper calling a helper that mutates module-level state
or a shared config three modules away.  This pass closes that gap:

1. index every function and method in the project;
2. resolve intra-project calls (same-module names, imported names,
   ``self.method``, ``self.attr.method`` through constructor- or
   annotation-derived attribute types, and — as a fallback — method
   names defined exactly once in the whole project);
3. walk the graph from the contract's declared timing-critical entry
   points (the replay step, cache access, scheduler tick) and report
   every reachable *direct mutation site*: module-level state writes
   (``global``, mutation of a module-level object) and shared-config
   attribute writes.

Resolution is deliberately conservative: a call it cannot resolve adds
no edge, and ambiguous method names add no edge unless exact.  The
pass therefore proves absence of *detectable* mutations over the
resolved graph — an approximation, but one whose misses are silent
non-edges rather than false alarms, and the per-file rule still
patrols every mutation site replint can express.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.checks_common import Finding
from repro.analysis.arch.modgraph import ModuleGraph, ModuleInfo
from repro.analysis.lint.rules import build_import_aliases, dotted_name

#: Names that conventionally bind a shared simulation configuration
#: (mirrors replint's ``config-mutation`` heuristic).
CONFIG_NAMES = frozenset({
    "config", "gpu", "gpu_config", "dtexl_config", "design",
    "base_config", "effective_config",
})

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
    "__setitem__", "__delitem__",
})


@dataclass(frozen=True)
class Mutation:
    """One direct mutation site inside a function body."""

    kind: str      #: ``module-state`` | ``shared-config``
    target: str    #: what is written (dotted, best effort)
    line: int
    col: int


@dataclass
class FunctionNode:
    """One indexed function or method."""

    qualname: str                 #: ``module.func`` or ``module.Cls.meth``
    module: str
    path: str
    class_name: Optional[str]
    node: ast.AST
    calls: Set[str] = field(default_factory=set)
    mutations: List[Mutation] = field(default_factory=list)


class CallGraph:
    """Function index + resolved call edges over a :class:`ModuleGraph`."""

    def __init__(self, graph: ModuleGraph):
        self.graph = graph
        self.functions: Dict[str, FunctionNode] = {}
        #: class qualname -> {method name -> function qualname}
        self.class_methods: Dict[str, Dict[str, str]] = {}
        #: class qualname -> base class qualnames (resolved best effort)
        self.class_bases: Dict[str, List[str]] = {}
        #: class qualname -> {instance attr -> class qualname of its value}
        self.attr_types: Dict[str, Dict[str, str]] = {}
        #: bare method name -> every qualname defining it
        self._method_index: Dict[str, List[str]] = {}
        #: module -> {local name -> qualname} for module-level defs/classes
        self._module_defs: Dict[str, Dict[str, str]] = {}
        #: module -> class local name -> class qualname
        self._module_classes: Dict[str, Dict[str, str]] = {}
        #: module -> module-level data bindings (mutation roots)
        self._module_state: Dict[str, Set[str]] = {}
        #: module -> import aliases
        self._aliases: Dict[str, Dict[str, str]] = {}
        self._index()
        self._resolve()

    # -- indexing -------------------------------------------------------------

    def _index(self) -> None:
        for info in self.graph.modules.values():
            self._aliases[info.name] = build_import_aliases(info.tree)
            defs: Dict[str, str] = {}
            classes: Dict[str, str] = {}
            state: Set[str] = set()
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{info.name}.{node.name}"
                    defs[node.name] = qual
                    self._add_function(qual, info, None, node)
                elif isinstance(node, ast.ClassDef):
                    class_qual = f"{info.name}.{node.name}"
                    defs[node.name] = class_qual
                    classes[node.name] = class_qual
                    methods: Dict[str, str] = {}
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            qual = f"{class_qual}.{item.name}"
                            methods[item.name] = qual
                            self._add_function(qual, info, node.name, item)
                    self.class_methods[class_qual] = methods
                    self.class_bases[class_qual] = [
                        base for base in (
                            dotted_name(b) for b in node.bases
                        ) if base
                    ]
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            state.add(target.id)
            self._module_defs[info.name] = defs
            self._module_classes[info.name] = classes
            self._module_state[info.name] = state
        for qual, node in self.functions.items():
            name = qual.rsplit(".", 1)[1]
            self._method_index.setdefault(name, []).append(qual)
        self._infer_attr_types()

    def _add_function(self, qualname: str, info: ModuleInfo,
                      class_name: Optional[str], node: ast.AST) -> None:
        self.functions[qualname] = FunctionNode(
            qualname=qualname, module=info.name, path=str(info.path),
            class_name=class_name, node=node,
        )

    def _resolve_class_name(self, module: str, name: str) -> Optional[str]:
        """Class qualname a (possibly dotted) local name refers to."""
        if name in self._module_classes.get(module, {}):
            return self._module_classes[module][name]
        resolved = self._expand_alias(module, name)
        if resolved in self.class_methods:
            return resolved
        return None

    def _expand_alias(self, module: str, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        expanded = self._aliases.get(module, {}).get(head, head)
        return f"{expanded}.{rest}" if rest else expanded

    def _annotation_class(self, module: str,
                          annotation: Optional[ast.AST]) -> Optional[str]:
        """Class qualname named by an annotation (unwraps Optional[...])."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Subscript):
            return self._annotation_class(module, annotation.slice)
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return self._resolve_class_name(module, annotation.value)
        name = dotted_name(annotation)
        if name is None:
            return None
        return self._resolve_class_name(module, name)

    def _infer_attr_types(self) -> None:
        """``self.x = Cls(...)`` / annotated ``__init__`` params -> types."""
        for class_qual, methods in self.class_methods.items():
            module = class_qual.rsplit(".", 1)[0]
            types: Dict[str, str] = {}
            for method_qual in methods.values():
                fn = self.functions[method_qual]
                params: Dict[str, Optional[str]] = {}
                args = getattr(fn.node, "args", None)
                if args is not None:
                    for arg in (args.posonlyargs + args.args
                                + args.kwonlyargs):
                        params[arg.arg] = self._annotation_class(
                            module, arg.annotation
                        )
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        value_cls: Optional[str] = None
                        if isinstance(node.value, ast.Call):
                            callee = dotted_name(node.value.func)
                            if callee:
                                value_cls = self._resolve_class_name(
                                    module, callee
                                )
                        elif isinstance(node.value, ast.Name):
                            value_cls = params.get(node.value.id)
                        if value_cls:
                            types[target.attr] = value_cls
            self.attr_types[class_qual] = types

    # -- call + mutation resolution -------------------------------------------

    def _resolve(self) -> None:
        for fn in self.functions.values():
            self._scan_function(fn)

    def _method_on_class(self, class_qual: str,
                         method: str) -> Optional[str]:
        """Look a method up on a class, walking declared bases."""
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            cls = queue.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            found = self.class_methods.get(cls, {}).get(method)
            if found:
                return found
            module = cls.rsplit(".", 1)[0]
            for base in self.class_bases.get(cls, []):
                resolved = self._resolve_class_name(module, base)
                if resolved:
                    queue.append(resolved)
        return None

    def resolve_call(self, fn: FunctionNode,
                     call: ast.Call) -> Optional[str]:
        """Public resolution entry point (used by the flow analyzer)."""
        return self._resolve_call(fn, call)

    def _resolve_call(self, fn: FunctionNode,
                      call: ast.Call) -> Optional[str]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        module = fn.module
        class_qual = (
            f"{module}.{fn.class_name}" if fn.class_name else None
        )
        # self.method() / self.attr.method()
        if parts[0] == "self" and class_qual:
            if len(parts) == 2:
                return self._method_on_class(class_qual, parts[1])
            if len(parts) == 3:
                attr_cls = self.attr_types.get(class_qual, {}).get(parts[1])
                if attr_cls:
                    return self._method_on_class(attr_cls, parts[2])
            return self._unique_method(parts[-1])
        # bare name: same-module function or class constructor
        if len(parts) == 1:
            local = self._module_defs.get(module, {}).get(parts[0])
            if local:
                return self._constructor_or_function(local)
            expanded = self._expand_alias(module, dotted)
            return self._constructor_or_function(expanded)
        # dotted name through import aliases
        expanded = self._expand_alias(module, dotted)
        resolved = self._constructor_or_function(expanded)
        if resolved:
            return resolved
        # obj.method() on something we can't type: unique-name fallback
        return self._unique_method(parts[-1])

    def _constructor_or_function(self, qualname: str) -> Optional[str]:
        if qualname in self.functions:
            return qualname
        if qualname in self.class_methods:
            init = self.class_methods[qualname].get("__init__")
            if init:
                return init
            return None
        return None

    def _unique_method(self, name: str) -> Optional[str]:
        candidates = self._method_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    @staticmethod
    def _is_config_like(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in CONFIG_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in CONFIG_NAMES
        return False

    @staticmethod
    def _root_name(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _scan_function(self, fn: FunctionNode) -> None:
        module_state = self._module_state.get(fn.module, set()) \
            | set(self._module_classes.get(fn.module, {}))
        globals_declared: Set[str] = set()
        local_names: Set[str] = set()
        args = getattr(fn.node, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                local_names.add(arg.arg)
            if args.vararg:
                local_names.add(args.vararg.arg)
            if args.kwarg:
                local_names.add(args.kwarg.arg)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if target.id in globals_declared:
                            fn.mutations.append(Mutation(
                                kind="module-state", target=target.id,
                                line=node.lineno, col=node.col_offset,
                            ))
                        else:
                            local_names.add(target.id)
            elif isinstance(node, ast.For) and isinstance(
                node.target, ast.Name
            ):
                local_names.add(node.target.id)
            elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name
            ):
                local_names.add(node.optional_vars.id)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # a bare annotation binds nothing
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    base = target.value
                    if isinstance(target, ast.Attribute) \
                            and self._is_config_like(base):
                        fn.mutations.append(Mutation(
                            kind="shared-config",
                            target=dotted_name(target) or target.attr,
                            line=node.lineno, col=node.col_offset,
                        ))
                        continue
                    root = self._root_name(target)
                    if (root and root in module_state
                            and root not in local_names
                            and root != "self"):
                        fn.mutations.append(Mutation(
                            kind="module-state",
                            target=dotted_name(target) or root,
                            line=node.lineno, col=node.col_offset,
                        ))
            elif isinstance(node, ast.Call):
                callee = self._resolve_call(fn, node)
                if callee:
                    fn.calls.add(callee)
                func = node.func
                if isinstance(func, ast.Name) and func.id == "setattr" \
                        and node.args and self._is_config_like(node.args[0]):
                    fn.mutations.append(Mutation(
                        kind="shared-config",
                        target=dotted_name(node.args[0]) or "config",
                        line=node.lineno, col=node.col_offset,
                    ))
                elif isinstance(func, ast.Attribute) \
                        and func.attr in _MUTATING_METHODS:
                    root = self._root_name(func.value)
                    if (root and root != "self"
                            and root in module_state
                            and root not in local_names):
                        fn.mutations.append(Mutation(
                            kind="module-state",
                            target=(dotted_name(func) or func.attr),
                            line=node.lineno, col=node.col_offset,
                        ))


# -- the pass -----------------------------------------------------------------


def check_timing_critical_mutations(
    graph: ModuleGraph,
    entrypoints: Sequence[str],
    callgraph: Optional[CallGraph] = None,
) -> List[Finding]:
    """Prove declared entry points never reach a state mutation.

    Walks the resolved call graph breadth-first from each entry point;
    every reachable direct mutation site becomes a finding whose
    message spells out one call chain from the entry point to the
    mutation, so the report is actionable without re-deriving the path.
    """
    cg = callgraph if callgraph is not None else CallGraph(graph)
    findings: List[Finding] = []
    for entry in sorted(entrypoints):
        if entry not in cg.functions:
            findings.append(Finding(
                path=str(graph.src_root), line=0, col=0,
                rule="unknown-entrypoint",
                message=(
                    f"contract entry point {entry} does not exist; fix "
                    "the [callgraph] entrypoints list in archcontract.toml"
                ),
                fingerprint=f"unknown-entrypoint:{entry}",
            ))
            continue
        parent: Dict[str, Optional[str]] = {entry: None}
        queue = [entry]
        while queue:
            current = queue.pop(0)
            fn = cg.functions[current]
            for mutation in fn.mutations:
                chain: List[str] = []
                walk: Optional[str] = current
                while walk is not None:
                    chain.append(walk)
                    walk = parent[walk]
                chain.reverse()
                findings.append(Finding(
                    path=fn.path, line=mutation.line, col=mutation.col,
                    rule="timing-critical-mutation",
                    message=(
                        f"{' -> '.join(chain)} mutates "
                        f"{mutation.kind.replace('-', ' ')} "
                        f"({mutation.target}); timing-critical entry "
                        "points must be pure over shared state so "
                        "replays stay deterministic"
                    ),
                    fingerprint=(
                        "timing-critical-mutation:"
                        f"{entry}:{current}:{mutation.target}"
                    ),
                ))
            for callee in sorted(fn.calls):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)
    return findings
