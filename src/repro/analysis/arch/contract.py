"""Declared layer contracts: parsing and the layer checks.

``archcontract.toml`` declares the repository's layering once, checked
in next to the code it governs::

    [project]
    package = "repro"

    [layers]
    errors = []
    config = ["errors"]
    sim    = ["errors", "config", ...]   # layers sim may import
    cli    = ["*"]                       # "*" = may import anything

    [modules]
    "repro.cli" = "cli"                  # top-level modules -> layer

    [callgraph]
    entrypoints = ["repro.sim.replay.TraceReplayer.run", ...]

    [deadcode]
    reference_roots = ["tests", "examples", "benchmarks"]
    ignore = ["repro.analysis.visualize.*"]

A module's layer is its first package component under the project
package (``repro.sim.replay`` -> ``sim``) unless ``[modules]`` maps it
explicitly.  Importing within a layer is always allowed; an edge from
layer A to layer B is allowed only if B appears in A's list.  The
checks over a :class:`~repro.analysis.arch.modgraph.ModuleGraph` flag
forbidden edges, import cycles, and modules the contract doesn't map
at all (so a new top-level package can't silently dodge the contract).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.checks_common import Finding
from repro.analysis.arch.modgraph import ImportEdge, ModuleGraph
from repro.errors import ConfigError


@dataclass
class LayerContract:
    """The parsed contents of an ``archcontract.toml``."""

    package: str
    #: layer name -> layers it may import ("*" means anything).
    layers: Dict[str, List[str]]
    #: explicit module -> layer overrides (for top-level modules).
    module_layers: Dict[str, str] = field(default_factory=dict)
    #: qualnames of timing-critical entry points for the call-graph pass.
    entrypoints: List[str] = field(default_factory=list)
    #: extra directories whose name references keep exports alive,
    #: relative to the contract file's directory.
    reference_roots: List[str] = field(default_factory=list)
    #: fnmatch patterns of qualnames exempt from dead-export checks.
    deadcode_ignore: List[str] = field(default_factory=list)
    #: where the contract was loaded from (reference roots resolve
    #: against its parent directory).
    path: Optional[Path] = None

    # -- loading --------------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "LayerContract":
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                raw = tomllib.load(handle)
        except FileNotFoundError:
            raise ConfigError(
                f"no architecture contract at {path}; create an "
                "archcontract.toml (see docs/ARCHITECTURE.md)"
            ) from None
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(
                f"cannot parse architecture contract {path}: {error}"
            ) from error
        return cls.from_dict(raw, path=path)

    @classmethod
    def from_dict(cls, raw: dict, path: Optional[Path] = None
                  ) -> "LayerContract":
        project = raw.get("project", {})
        package = project.get("package")
        if not isinstance(package, str) or not package:
            raise ConfigError(
                "architecture contract must declare [project] package"
            )
        layers_raw = raw.get("layers")
        if not isinstance(layers_raw, dict) or not layers_raw:
            raise ConfigError(
                "architecture contract must declare a [layers] table"
            )
        layers: Dict[str, List[str]] = {}
        for name, allowed in layers_raw.items():
            if not isinstance(allowed, list) or not all(
                isinstance(item, str) for item in allowed
            ):
                raise ConfigError(
                    f"layer {name!r} must map to a list of layer names"
                )
            layers[name] = list(allowed)
        for name, allowed in layers.items():
            for dep in allowed:
                if dep != "*" and dep not in layers:
                    raise ConfigError(
                        f"layer {name!r} allows unknown layer {dep!r}"
                    )
        module_layers = {}
        for module, layer in raw.get("modules", {}).items():
            if layer not in layers:
                raise ConfigError(
                    f"module {module!r} is mapped to unknown layer {layer!r}"
                )
            module_layers[module] = layer
        callgraph = raw.get("callgraph", {})
        deadcode = raw.get("deadcode", {})
        return cls(
            package=package,
            layers=layers,
            module_layers=module_layers,
            entrypoints=list(callgraph.get("entrypoints", [])),
            reference_roots=list(deadcode.get("reference_roots", [])),
            deadcode_ignore=list(deadcode.get("ignore", [])),
            path=path,
        )

    # -- layer mapping --------------------------------------------------------

    def layer_of(self, module: str) -> Optional[str]:
        """The layer a module belongs to, or ``None`` if unmapped."""
        if module in self.module_layers:
            return self.module_layers[module]
        if module == self.package:
            return self.module_layers.get(module)
        prefix = self.package + "."
        if module.startswith(prefix):
            head = module[len(prefix):].split(".")[0]
            if head in self.layers:
                return head
            return self.module_layers.get(module)
        return None

    def allows(self, src_layer: str, dst_layer: str) -> bool:
        if src_layer == dst_layer:
            return True
        allowed = self.layers.get(src_layer, [])
        return "*" in allowed or dst_layer in allowed


# -- the layer checks ---------------------------------------------------------


def check_layers(graph: ModuleGraph,
                 contract: LayerContract) -> List[Finding]:
    """Forbidden edges plus modules the contract doesn't map."""
    findings: List[Finding] = []
    unmapped: Set[str] = set()
    for name in sorted(graph.modules):
        if contract.layer_of(name) is None:
            unmapped.add(name)
            info = graph.modules[name]
            findings.append(Finding(
                path=str(info.path), line=1, col=0, rule="unmapped-module",
                message=(
                    f"module {name} belongs to no declared layer; add its "
                    "package to [layers] or map it in [modules] of "
                    "archcontract.toml"
                ),
                fingerprint=f"unmapped-module:{name}",
            ))
    for edge in graph.edges:
        src_layer = contract.layer_of(edge.src)
        dst_layer = contract.layer_of(edge.dst)
        if src_layer is None or dst_layer is None:
            continue  # already reported as unmapped
        if contract.allows(src_layer, dst_layer):
            continue
        info = graph.modules[edge.src]
        findings.append(Finding(
            path=str(info.path), line=edge.line, col=edge.col,
            rule="forbidden-import",
            message=(
                f"{edge.src} (layer {src_layer}) imports {edge.dst} "
                f"(layer {dst_layer}); the contract allows {src_layer} -> "
                + (", ".join(sorted(contract.layers[src_layer])) or "nothing")
            ),
            fingerprint=f"forbidden-import:{edge.src}->{edge.dst}",
        ))
    return findings


def check_cycles(graph: ModuleGraph) -> List[Finding]:
    """Import cycles (strongly connected components of the graph)."""
    findings: List[Finding] = []
    for component in graph.cycles():
        anchor = graph.modules[component[0]]
        findings.append(Finding(
            path=str(anchor.path), line=1, col=0, rule="import-cycle",
            message=(
                "import cycle between "
                + " <-> ".join(component)
                + "; break it by moving the shared piece below both"
            ),
            fingerprint="import-cycle:" + "+".join(component),
        ))
    return findings
