"""Dead exports and undeclared API.

Two symmetric failure modes of a public surface:

* **dead-export** — a public module-level function or class whose name
  is referenced nowhere: not in any project module, not in tests,
  examples or benchmarks (the contract's ``reference_roots``), not in
  an ``__all__``.  Dead API misleads readers about what the simulator
  actually exercises, and it silently rots.
* **undeclared-export** — the mirror image: a ``from module import
  name`` (typically a package ``__init__`` re-export) or an
  ``__all__`` entry naming something the target module never binds.
  These imports only explode at import time of that specific module,
  which CI may never reach.

Liveness is name-based and deliberately over-approximate: any
occurrence of the name — as an identifier, an attribute, an import, or
an ``__all__`` string — anywhere in the analyzed or reference trees
keeps a definition alive.  What the pass flags is therefore genuinely
unreferenced.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.checks_common import Finding
from repro.analysis.arch.modgraph import ModuleGraph, _SKIP_DIRS


def _names_used(tree: ast.Module) -> Set[str]:
    """Every identifier a module mentions, by any syntactic route."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                used.update(alias.name.split("."))
                if alias.asname:
                    used.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                used.add(alias.name)
                if alias.asname:
                    used.add(alias.asname)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ entries and getattr(...) strings: a plain string
            # that happens to be an identifier keeps that name alive.
            if node.value.isidentifier():
                used.add(node.value)
    return used


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names a module binds at top level (defs, classes, assigns, imports)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            bound.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # conditional bindings (TYPE_CHECKING blocks, import
            # fallbacks) still bind the name on some path
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
                    bound.add(sub.name)
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
    return bound


def _dunder_all(tree: ast.Module) -> List[ast.Constant]:
    """The string constants of a module-level ``__all__`` list, if any."""
    out: List[ast.Constant] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    out.append(element)
    return out


def _reference_trees(roots: Iterable[Path]) -> List[ast.Module]:
    trees: List[ast.Module] = []
    for root in roots:
        root = Path(root)
        if not root.exists():
            continue
        for path in sorted(root.rglob("*.py")):
            if set(path.parts) & _SKIP_DIRS:
                continue
            try:
                trees.append(ast.parse(path.read_text(encoding="utf-8")))
            except (SyntaxError, UnicodeDecodeError, OSError):
                continue  # reference trees only widen liveness
    return trees


def check_dead_exports(graph: ModuleGraph,
                       reference_roots: Iterable[Path] = (),
                       ignore: Iterable[str] = ()) -> List[Finding]:
    """Public top-level defs referenced nowhere in any tree."""
    used: Set[str] = set()
    for info in graph.modules.values():
        used |= _names_used(info.tree)
    for tree in _reference_trees(reference_roots):
        used |= _names_used(tree)
    ignore = list(ignore)
    findings: List[Finding] = []
    for name in sorted(graph.modules):
        info = graph.modules[name]
        if info.is_package:
            continue  # __init__ re-exports are covered by liveness of
            # the names themselves
        for node in info.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if node.name.startswith("_"):
                continue
            qualname = f"{info.name}.{node.name}"
            if any(fnmatch(qualname, pattern) for pattern in ignore):
                continue
            if node.name in used:
                continue
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            findings.append(Finding(
                path=str(info.path), line=node.lineno, col=node.col_offset,
                rule="dead-export",
                message=(
                    f"public {kind} {qualname} is referenced nowhere "
                    "(project, tests, examples or benchmarks); delete it "
                    "or wire it into the API it was written for"
                ),
                fingerprint=f"dead-export:{qualname}",
            ))
    return findings


def check_undeclared_exports(graph: ModuleGraph) -> List[Finding]:
    """Imports and ``__all__`` entries naming things that don't exist."""
    bindings: Dict[str, Set[str]] = {
        name: _module_bindings(info.tree)
        for name, info in graph.modules.items()
    }
    # a package also "binds" its direct submodules
    for name in graph.modules:
        parent, _, leaf = name.rpartition(".")
        if parent in bindings:
            bindings[parent].add(leaf)
    findings: List[Finding] = []
    for name in sorted(graph.modules):
        info = graph.modules[name]
        package = name if info.is_package else name.rpartition(".")[0]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.level:
                base = package.split(".") if package else []
                if node.level - 1 > len(base):
                    continue
                if node.level > 1:
                    base = base[:len(base) - (node.level - 1)]
                target = ".".join(base + (
                    [node.module] if node.module else []
                ))
            else:
                target = node.module or ""
            if target not in graph.modules:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.name in bindings[target]:
                    continue
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, rule="undeclared-export",
                    message=(
                        f"import of {target}.{alias.name}, but {target} "
                        "never binds that name; this only explodes when "
                        f"{name} is first imported"
                    ),
                    fingerprint=f"undeclared-export:{name}:"
                                f"{target}.{alias.name}",
                ))
        own = bindings[name]
        for entry in _dunder_all(info.tree):
            if entry.value in own:
                continue
            findings.append(Finding(
                path=str(info.path), line=entry.lineno,
                col=entry.col_offset, rule="undeclared-export",
                message=(
                    f"__all__ declares {entry.value!r} but {name} never "
                    "binds that name; `from ... import *` would raise"
                ),
                fingerprint=f"undeclared-export:{name}:__all__."
                            f"{entry.value}",
            ))
    return findings
