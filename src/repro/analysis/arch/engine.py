"""The archcheck engine: run every pass, apply the baseline ratchet.

One call — :meth:`ArchCheck.run` — builds the module graph, checks the
layer contract, the import cycles, the timing-critical call graph and
the export surface, then splits the findings against the baseline:
*new* findings gate (exit 1 in the CLI), *baselined* findings are
reported but tolerated, *stale* baseline entries are surfaced so the
ratchet only ever tightens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.analysis.checks_common import Finding, sort_findings
from repro.analysis.arch.baseline import Baseline
from repro.analysis.arch.callgraph import (
    CallGraph,
    check_timing_critical_mutations,
)
from repro.analysis.arch.contract import (
    LayerContract,
    check_cycles,
    check_layers,
)
from repro.analysis.arch.deadcode import (
    check_dead_exports,
    check_undeclared_exports,
)
from repro.analysis.arch.modgraph import ModuleGraph


@dataclass
class ArchReport:
    """Everything one archcheck run produced."""

    graph: ModuleGraph
    contract: LayerContract
    #: findings NOT covered by the baseline — these gate.
    findings: List[Finding] = field(default_factory=list)
    #: findings covered by a justified baseline entry.
    baselined: List[Finding] = field(default_factory=list)
    #: baseline fingerprints that no longer match anything.
    stale: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


class ArchCheck:
    """Whole-program architecture checks over one source root."""

    def __init__(self, contract: LayerContract, src_root: Path,
                 baseline: Optional[Baseline] = None):
        self.contract = contract
        self.src_root = Path(src_root)
        self.baseline = baseline if baseline is not None else Baseline(
            path=self.src_root / "archcheck-baseline.json"
        )

    def _reference_roots(self) -> List[Path]:
        base = (
            self.contract.path.parent if self.contract.path is not None
            else Path(".")
        )
        return [base / root for root in self.contract.reference_roots]

    def run(self, update_baseline: bool = False) -> ArchReport:
        graph = ModuleGraph.build(
            self.src_root, packages=[self.contract.package]
        )
        raw: List[Finding] = list(graph.errors)
        raw.extend(check_layers(graph, self.contract))
        raw.extend(check_cycles(graph))
        if self.contract.entrypoints:
            callgraph = CallGraph(graph)
            raw.extend(check_timing_critical_mutations(
                graph, self.contract.entrypoints, callgraph
            ))
        raw.extend(check_dead_exports(
            graph,
            reference_roots=self._reference_roots(),
            ignore=self.contract.deadcode_ignore,
        ))
        raw.extend(check_undeclared_exports(graph))
        raw = sort_findings(raw)
        if update_baseline:
            self.baseline.write_updated(raw)
        new, baselined, stale = self.baseline.partition(raw)
        new.extend(self.baseline.unjustified())
        return ArchReport(
            graph=graph,
            contract=self.contract,
            findings=sort_findings(new),
            baselined=baselined,
            stale=stale,
        )
