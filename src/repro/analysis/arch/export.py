"""Graph export: DOT for humans, JSON for tools.

The DOT output aggregates the module graph to one node per layer so
the diagram stays readable at any repository size; forbidden edges are
drawn red and bold so a violation is visible from across the room.
The JSON output keeps the full module-level graph for scripted
consumers (diffing two revisions, feeding a visualizer).
"""

from __future__ import annotations

import json
from typing import Dict, List, Set, Tuple

from repro.analysis.arch.contract import LayerContract
from repro.analysis.arch.modgraph import ModuleGraph


def _layer_edges(
    graph: ModuleGraph, contract: LayerContract
) -> Dict[Tuple[str, str], int]:
    """Aggregate module edges to (src_layer, dst_layer) -> edge count."""
    out: Dict[Tuple[str, str], int] = {}
    for edge in graph.edges:
        src = contract.layer_of(edge.src)
        dst = contract.layer_of(edge.dst)
        if src is None or dst is None or src == dst:
            continue
        out[(src, dst)] = out.get((src, dst), 0) + 1
    return out


def to_dot(graph: ModuleGraph, contract: LayerContract) -> str:
    """A layer-level digraph in Graphviz DOT syntax."""
    edges = _layer_edges(graph, contract)
    layers_present: Set[str] = set()
    for src, dst in edges:
        layers_present.update((src, dst))
    for name in graph.modules:
        layer = contract.layer_of(name)
        if layer is not None:
            layers_present.add(layer)
    lines: List[str] = [
        "digraph layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    for layer in sorted(layers_present):
        members = sum(
            1 for name in graph.modules if contract.layer_of(name) == layer
        )
        lines.append(
            f'  "{layer}" [label="{layer}\\n{members} module'
            f'{"s" if members != 1 else ""}"];'
        )
    for (src, dst) in sorted(edges):
        count = edges[(src, dst)]
        attrs = [f'label="{count}"']
        if not contract.allows(src, dst):
            attrs.append('color="red"')
            attrs.append("penwidth=2.0")
        lines.append(f'  "{src}" -> "{dst}" [{", ".join(attrs)}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def graph_to_dict(graph: ModuleGraph, contract: LayerContract) -> dict:
    """The full module graph plus the layer mapping, as plain data."""
    return {
        "package": contract.package,
        "modules": {
            name: {
                "path": str(info.path),
                "layer": contract.layer_of(name),
                "is_package": info.is_package,
                "imports": sorted({
                    edge.dst for edge in graph.edges if edge.src == name
                }),
            }
            for name, info in sorted(graph.modules.items())
        },
        "layers": {
            name: sorted(allowed)
            for name, allowed in contract.layers.items()
        },
        "edge_count": len(graph.edges),
    }


def graph_to_json(graph: ModuleGraph, contract: LayerContract) -> str:
    return json.dumps(
        graph_to_dict(graph, contract), indent=2, sort_keys=True
    )
