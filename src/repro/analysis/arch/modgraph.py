"""Whole-program module discovery and the import graph.

replint parses one file at a time; every archcheck pass instead starts
from a :class:`ModuleGraph`: all project modules under a source root,
parsed once, with the project-internal import edges between them
resolved (absolute and relative imports, ``from``-imports of module
attributes collapsed onto the defining module).  Third-party and
stdlib imports are not edges — the contract governs the repository's
own layering, not its dependencies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.checks_common import Finding

#: Directory names never worth analysing.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist",
                        ".mypy_cache", ".pytest_cache"})


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import: ``src_module`` imports ``dst_module``."""

    src: str
    dst: str
    line: int
    col: int


@dataclass
class ModuleInfo:
    """One parsed project module."""

    name: str          #: dotted module name (``repro.sim.replay``)
    path: Path
    tree: ast.Module
    is_package: bool   #: whether this is a package ``__init__``


@dataclass
class ModuleGraph:
    """Every project module plus the import edges between them."""

    src_root: Path
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    edges: List[ImportEdge] = field(default_factory=list)
    #: Files that failed to parse, as ``parse-error`` findings.
    errors: List[Finding] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, src_root: Path,
              packages: Optional[Iterable[str]] = None) -> "ModuleGraph":
        """Parse every module under ``src_root`` and resolve its imports.

        ``packages`` restricts discovery to the named top-level
        packages/modules; by default every package under the root is
        graphed.
        """
        graph = cls(src_root=Path(src_root))
        wanted = set(packages) if packages is not None else None
        for path in sorted(graph.src_root.rglob("*.py")):
            if set(path.parts) & _SKIP_DIRS:
                continue
            name = graph._module_name(path)
            if name is None:
                continue
            if wanted is not None and name.split(".")[0] not in wanted:
                continue
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"),
                                 filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as error:
                line = getattr(error, "lineno", 0) or 0
                graph.errors.append(Finding(
                    path=str(path), line=line, col=0, rule="parse-error",
                    message=f"cannot parse module: {error}",
                    fingerprint=f"parse-error:{name}",
                ))
                continue
            graph.modules[name] = ModuleInfo(
                name=name, path=path, tree=tree,
                is_package=path.name == "__init__.py",
            )
        graph._resolve_edges()
        return graph

    def _module_name(self, path: Path) -> Optional[str]:
        parts = list(path.relative_to(self.src_root).with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        if not parts:
            return None
        return ".".join(parts)

    # -- import resolution ----------------------------------------------------

    def _closest_module(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that names a project module."""
        parts = dotted.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
            parts.pop()
        return None

    def _resolve_edges(self) -> None:
        seen: Set[Tuple[str, str, int]] = set()
        for info in self.modules.values():
            package = (
                info.name if info.is_package
                else info.name.rpartition(".")[0]
            )
            for node in ast.walk(info.tree):
                targets: List[str] = []
                if isinstance(node, ast.Import):
                    targets = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level:
                        # ``from ..x import y`` relative to this module's
                        # package; level 1 is the package itself.
                        base = package.split(".") if package else []
                        if node.level - 1 > len(base):
                            continue
                        if node.level > 1:
                            base = base[:len(base) - (node.level - 1)]
                        prefix = ".".join(base + (
                            [node.module] if node.module else []
                        ))
                    else:
                        prefix = node.module or ""
                    if not prefix:
                        continue
                    targets = [
                        prefix if alias.name == "*"
                        else f"{prefix}.{alias.name}"
                        for alias in node.names
                    ]
                else:
                    continue
                for target in targets:
                    dst = self._closest_module(target)
                    if dst is None or dst == info.name:
                        continue
                    key = (info.name, dst, node.lineno)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.edges.append(ImportEdge(
                        src=info.name, dst=dst,
                        line=node.lineno, col=node.col_offset,
                    ))
        self.edges.sort(key=lambda e: (e.src, e.dst, e.line))

    # -- queries --------------------------------------------------------------

    def adjacency(self) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {name: [] for name in self.modules}
        for edge in self.edges:
            if edge.dst not in adj[edge.src]:
                adj[edge.src].append(edge.dst)
        return adj

    def cycles(self) -> List[List[str]]:
        """Strongly connected components with more than one module.

        Iterative Tarjan, so a pathological fixture can't blow the
        recursion limit.  Members of each cycle are sorted and the
        cycle list itself is sorted, so reports are deterministic.
        """
        adj = self.adjacency()
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        for root in sorted(adj):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = adj[node]
                while child_i < len(children):
                    child = children[child_i]
                    child_i += 1
                    if child not in index:
                        work[-1] = (node, child_i)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return sorted(components)
