"""Machinery shared by the repository's static checkers.

Two checkers gate the tree: ``replint`` (:mod:`repro.analysis.lint`),
a per-file AST pass, and ``archcheck`` (:mod:`repro.analysis.arch`), a
whole-program pass over the import and call graphs.  Both report the
same :class:`Finding` rows, format them with the same ``path:line:col``
text / JSON conventions, and agree on which packages are
timing-critical — so that a CI consumer, an editor integration, or a
human reading two reports side by side never has to translate between
two dialects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence

#: Packages whose code feeds simulated time / the replayed access stream.
#: A wall-clock read or an unordered iteration here corrupts results;
#: the same constructs in, say, ``analysis.tables`` merely format them.
TIMING_CRITICAL_PACKAGES = frozenset(
    {"sim", "raster", "memory", "shader", "core"}
)


def is_timing_critical(path: Path) -> bool:
    """Whether ``path`` lives in a timing-critical simulator package."""
    return bool(set(Path(path).parts) & TIMING_CRITICAL_PACKAGES)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fingerprint`` is a location-independent identity used by
    archcheck's baseline ratchet (e.g. the pair of modules on a
    forbidden edge).  replint findings leave it empty; empty
    fingerprints are omitted from the JSON report so replint's output
    shape is unchanged.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fingerprint: str = ""

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        return payload

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order: path, then line, col, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def format_text(findings: Sequence[Finding], tool: str = "replint") -> str:
    """grep-style ``path:line:col: rule: message`` lines plus a summary."""
    ordered = sort_findings(findings)
    lines = [
        f"{f.location()}: {f.rule}: {f.message}" for f in ordered
    ]
    n = len(ordered)
    lines.append(
        f"{tool}: no findings" if n == 0
        else f"{tool}: {n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], tool: str = "replint",
                **extra: Any) -> str:
    """Machine-readable report: ``{"findings": [...], "count": N}``.

    ``extra`` keys are merged into the top-level object so a checker
    can attach its own summary data (archcheck adds baseline and graph
    statistics) without changing the shared shape CI gates on.
    """
    ordered = sort_findings(findings)
    payload: Dict[str, Any] = {
        "tool": tool,
        "findings": [f.as_dict() for f in ordered],
        "count": len(ordered),
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
