"""Miss decomposition: cold vs capacity vs conflict misses.

The classic three-C breakdown connects the reuse-distance profile to the
real set-associative cache:

* **cold** — first touch of a line (infinite reuse distance);
* **capacity** — would miss even in a fully-associative LRU cache of the
  same size (reuse distance >= number of lines);
* **conflict** — the remainder: misses the real set-indexed cache takes
  beyond the fully-associative count.

DTexL attacks capacity misses (replication wastes aggregate capacity);
this tool verifies that conflict misses are not secretly dominating the
L1 behaviour, which would invalidate the replication story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.analysis.reuse import reuse_profile
from repro.config import CacheConfig
from repro.memory.cache import Cache


@dataclass(frozen=True)
class MissDecomposition:
    """Counts of each miss class for one stream on one cache geometry."""

    accesses: int
    cold: int
    capacity: int
    conflict: int

    @property
    def total_misses(self) -> int:
        return self.cold + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        return self.total_misses / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        """Share of all misses in one class ('cold'/'capacity'/'conflict')."""
        total = self.total_misses
        return getattr(self, kind) / total if total else 0.0


def decompose_misses(
    stream: Iterable[int], config: CacheConfig
) -> MissDecomposition:
    """Run the three-C decomposition for one line-address stream.

    The fully-associative reference is computed from the reuse-distance
    profile (an access hits iff its distance < number of lines); the
    real cache is simulated directly.  ``conflict`` can be negative in
    pathological LRU anomalies; it is clamped at zero as is customary.
    """
    lines: List[int] = list(stream)
    profile = reuse_profile(lines)
    capacity_lines = config.num_lines
    fa_hits = sum(
        count for distance, count in profile.histogram.items()
        if distance < capacity_lines
    )
    fa_misses = len(lines) - fa_hits

    real = Cache(config)
    for line in lines:
        real.access_line(line)
    real_misses = real.stats.misses

    cold = profile.cold_accesses
    capacity = fa_misses - cold
    conflict = max(0, real_misses - fa_misses)
    return MissDecomposition(
        accesses=len(lines),
        cold=cold,
        capacity=capacity,
        conflict=conflict,
    )
