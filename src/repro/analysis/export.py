"""Structured export of simulation results (compatibility re-export).

The implementations live in :mod:`repro.sim.export`: the sweep writes
run manifests while a campaign executes, and ``sim`` importing the
analysis layer is a forbidden edge under ``archcontract.toml``.  This
module keeps the historical ``repro.analysis.export`` import path
working for analysis code, tests and notebooks.
"""

from __future__ import annotations

from repro.sim.export import (
    manifest_to_dict,
    run_result_to_dict,
    suite_result_to_dict,
    to_json,
    write_run_manifest,
)

__all__ = [
    "manifest_to_dict",
    "run_result_to_dict",
    "suite_result_to_dict",
    "to_json",
    "write_run_manifest",
]
