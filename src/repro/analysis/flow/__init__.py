"""faultcheck: whole-program exception-flow and fault-path analysis.

Static companion to the runtime fault-injection harness: recovers the
exception taxonomy from the AST, propagates raised types along
archcheck's call graph, and enforces the six flow contracts the
simulator's resilience story depends on (no swallowed kills, preserved
cause chains, transient-only retries, one-to-one fault-site wiring,
total CLI exit-code mapping, picklable worker submissions).  Run it as
``repro faultcheck``.
"""

from repro.analysis.flow.checks import FlowConfig
from repro.analysis.flow.engine import FaultCheck, FaultReport
from repro.analysis.flow.model import (
    FunctionFlow,
    HandlerSite,
    extract_flows,
    extract_handlers,
)
from repro.analysis.flow.propagate import EscapeAnalysis
from repro.analysis.flow.taxonomy import ExceptionTaxonomy

__all__ = [
    "EscapeAnalysis",
    "ExceptionTaxonomy",
    "FaultCheck",
    "FaultReport",
    "FlowConfig",
    "FunctionFlow",
    "HandlerSite",
    "extract_flows",
    "extract_handlers",
]
