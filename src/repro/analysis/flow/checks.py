"""The faultcheck passes: six whole-program exception-flow checks.

Each check returns :class:`~repro.analysis.checks_common.Finding` rows
with location-independent fingerprints, so the baseline ratchet of
:mod:`repro.analysis.arch.baseline` applies unchanged:

1. ``swallowed-base-exception`` — no handler absorbs ``BaseException``
   (or a ``BaseException``-only project class such as ``InjectedKill``)
   without re-raising; an injected kill that a boundary can eat
   un-proves every chaos guarantee.
2. ``dropped-cause-chain`` — a wrap-and-reraise site must carry its
   cause (``raise X(...) from e``); binding the error and then raising
   ``from None`` silently discards the very context a post-mortem
   needs.
3. ``non-transient-retry`` — a ``while``-loop retry handler may only
   re-attempt error types the taxonomy marks transient, call the
   runtime transiency guard, or convert the failure into a typed
   transient error.
4. ``orphan-fault-site`` / ``unknown-fault-site`` /
   ``duplicate-fault-site`` — every ``SITE_*`` name declared in the
   fault-injection module is wired to exactly one live hook call, and
   every hook call names a declared site.
5. ``unmapped-exit-code`` / ``undocumented-exit-code`` — every project
   exception that can escape a CLI subcommand is caught by the CLI
   boundary and mapped to a named ``EXIT_*`` constant.
6. ``unpicklable-worker-capture`` — objects handed to a process-pool
   ``submit()`` must survive the fork/spawn boundary: no lambdas, no
   closures over local defs, no locally opened handles or locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.arch.modgraph import ModuleGraph
from repro.analysis.checks_common import Finding
from repro.analysis.flow.model import HandlerSite
from repro.analysis.flow.propagate import EscapeAnalysis
from repro.analysis.flow.taxonomy import ExceptionTaxonomy
from repro.analysis.lint.rules import build_import_aliases, dotted_name


@dataclass(frozen=True)
class FlowConfig:
    """What the program under analysis calls its moving parts.

    The defaults target this repository; the test-suite's synthetic
    fixture packages override them.
    """

    #: Module declaring ``SITE_*`` constants and the hook function.
    faults_module: str = "repro.sim.faults"
    #: Name of the injection hook the hot paths call.
    fault_hook: str = "fault_point"
    #: Module holding the CLI subcommands and dispatcher.
    cli_module: str = "repro.cli"
    #: Prefix of subcommand handler functions in the CLI module.
    command_prefix: str = "cmd_"
    #: The dispatcher whose ``except`` clauses are the CLI boundary.
    boundary_function: str = "main"
    #: Prefix of the documented exit-code constants.
    exit_prefix: str = "EXIT_"
    #: Calls inside a retry handler that prove runtime transiency
    #: checking (so catching broad types there stays legal).
    transiency_guards: Tuple[str, ...] = ("is_transient", "attempts_for")


def _function_label(site: HandlerSite) -> str:
    return site.function or f"{site.module}.<module>"


# -- 1. swallowed BaseException / InjectedKill --------------------------------


def check_swallowed_base_exceptions(
    handlers: Sequence[HandlerSite], taxonomy: ExceptionTaxonomy,
) -> List[Finding]:
    """Handlers that absorb kill-class exceptions without re-raising."""
    findings: List[Finding] = []
    for site in handlers:
        if site.reraises:
            continue
        caught: List[str] = []
        if site.bare:
            caught.append("BaseException")
        for identity in site.types:
            if identity is None:
                continue
            if identity == "BaseException":
                caught.append("BaseException")
            elif (
                identity in taxonomy.classes
                and not taxonomy.is_exception_subclass(identity)
            ):
                # A project class that derives from BaseException but
                # not Exception exists precisely to punch through
                # error boundaries; swallowing it defeats its design.
                caught.append(identity)
        for identity in caught:
            findings.append(Finding(
                path=site.path, line=site.line, col=site.col,
                rule="swallowed-base-exception",
                message=(
                    f"{_function_label(site)} swallows "
                    f"{identity.rsplit('.', 1)[-1]} without re-raising; "
                    "a kill-class exception must end the process like a "
                    "power cut, or the fault-injection guarantees are "
                    "unproven"
                ),
                fingerprint=(
                    "swallowed-base-exception:"
                    f"{_function_label(site)}:{identity}"
                ),
            ))
    return findings


# -- 2. dropped cause chains --------------------------------------------------


def check_cause_chains(graph: ModuleGraph) -> List[Finding]:
    """Wrap-and-reraise sites that lose the exception they translate.

    A ``raise X(...)`` with no ``from`` clause inside an ``except``
    block chains implicitly in CPython, but the *intent* is ambiguous
    and ``__cause__`` stays unset; a ``raise X(...) from None`` in a
    handler that *bound* the error deliberately bins the context it
    went to the trouble of naming.  Both must become ``from <err>``
    (or justify themselves in the baseline).
    """
    findings: List[Finding] = []
    for info in graph.modules.values():

        def visit(node: ast.AST, handler: Optional[ast.ExceptHandler],
                  function: str) -> None:
            for child in ast.iter_child_nodes(node):
                child_handler = handler
                child_function = function
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    child_function = (
                        f"{function}.{child.name}" if function
                        else f"{info.name}.{child.name}"
                    )
                    child_handler = None  # a new frame starts clean
                elif isinstance(child, ast.ExceptHandler):
                    child_handler = child
                elif isinstance(child, ast.Raise) and handler is not None:
                    if isinstance(child.exc, ast.Call):
                        raised = dotted_name(child.exc.func) or "<dynamic>"
                        caught = ",".join(
                            _spelled_types(handler)
                        ) or "<bare>"
                        label = function or f"{info.name}.<module>"
                        if child.cause is None:
                            findings.append(Finding(
                                path=str(info.path), line=child.lineno,
                                col=child.col_offset,
                                rule="dropped-cause-chain",
                                message=(
                                    f"{label} wraps a caught exception in "
                                    f"{raised} without `from`; write "
                                    "`raise ... from err` to preserve the "
                                    "cause chain (or `from None` to "
                                    "suppress it on purpose)"
                                ),
                                fingerprint=(
                                    "dropped-cause-chain:"
                                    f"{label}:{caught}->{raised}"
                                ),
                            ))
                        elif (
                            isinstance(child.cause, ast.Constant)
                            and child.cause.value is None
                            and handler.name is not None
                        ):
                            findings.append(Finding(
                                path=str(info.path), line=child.lineno,
                                col=child.col_offset,
                                rule="dropped-cause-chain",
                                message=(
                                    f"{label} binds the caught error as "
                                    f"`{handler.name}` but raises {raised} "
                                    "`from None`, discarding the cause "
                                    f"chain; use `from {handler.name}`"
                                ),
                                fingerprint=(
                                    "dropped-cause-chain:"
                                    f"{label}:{caught}->{raised}"
                                ),
                            ))
                visit(child, child_handler, child_function)

        visit(info.tree, None, "")
    return findings


def _spelled_types(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return []
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return [dotted_name(node) or "<dynamic>" for node in nodes]


# -- 3. retry hygiene ---------------------------------------------------------


def check_retry_hygiene(
    handlers: Sequence[HandlerSite], taxonomy: ExceptionTaxonomy,
    config: FlowConfig,
) -> List[Finding]:
    """Retry loops may only re-attempt transient error types.

    A handler inside a ``while`` loop that sends control back around
    (explicit ``continue`` or falling off the end) is a retry.  Each
    caught type must be transient in the taxonomy, unless the handler
    consults the runtime transiency guard (``is_transient`` /
    ``attempts_for``) or converts the failure into a transient typed
    error (the pool's ``WorkerCrashError`` conversion pattern).
    """
    findings: List[Finding] = []
    for site in handlers:
        if not (site.in_loop and site.retries) or site.reraises:
            continue
        if _calls_guard(site.node, config.transiency_guards):
            continue
        if _constructs_transient(site.node, taxonomy):
            continue
        spelled_all = site.spelled if not site.bare else ("<bare>",)
        identities = site.types if not site.bare else (None,)
        for spelled, identity in zip(spelled_all, identities):
            if identity is not None and taxonomy.is_transient(identity):
                continue
            findings.append(Finding(
                path=site.path, line=site.line, col=site.col,
                rule="non-transient-retry",
                message=(
                    f"{_function_label(site)} retries on {spelled}, which "
                    "the taxonomy does not mark transient; retrying a "
                    "deterministic failure burns campaign wall time and "
                    "hides real bugs — catch a transient type, or guard "
                    "with is_transient()/attempts_for()"
                ),
                fingerprint=(
                    "non-transient-retry:"
                    f"{_function_label(site)}:{identity or spelled}"
                ),
            ))
    return findings


def _calls_guard(handler: ast.ExceptHandler,
                 guards: Tuple[str, ...]) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name and name.rsplit(".", 1)[-1] in guards:
                return True
    return False


def _constructs_transient(handler: ast.ExceptHandler,
                          taxonomy: ExceptionTaxonomy) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            identity = taxonomy.resolve(name) if name else None
            if identity is not None and taxonomy.is_transient(identity):
                return True
    return False


# -- 4. fault-site wiring -----------------------------------------------------


def check_fault_sites(graph: ModuleGraph,
                      config: FlowConfig) -> List[Finding]:
    """Declared ``SITE_*`` names <-> live hook calls, exactly one each."""
    faults_info = graph.modules.get(config.faults_module)
    if faults_info is None:
        return []
    declared: Dict[str, Tuple[int, str]] = {}  # site value -> (line, name)
    for node in faults_info.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id.startswith("SITE_")):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(
            node.value.value, str
        ):
            declared[node.value.value] = (node.lineno, target.id)

    # site value -> [(path, line)] of hook calls naming it
    calls: Dict[str, List[Tuple[str, int]]] = {}
    findings: List[Finding] = []
    constant_names = {name: value for value, (_, name) in declared.items()}
    for info in graph.modules.values():
        if info.name == config.faults_module:
            continue  # the hook's own definition is not a wiring site
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name or name.rsplit(".", 1)[-1] != config.fault_hook:
                continue
            site_value = _site_argument(node, constant_names)
            if site_value is None:
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, rule="unknown-fault-site",
                    message=(
                        f"cannot resolve the site of this "
                        f"{config.fault_hook}() call to a declared "
                        "SITE_* constant; injection wiring must be "
                        "statically auditable"
                    ),
                    fingerprint=f"unknown-fault-site:{info.name}:<dynamic>",
                ))
                continue
            if site_value not in declared:
                findings.append(Finding(
                    path=str(info.path), line=node.lineno,
                    col=node.col_offset, rule="unknown-fault-site",
                    message=(
                        f"{config.fault_hook}() names site "
                        f"{site_value!r}, which {config.faults_module} "
                        "does not declare; the hook is dead (it can "
                        "never fire a declared spec)"
                    ),
                    fingerprint=f"unknown-fault-site:{site_value}",
                ))
                continue
            calls.setdefault(site_value, []).append(
                (str(info.path), node.lineno)
            )
    for site_value, (line, name) in sorted(declared.items()):
        sites = calls.get(site_value, [])
        if not sites:
            findings.append(Finding(
                path=str(faults_info.path), line=line, col=0,
                rule="orphan-fault-site",
                message=(
                    f"fault site {site_value!r} ({name}) has no live "
                    f"{config.fault_hook}() hook; every declared site "
                    "must be wired into a hot path or deleted"
                ),
                fingerprint=f"orphan-fault-site:{site_value}",
            ))
        elif len(sites) > 1:
            where = ", ".join(f"{p}:{ln}" for p, ln in sorted(sites))
            findings.append(Finding(
                path=sites[1][0], line=sites[1][1], col=0,
                rule="duplicate-fault-site",
                message=(
                    f"fault site {site_value!r} is hooked at "
                    f"{len(sites)} call sites ({where}); one site name "
                    "should mean one injection point, or chaos "
                    "attribution becomes ambiguous"
                ),
                fingerprint=f"duplicate-fault-site:{site_value}",
            ))
    return findings


def _site_argument(call: ast.Call,
                   constant_names: Dict[str, str]) -> Optional[str]:
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    name = dotted_name(arg)
    if name is not None:
        return constant_names.get(name.rsplit(".", 1)[-1])
    return None


# -- 5. CLI exit-code mapping -------------------------------------------------


def check_cli_exit_codes(
    graph: ModuleGraph, callgraph: CallGraph, escapes: EscapeAnalysis,
    taxonomy: ExceptionTaxonomy, config: FlowConfig,
) -> List[Finding]:
    """Every taxonomy error reaching a subcommand maps to an exit code."""
    cli_info = graph.modules.get(config.cli_module)
    if cli_info is None:
        return []
    aliases = build_import_aliases(cli_info.tree)
    exit_constants = {
        target.id
        for node in cli_info.tree.body
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name)
        and target.id.startswith(config.exit_prefix)
    }
    boundary_qual = f"{config.cli_module}.{config.boundary_function}"
    boundary = callgraph.functions.get(boundary_qual)
    if boundary is None:
        return []

    findings: List[Finding] = []
    covered: Set[str] = set()
    for node in ast.walk(boundary.node):
        if not isinstance(node, ast.ExceptHandler):
            continue
        spelled = _spelled_types(node) or ["<bare>"]
        for name in spelled:
            head, _, rest = name.partition(".")
            expanded = aliases.get(head, head)
            full = f"{expanded}.{rest}" if rest else expanded
            identity = taxonomy.resolve(full)
            if identity is not None:
                covered.add(identity)
        if not _returns_documented_exit(node, exit_constants):
            findings.append(Finding(
                path=str(cli_info.path), line=node.lineno,
                col=node.col_offset, rule="undocumented-exit-code",
                message=(
                    f"the CLI boundary handler for "
                    f"{', '.join(spelled)} does not return a named "
                    f"{config.exit_prefix}* constant; exit codes are "
                    "API for unattended campaign drivers and must be "
                    "documented module-level names"
                ),
                fingerprint=(
                    "undocumented-exit-code:" + ",".join(spelled)
                ),
            ))

    for qual, fn in sorted(callgraph.functions.items()):
        if fn.module != config.cli_module or fn.class_name is not None:
            continue
        short = qual.rsplit(".", 1)[-1]
        if not short.startswith(config.command_prefix):
            continue
        for identity in sorted(escapes.escaping(qual)):
            if any(taxonomy.catches(c, identity) for c in covered):
                continue
            findings.append(Finding(
                path=fn.path, line=fn.node.lineno, col=fn.node.col_offset,
                rule="unmapped-exit-code",
                message=(
                    f"{identity.rsplit('.', 1)[-1]} can escape {short} "
                    "but no CLI boundary handler catches it; an "
                    "unattended driver would see a raw traceback "
                    "instead of a documented exit code"
                ),
                fingerprint=f"unmapped-exit-code:{short}:{identity}",
            ))
    return findings


def _returns_documented_exit(handler: ast.ExceptHandler,
                             exit_constants: Set[str]) -> bool:
    saw_return = False
    for node in ast.walk(handler):
        if isinstance(node, ast.Return) and node.value is not None:
            saw_return = True
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in exit_constants
            ):
                return True
        elif isinstance(node, ast.Raise):
            return True  # not a mapping handler; re-escalates
    # A handler with no return at all maps nothing — treat as
    # undocumented only when it also returns something unnamed.
    return not saw_return


# -- 6. picklable worker submissions ------------------------------------------

#: Constructor tails whose results never survive a fork boundary.
_UNPICKLABLE_FACTORIES = frozenset({
    "open", "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "socket", "connect",
})


def check_worker_pickles(graph: ModuleGraph) -> List[Finding]:
    """Statically vet everything handed to a process-pool ``submit``.

    Heuristic targeting: any ``<receiver>.submit(...)`` call whose
    receiver mentions an executor or pool.  The submitted callable must
    be a module-level function — not a lambda, not a function defined
    inside the submitting frame (its closure cells die at the fork
    boundary) — and no argument may be a lambda or a name locally bound
    to an open handle or lock.
    """
    findings: List[Finding] = []
    for info in graph.modules.values():
        module_defs = {
            node.name for node in info.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        def scan_function(fn_node: ast.AST, label: str) -> None:
            nested_defs: Set[str] = set()
            lambda_names: Set[str] = set()
            handle_names: Set[str] = set()
            for node in ast.walk(fn_node):
                if node is not fn_node and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested_defs.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if not isinstance(target, ast.Name):
                            continue
                        if isinstance(node.value, ast.Lambda):
                            lambda_names.add(target.id)
                        elif isinstance(node.value, ast.Call):
                            callee = dotted_name(node.value.func) or ""
                            if callee.rsplit(".", 1)[-1] in (
                                _UNPICKLABLE_FACTORIES
                            ):
                                handle_names.add(target.id)
            for node in ast.walk(fn_node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "submit"):
                    continue
                receiver = dotted_name(node.func.value) or ""
                lowered = receiver.lower()
                if "executor" not in lowered and "pool" not in lowered:
                    continue
                problems: List[str] = []
                if node.args:
                    target = node.args[0]
                    if isinstance(target, ast.Lambda):
                        problems.append("a lambda as the task callable")
                    elif isinstance(target, ast.Name):
                        if target.id in nested_defs:
                            problems.append(
                                f"locally defined function "
                                f"{target.id!r} (closure cells do not "
                                "cross the fork boundary)"
                            )
                        elif target.id in lambda_names:
                            problems.append(
                                f"{target.id!r}, which is bound to a "
                                "lambda"
                            )
                        elif (target.id not in module_defs
                              and target.id in handle_names):
                            problems.append(
                                f"{target.id!r}, which holds an open "
                                "handle or lock"
                            )
                for extra in list(node.args[1:]) + [
                    kw.value for kw in node.keywords
                ]:
                    if isinstance(extra, ast.Lambda):
                        problems.append("a lambda argument")
                    elif (isinstance(extra, ast.Name)
                          and extra.id in (lambda_names | handle_names
                                           | nested_defs)):
                        problems.append(
                            f"argument {extra.id!r} bound to a lambda, "
                            "local function, open handle or lock"
                        )
                for problem in problems:
                    findings.append(Finding(
                        path=str(info.path), line=node.lineno,
                        col=node.col_offset,
                        rule="unpicklable-worker-capture",
                        message=(
                            f"{label} submits {problem} to a process "
                            "pool; worker submissions must be "
                            "module-level callables over picklable "
                            "arguments"
                        ),
                        fingerprint=(
                            "unpicklable-worker-capture:"
                            f"{label}:{problem.split(chr(39))[0].strip()}"
                        ),
                    ))

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    scan_function(
                        child,
                        f"{prefix}.{child.name}" if prefix else (
                            f"{info.name}.{child.name}"
                        ),
                    )
                elif isinstance(child, ast.ClassDef):
                    visit(
                        child,
                        f"{prefix}.{child.name}" if prefix else (
                            f"{info.name}.{child.name}"
                        ),
                    )

        visit(info.tree, "")
    return findings
