"""The faultcheck engine: run every flow pass, apply the baseline.

Mirrors :class:`repro.analysis.arch.engine.ArchCheck`: one
:meth:`FaultCheck.run` builds the module graph, recovers the exception
taxonomy, extracts handler and flow facts, solves the interprocedural
escape fixpoint, runs the six checks, and splits the findings against
the shared ratcheted baseline — *new* findings gate (exit 1 in the
CLI), *baselined* findings are reported but tolerated, *stale* entries
are surfaced so waivers only ever shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.arch.baseline import Baseline
from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.arch.modgraph import ModuleGraph
from repro.analysis.checks_common import Finding, sort_findings
from repro.analysis.flow.checks import (
    FlowConfig,
    check_cause_chains,
    check_cli_exit_codes,
    check_fault_sites,
    check_retry_hygiene,
    check_swallowed_base_exceptions,
    check_worker_pickles,
)
from repro.analysis.flow.model import (
    HandlerSite,
    extract_flows,
    extract_handlers,
)
from repro.analysis.flow.propagate import EscapeAnalysis
from repro.analysis.flow.taxonomy import ExceptionTaxonomy


@dataclass
class FaultReport:
    """Everything one faultcheck run produced."""

    graph: ModuleGraph
    taxonomy: ExceptionTaxonomy
    escapes: EscapeAnalysis
    #: findings NOT covered by the baseline — these gate.
    findings: List[Finding] = field(default_factory=list)
    #: findings covered by a justified baseline entry.
    baselined: List[Finding] = field(default_factory=list)
    #: baseline fingerprints that no longer match anything.
    stale: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> Dict[str, int]:
        """Headline numbers for reports."""
        return {
            "modules": len(self.graph.modules),
            "exception_classes": len(self.taxonomy.classes),
            "functions": len(self.escapes.flows),
            "findings": len(self.findings),
            "baselined": len(self.baselined),
            "stale": len(self.stale),
        }


class FaultCheck:
    """Whole-program exception-flow checks over one source root."""

    def __init__(self, src_root: Path, package: str = "repro",
                 config: Optional[FlowConfig] = None,
                 baseline: Optional[Baseline] = None):
        self.src_root = Path(src_root)
        self.package = package
        self.config = config if config is not None else FlowConfig()
        self.baseline = baseline if baseline is not None else Baseline(
            path=self.src_root / "faultcheck-baseline.json"
        )

    def run(self, update_baseline: bool = False) -> FaultReport:
        graph = ModuleGraph.build(self.src_root, packages=[self.package])
        taxonomy = ExceptionTaxonomy.build(graph)
        callgraph = CallGraph(graph)
        handlers: List[HandlerSite] = []
        for info in graph.modules.values():
            handlers.extend(extract_handlers(info, taxonomy))
        flows = extract_flows(graph, callgraph, taxonomy)
        escapes = EscapeAnalysis(flows, taxonomy)

        raw: List[Finding] = list(graph.errors)
        raw.extend(check_swallowed_base_exceptions(handlers, taxonomy))
        raw.extend(check_cause_chains(graph))
        raw.extend(check_retry_hygiene(handlers, taxonomy, self.config))
        raw.extend(check_fault_sites(graph, self.config))
        raw.extend(check_cli_exit_codes(
            graph, callgraph, escapes, taxonomy, self.config
        ))
        raw.extend(check_worker_pickles(graph))
        raw = sort_findings(raw)
        if update_baseline:
            self.baseline.write_updated(raw)
        new, baselined, stale = self.baseline.partition(raw)
        new.extend(self.baseline.unjustified())
        return FaultReport(
            graph=graph,
            taxonomy=taxonomy,
            escapes=escapes,
            findings=sort_findings(new),
            baselined=baselined,
            stale=stale,
        )
