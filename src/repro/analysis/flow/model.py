"""Syntactic exception-flow facts, extracted once per module.

The checks in :mod:`repro.analysis.flow.checks` and the propagation in
:mod:`repro.analysis.flow.propagate` both consume the same two views
built here:

* :class:`HandlerSite` — every ``except`` clause in a module, with its
  caught types resolved against the taxonomy, its bound name, whether
  it re-raises, and whether it sits inside a loop (a *retry
  candidate*);
* :class:`FunctionFlow` — per indexed function, every ``raise`` site
  and every resolved call site, each annotated with the *masks* of the
  ``try`` bodies enclosing it (the sets of exception types the
  surrounding handlers would stop).  Statements in a handler, ``else``
  or ``finally`` block are deliberately *not* masked by that ``try`` —
  Python does not protect them — and a handler that re-raises masks
  nothing, since whatever it catches keeps flying.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.arch.modgraph import ModuleGraph, ModuleInfo
from repro.analysis.flow.taxonomy import ExceptionTaxonomy
from repro.analysis.lint.rules import build_import_aliases, dotted_name

#: Mask: resolved identities one enclosing ``try`` would stop.
Mask = Tuple[str, ...]


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement inside an indexed function."""

    #: Resolved identity of the raised type; ``None`` when the raise
    #: re-raises (bare ``raise`` / ``raise caught_name``) or names
    #: something the taxonomy cannot identify.
    identity: Optional[str]
    line: int
    masks: Tuple[Mask, ...]


@dataclass(frozen=True)
class FlowCallSite:
    """One resolved intra-project call inside an indexed function."""

    callee: str
    line: int
    masks: Tuple[Mask, ...]


@dataclass
class FunctionFlow:
    """Raise and call sites of one function, ready for propagation."""

    qualname: str
    raises: List[RaiseSite] = field(default_factory=list)
    calls: List[FlowCallSite] = field(default_factory=list)


@dataclass
class HandlerSite:
    """One ``except`` clause, anywhere in a module."""

    module: str
    path: str
    line: int
    col: int
    #: Resolved identities of the caught types (``None`` entries for
    #: types the taxonomy cannot identify).
    types: Tuple[Optional[str], ...]
    #: The caught types as written in source, for messages.
    spelled: Tuple[str, ...]
    bare: bool                       #: ``except:`` with no type
    name: Optional[str]              #: ``except E as name``
    reraises: bool                   #: contains ``raise`` / ``raise name``
    #: Whether the handler's ``try`` sits inside a ``while`` loop in
    #: the same function — the precondition for the retry-hygiene
    #: check (a ``for`` loop iterates distinct work, not re-attempts).
    in_loop: bool
    #: Whether the handler can send control back around that loop: it
    #: contains a ``continue``, or its body can complete normally
    #: (no terminal raise/return/break).
    retries: bool
    #: Enclosing function qualname, best effort ("" at module level).
    function: str
    node: ast.ExceptHandler


def _resolve_exception_name(name: Optional[str], aliases: Dict[str, str],
                            taxonomy: ExceptionTaxonomy,
                            module: str) -> Optional[str]:
    """Resolve a (possibly dotted) source name to a taxonomy identity."""
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expanded = aliases.get(head, head)
    full = f"{expanded}.{rest}" if rest else expanded
    resolved = taxonomy.resolve(full)
    if resolved is not None:
        return resolved
    # A name defined in this very module resolves relative to it.
    return taxonomy.resolve(f"{module}.{name}")


def _handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    """The spelled type names of one ``except`` clause (tuple-aware)."""
    if handler.type is None:
        return []
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return [dotted_name(node) or "<dynamic>" for node in nodes]


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler lets what it caught keep flying."""
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            return True
        if (
            handler.name is not None
            and isinstance(node.exc, ast.Name)
            and node.exc.id == handler.name
        ):
            return True
    return False


def _terminal(stmt: ast.stmt) -> bool:
    """Whether ``stmt``, as a handler's last statement, exits the loop."""
    return isinstance(stmt, (ast.Raise, ast.Return, ast.Break, ast.Continue))


def _can_retry(handler: ast.ExceptHandler) -> bool:
    """Whether control can re-enter the enclosing loop via this handler.

    True when the handler contains a ``continue`` (outside any nested
    loop of its own) or when its body's last statement is not a
    raise/return/break — falling off the end of a handler inside a
    loop is an implicit retry.
    """
    def has_continue(stmts: List[ast.stmt]) -> bool:
        for stmt in stmts:
            if isinstance(stmt, ast.Continue):
                return True
            if isinstance(stmt, (ast.For, ast.While,
                                 ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # a nested loop/function owns its own continues
            for name in ("body", "orelse", "finalbody"):
                if has_continue(getattr(stmt, name, []) or []):
                    return True
            for sub in getattr(stmt, "handlers", []) or []:
                if has_continue(sub.body):
                    return True
        return False

    if has_continue(handler.body):
        return True
    last = handler.body[-1]
    if isinstance(last, ast.Continue):
        return True
    return not _terminal(last)


def extract_handlers(info: ModuleInfo,
                     taxonomy: ExceptionTaxonomy) -> List[HandlerSite]:
    """Every ``except`` clause of one module, innermost attribution."""
    aliases = build_import_aliases(info.tree)
    sites: List[HandlerSite] = []

    def visit(node: ast.AST, function: str, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_function = function
            child_in_loop = in_loop
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_function = (
                    f"{function}.{child.name}" if function
                    else f"{info.name}.{child.name}"
                )
                child_in_loop = False  # a new frame: loops don't carry in
            elif isinstance(child, ast.ClassDef):
                child_function = (
                    f"{function}.{child.name}" if function
                    else f"{info.name}.{child.name}"
                )
                child_in_loop = False
            elif isinstance(child, ast.While):
                child_in_loop = True
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                # A for loop iterates *distinct* work items; catching a
                # failure there is isolation, not a retry of the same
                # attempt.  Only while loops are retry candidates, and
                # a nested for owns any continue inside it.
                child_in_loop = False
            elif isinstance(child, ast.Try):
                for handler in child.handlers:
                    spelled = tuple(_handler_type_names(handler))
                    types = tuple(
                        _resolve_exception_name(
                            name if name != "<dynamic>" else None,
                            aliases, taxonomy, info.name,
                        )
                        for name in spelled
                    )
                    sites.append(HandlerSite(
                        module=info.name,
                        path=str(info.path),
                        line=handler.lineno,
                        col=handler.col_offset,
                        types=types,
                        spelled=spelled,
                        bare=handler.type is None,
                        name=handler.name,
                        reraises=_reraises(handler),
                        in_loop=in_loop,
                        retries=_can_retry(handler),
                        function=function,
                        node=handler,
                    ))
            visit(child, child_function, child_in_loop)

    visit(info.tree, "", False)
    return sites


def extract_flows(graph: ModuleGraph, callgraph: CallGraph,
                  taxonomy: ExceptionTaxonomy) -> Dict[str, FunctionFlow]:
    """Build the propagation view for every indexed function."""
    aliases = {
        name: build_import_aliases(info.tree)
        for name, info in graph.modules.items()
    }
    flows: Dict[str, FunctionFlow] = {}
    for qual, fn in callgraph.functions.items():
        flow = FunctionFlow(qualname=qual)
        module_aliases = aliases.get(fn.module, {})

        def mask_of(try_node: ast.Try) -> Mask:
            caught: List[str] = []
            for handler in try_node.handlers:
                if handler.type is None:
                    # A bare except that swallows stops everything the
                    # domain tracks; one that re-raises masks nothing.
                    if not _reraises(handler):
                        caught.append("BaseException")
                    continue
                if _reraises(handler):
                    continue
                for name in _handler_type_names(handler):
                    resolved = _resolve_exception_name(
                        name if name != "<dynamic>" else None,
                        module_aliases, taxonomy, fn.module,
                    )
                    if resolved is not None:
                        caught.append(resolved)
            return tuple(caught)

        def handle(node: ast.AST, masks: Tuple[Mask, ...],
                   handler_name: Optional[str]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                return  # nested frames are indexed on their own
            if isinstance(node, ast.Raise):
                identity: Optional[str] = None
                if isinstance(node.exc, ast.Call):
                    identity = _resolve_exception_name(
                        dotted_name(node.exc.func),
                        module_aliases, taxonomy, fn.module,
                    )
                elif isinstance(node.exc, ast.Name) and (
                    node.exc.id != handler_name
                ):
                    identity = _resolve_exception_name(
                        node.exc.id, module_aliases, taxonomy,
                        fn.module,
                    )
                flow.raises.append(RaiseSite(
                    identity=identity, line=node.lineno, masks=masks,
                ))
            if isinstance(node, ast.Call):
                callee = callgraph.resolve_call(fn, node)
                if callee is not None:
                    flow.calls.append(FlowCallSite(
                        callee=callee, line=node.lineno, masks=masks,
                    ))
            if isinstance(node, ast.Try):
                body_masks = masks + (mask_of(node),)
                for stmt in node.body:
                    handle(stmt, body_masks, handler_name)
                # handlers / else / finally run unprotected by this
                # try; a handler's own raises see its bound name.
                for handler in node.handlers:
                    for stmt in handler.body:
                        handle(stmt, masks, handler.name or handler_name)
                for stmt in node.orelse + node.finalbody:
                    handle(stmt, masks, handler_name)
                return
            for child in ast.iter_child_nodes(node):
                handle(child, masks, handler_name)

        for stmt in fn.node.body:
            handle(stmt, (), None)
        flows[qual] = flow
    return flows
