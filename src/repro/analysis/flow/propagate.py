"""Interprocedural propagation of raised exception types.

Given the per-function :class:`~repro.analysis.flow.model.FunctionFlow`
facts and archcheck's resolved call graph, compute for every function
the set of *project-defined* exception types that can escape it: its
own ``raise`` sites plus everything escaping its callees, minus
whatever the ``try`` bodies those sites sit in would catch.

The domain is deliberately the project taxonomy (classes defined in
the analyzed source, ``Exception``-derived) — the analyzer proves how
*our* typed errors flow to the CLI boundary, not that third-party code
never throws.  The fixpoint is a plain worklist iteration: the domain
is finite and masks only shrink sets, so it terminates.

Like archcheck's call graph, this is a conservative approximation with
silent non-edges: a call that cannot be resolved contributes nothing,
so the pass can miss an escape but masks are only applied where the
handler type is known — an unknown handler type never hides one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.analysis.flow.model import FunctionFlow, Mask
from repro.analysis.flow.taxonomy import ExceptionTaxonomy


class EscapeAnalysis:
    """Fixpoint escape sets over the flow facts of a whole program."""

    def __init__(self, flows: Mapping[str, FunctionFlow],
                 taxonomy: ExceptionTaxonomy):
        self.flows = flows
        self.taxonomy = taxonomy
        #: Tracked domain: project exceptions that derive from
        #: ``Exception`` (``BaseException``-only types like
        #: ``InjectedKill`` are policed by the swallow check instead).
        self.domain: Set[str] = {
            qual for qual in taxonomy.project_exceptions()
            if taxonomy.is_exception_subclass(qual)
        }
        self.escapes: Dict[str, Set[str]] = {
            qual: set() for qual in flows
        }
        self._solve()

    def _survives(self, identity: str, masks: Tuple[Mask, ...]) -> bool:
        """Whether ``identity`` flies past every enclosing handler."""
        for mask in masks:
            for caught in mask:
                if self.taxonomy.catches(caught, identity):
                    return False
        return True

    def _local(self, flow: FunctionFlow) -> Set[str]:
        out: Set[str] = set()
        for site in flow.raises:
            if site.identity in self.domain and self._survives(
                site.identity, site.masks
            ):
                out.add(site.identity)
        return out

    def _solve(self) -> None:
        # Seed with each function's own surviving raises, then iterate
        # callers until nothing changes.
        callers: Dict[str, Set[str]] = {qual: set() for qual in self.flows}
        for qual, flow in self.flows.items():
            self.escapes[qual] = self._local(flow)
            for call in flow.calls:
                if call.callee in callers:
                    callers[call.callee].add(qual)
        work = [qual for qual, esc in self.escapes.items() if esc]
        while work:
            changed = work.pop()
            for caller in callers.get(changed, ()):
                flow = self.flows[caller]
                added = False
                for call in flow.calls:
                    if call.callee != changed:
                        continue
                    for identity in self.escapes[changed]:
                        if identity in self.escapes[caller]:
                            continue
                        if self._survives(identity, call.masks):
                            self.escapes[caller].add(identity)
                            added = True
                if added:
                    work.append(caller)

    def escaping(self, qualname: str) -> Set[str]:
        """Project exception types that can escape ``qualname``."""
        return set(self.escapes.get(qualname, set()))

    def summary(self, qualnames: Iterable[str]) -> Dict[str, int]:
        """Escape-set sizes for reporting."""
        return {
            qual: len(self.escapes.get(qual, ())) for qual in qualnames
        }
