"""The program's exception taxonomy, recovered from the AST.

Every faultcheck pass needs to answer two questions about exception
*types* without importing the code under analysis: does handler type
``H`` catch raised type ``R``, and is ``R`` flagged transient for the
retry machinery?  This module indexes every exception class defined in
a :class:`~repro.analysis.arch.modgraph.ModuleGraph` (a class whose
base chain reaches a builtin exception), resolves their bases through
import aliases, and layers that hierarchy on top of a small table of
builtin exception parents — enough to decide ``except ValueError``
catches ``ConfigError`` and ``except Exception`` does *not* catch
``InjectedKill``.

Transiency mirrors :mod:`repro.errors`: a class-level ``transient =
True`` assignment marks the class (and, by inheritance, its subclasses)
as fair game for the retry policy.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.arch.modgraph import ModuleGraph
from repro.analysis.lint.rules import build_import_aliases, dotted_name

#: Parent of each builtin exception the simulator's code touches.  The
#: table only needs the ancestors of types that appear in ``raise`` /
#: ``except`` clauses; anything unknown is treated as unrelated, which
#: errs toward reporting (an unmasked escape) rather than silence.
BUILTIN_BASES: Dict[str, Optional[str]] = {
    "BaseException": None,
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "TimeoutError": "OSError",
    "OverflowError": "ArithmeticError",
    "RecursionError": "RuntimeError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "StopIteration": "Exception",
    "SyntaxError": "Exception",
    "TypeError": "Exception",
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "ValueError": "Exception",
}


@dataclass
class ExceptionClass:
    """One project-defined exception class."""

    qualname: str              #: ``repro.errors.ConfigError``
    module: str
    line: int
    #: Bases as resolved qualnames (project classes) or bare builtin
    #: names (``ValueError``); unresolvable bases are dropped.
    bases: List[str] = field(default_factory=list)
    #: The class's own ``transient = ...`` assignment, if any.
    transient_flag: Optional[bool] = None


class ExceptionTaxonomy:
    """Subclass and transiency queries over the program's exceptions."""

    def __init__(self) -> None:
        self.classes: Dict[str, ExceptionClass] = {}
        #: bare class name -> qualnames defining it (for last-segment
        #: matching when an import alias cannot be expanded).
        self._by_name: Dict[str, List[str]] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, graph: ModuleGraph) -> "ExceptionTaxonomy":
        """Index every exception class defined under ``graph``.

        Two passes: collect every class with its alias-resolved bases,
        then keep the subset whose base chain reaches a builtin
        exception (through any number of project classes).
        """
        taxonomy = cls()
        candidates: Dict[str, ExceptionClass] = {}
        for info in graph.modules.values():
            aliases = build_import_aliases(info.tree)
            local_classes = {
                node.name: f"{info.name}.{node.name}"
                for node in info.tree.body if isinstance(node, ast.ClassDef)
            }
            for node in info.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                bases: List[str] = []
                for base in node.bases:
                    name = dotted_name(base)
                    if name is None:
                        continue
                    if name in local_classes:
                        bases.append(local_classes[name])
                        continue
                    head, _, rest = name.partition(".")
                    expanded = aliases.get(head, head)
                    full = f"{expanded}.{rest}" if rest else expanded
                    bases.append(full)
                candidates[f"{info.name}.{node.name}"] = ExceptionClass(
                    qualname=f"{info.name}.{node.name}",
                    module=info.name,
                    line=node.lineno,
                    bases=bases,
                    transient_flag=_transient_flag(node),
                )
        for qual, record in candidates.items():
            if taxonomy._reaches_builtin(qual, candidates, set()):
                taxonomy.classes[qual] = record
        for qual in taxonomy.classes:
            taxonomy._by_name.setdefault(
                qual.rsplit(".", 1)[1], []
            ).append(qual)
        return taxonomy

    def _reaches_builtin(self, qual: str,
                         candidates: Dict[str, ExceptionClass],
                         seen: Set[str]) -> bool:
        if qual in seen:
            return False
        seen.add(qual)
        record = candidates.get(qual)
        if record is None:
            return qual in BUILTIN_BASES or qual.rsplit(".", 1)[-1] in (
                BUILTIN_BASES
            )
        return any(
            self._reaches_builtin(base, candidates, seen)
            for base in record.bases
        )

    # -- name resolution ------------------------------------------------------

    def resolve(self, name: Optional[str]) -> Optional[str]:
        """Canonical identity of an exception named in source.

        Project classes resolve to their qualname, builtins to their
        bare name.  A dotted name whose exact qualname is unknown falls
        back to its last segment when that names exactly one project
        class (``faults.InjectedKill`` -> the one ``InjectedKill``).
        Anything else is ``None`` — an exception faultcheck does not
        reason about.
        """
        if name is None:
            return None
        if name in self.classes:
            return name
        tail = name.rsplit(".", 1)[-1]
        if tail in BUILTIN_BASES and "." not in name:
            return name
        owners = self._by_name.get(tail, [])
        if len(owners) == 1:
            return owners[0]
        if tail in BUILTIN_BASES:
            return tail
        return None

    # -- hierarchy queries ----------------------------------------------------

    def ancestors(self, identity: str) -> Set[str]:
        """``identity`` plus every base reachable above it."""
        out: Set[str] = set()
        queue = [identity]
        while queue:
            current = queue.pop()
            if current in out:
                continue
            out.add(current)
            record = self.classes.get(current)
            if record is not None:
                queue.extend(record.bases)
            else:
                parent = BUILTIN_BASES.get(current.rsplit(".", 1)[-1])
                if parent is not None:
                    queue.append(parent)
        return out

    def catches(self, handler_type: str, raised_type: str) -> bool:
        """Whether ``except handler_type`` stops ``raised_type``."""
        return handler_type in self.ancestors(raised_type)

    def is_exception_subclass(self, identity: str) -> bool:
        """Derives from ``Exception`` (so a kill-proof boundary holds it)."""
        return "Exception" in self.ancestors(identity)

    def is_transient(self, identity: str) -> bool:
        """Whether the retry policy may re-attempt ``identity``.

        Breadth-first over the declared bases; the nearest explicit
        ``transient = ...`` class attribute wins, mirroring Python
        attribute lookup on the real hierarchy.
        """
        queue = [identity]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            record = self.classes.get(current)
            if record is None:
                continue
            if record.transient_flag is not None:
                return record.transient_flag
            queue.extend(record.bases)
        return False

    def project_exceptions(self) -> Set[str]:
        """Every indexed project-defined exception qualname."""
        return set(self.classes)


def _transient_flag(node: ast.ClassDef) -> Optional[bool]:
    """The class-level ``transient = True/False`` assignment, if any."""
    for item in node.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target, value = item.targets[0], item.value
        elif isinstance(item, ast.AnnAssign):
            target, value = item.target, item.value
        if (
            isinstance(target, ast.Name) and target.id == "transient"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, bool)
        ):
            return value.value
    return None
