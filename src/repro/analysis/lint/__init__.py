"""Simulator correctness tooling: static lint + runtime sanitizer.

Two complementary guards over the claim every figure rests on — that
replay metrics are exact properties of a deterministic access stream:

* ``replint`` (:mod:`engine`, :mod:`rules`, :mod:`report`): an AST-based
  static pass with rules tuned to simulator hazards (wall-clock reads,
  unseeded RNGs, set iteration, float equality, bare asserts, config
  mutation).  Run it with ``python -m repro lint src/``.
* :class:`TraceSanitizer` (:mod:`sanitizer`): a runtime checker that
  walks a trace/replay pair and verifies quad conservation, cycle
  monotonicity, cache-counter consistency, barrier ordering and
  checkpoint-hash agreement.  Run it with ``python -m repro sanitize``.
"""

from repro.analysis.lint.engine import LintEngine, lint_paths
from repro.analysis.lint.report import (
    Finding,
    format_json,
    format_text,
    sort_findings,
)
from repro.analysis.lint.rules import (
    ALL_RULES,
    RULES_BY_ID,
    TIMING_CRITICAL_PACKAGES,
    Rule,
    rule_ids,
)
from repro.analysis.lint.sanitizer import (
    TraceSanitizer,
    Violation,
    trace_digest,
)

__all__ = [
    "LintEngine", "lint_paths",
    "Finding", "format_json", "format_text", "sort_findings",
    "ALL_RULES", "RULES_BY_ID", "TIMING_CRITICAL_PACKAGES", "Rule",
    "rule_ids",
    "TraceSanitizer", "Violation", "trace_digest",
]
