"""The ``replint`` engine: file discovery, scoping, suppressions.

The engine parses each Python file once with the stdlib :mod:`ast`
module, runs every registered rule whose scope matches the file, and
filters the raw findings through suppression comments::

    x = time.monotonic()  # replint: disable=wall-clock -- campaign wall
                          # time for the manifest, never simulated time

A suppression must name the rule it silences *and* carry a
justification after ``--``; a disable comment with no justification is
itself reported (rule ``unjustified-suppression``), so waivers stay
auditable.  ``disable=all`` silences every rule on the line.

Suppressions are also checked in the other direction: a justified
disable comment whose rule never actually fires on that line (because
the code was fixed, or the rule name is a typo) is reported as
``unused-suppression``.  Stale waivers otherwise accumulate and hide
the day the hazard comes back.

Unparseable files are reported as ``parse-error`` findings rather than
crashing the run: a lint gate that dies on the file it should be
flagging protects nothing.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.checks_common import Finding, is_timing_critical, \
    sort_findings
from repro.analysis.lint.rules import (
    ALL_RULES,
    ModuleContext,
    Rule,
    build_import_aliases,
    rule_ids,
)

#: ``# replint: disable=<rules> -- why this is safe``
_DISABLE_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_,\s\-]+?)"
    r"(?:\s+--\s*(?P<why>\S.*))?\s*$"
)

#: Directory names never worth linting.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


class _Suppressions:
    """Per-file map of line -> rule ids disabled on that line."""

    def __init__(self, source: str, path: str):
        self.path = path
        self.by_line: Dict[int, Set[str]] = {}
        #: ``(line, col)`` of each justified disable comment, for the
        #: unused-suppression check.
        self.comment_pos: Dict[int, int] = {}
        self.unjustified: List[Finding] = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DISABLE_RE.search(text)
            if not match:
                continue
            rules = {
                name.strip() for name in match.group(1).split(",")
                if name.strip()
            }
            if not match.group("why"):
                self.unjustified.append(Finding(
                    path=path, line=lineno, col=text.index("#"),
                    rule="unjustified-suppression",
                    message=(
                        "replint suppression without a justification; "
                        "write `# replint: disable=<rule> -- <reason>`"
                    ),
                ))
                continue
            self.by_line.setdefault(lineno, set()).update(rules)
            self.comment_pos[lineno] = text.index("#")

    def allows(self, finding: Finding) -> bool:
        disabled = self.by_line.get(finding.line, set())
        return not (finding.rule in disabled or "all" in disabled)

    def unused(self, raw: Sequence[Finding],
               active_ids: Set[str]) -> List[Finding]:
        """Justified suppressions that silenced nothing.

        A suppression is unused when the rule it names never produced a
        raw finding on its line.  Rules that were not active for this
        file (deselected, or timing-only outside a timing-critical
        package) are skipped — the comment may well be load-bearing
        under the full rule set.  Unknown rule names are always
        reported: they can never fire, so the waiver is dead on
        arrival (usually a typo).
        """
        fired: Set[Tuple[int, str]] = {(f.line, f.rule) for f in raw}
        fired_lines: Set[int] = {f.line for f in raw}
        known = rule_ids()
        out: List[Finding] = []

        def flag(lineno: int, message: str) -> None:
            out.append(Finding(
                path=self.path, line=lineno,
                col=self.comment_pos.get(lineno, 0),
                rule="unused-suppression", message=message,
            ))

        for lineno in sorted(self.by_line):
            for rule_name in sorted(self.by_line[lineno]):
                if rule_name == "all":
                    if lineno not in fired_lines:
                        flag(lineno,
                             "suppression of all rules silences nothing "
                             "on this line; remove the stale "
                             "`# replint: disable` comment")
                elif rule_name not in known:
                    flag(lineno,
                         f"suppression names unknown rule {rule_name!r}; "
                         "it can never fire (typo?)")
                elif (rule_name in active_ids
                        and (lineno, rule_name) not in fired):
                    flag(lineno,
                         f"suppression of {rule_name!r} silences nothing "
                         "on this line; remove the stale "
                         "`# replint: disable` comment")
        return out


class LintEngine:
    """Runs the ``replint`` rule set over files, trees or source text."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None,
                 select: Optional[Iterable[str]] = None):
        chosen = list(rules if rules is not None else ALL_RULES)
        if select is not None:
            wanted = set(select)
            chosen = [rule for rule in chosen if rule.rule_id in wanted]
        self.rules = chosen

    # -- discovery ------------------------------------------------------------

    @staticmethod
    def discover(paths: Iterable[Path]) -> List[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        out: Set[Path] = set()
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not set(candidate.parts) & _SKIP_DIRS:
                        out.add(candidate)
            elif path.suffix == ".py":
                out.add(path)
        return sorted(out)

    # -- linting --------------------------------------------------------------

    def lint_source(self, source: str, path: str,
                    timing_critical: Optional[bool] = None) -> List[Finding]:
        """Lint one module given as text (the unit the tests drive)."""
        if timing_critical is None:
            timing_critical = is_timing_critical(Path(path))
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [Finding(
                path=path, line=error.lineno or 0, col=error.offset or 0,
                rule="parse-error",
                message=f"cannot parse file: {error.msg}",
            )]
        ctx = ModuleContext(
            path=path,
            tree=tree,
            timing_critical=timing_critical,
            import_aliases=build_import_aliases(tree),
        )
        raw: List[Finding] = []
        active_ids: Set[str] = set()
        for rule in self.rules:
            if rule.timing_only and not timing_critical:
                continue
            active_ids.add(rule.rule_id)
            raw.extend(rule.check(ctx))
        suppressions = _Suppressions(source, path)
        kept = [f for f in raw if suppressions.allows(f)]
        kept.extend(suppressions.unjustified)
        kept.extend(suppressions.unused(raw, active_ids))
        return sort_findings(kept)

    def lint_file(self, path: Path) -> List[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            return [Finding(
                path=str(path), line=0, col=0, rule="parse-error",
                message=f"cannot read file: {error}",
            )]
        return self.lint_source(source, str(path))

    def lint_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Lint every ``.py`` file under ``paths``; deterministic order."""
        findings: List[Finding] = []
        for path in self.discover(paths):
            findings.extend(self.lint_file(path))
        return sort_findings(findings)


def lint_paths(paths: Iterable[Path],
               select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Convenience wrapper: lint ``paths`` with the full (or named) rule set."""
    return LintEngine(select=select).lint_paths(paths)
