"""Findings and report formatting for the ``replint`` static checker.

A :class:`Finding` is one rule violation at one source location.  The
formatters turn a list of findings into either a human ``file:line:col``
listing (grep/editor friendly) or machine-readable JSON so CI can gate
on ``len(findings) == 0`` without parsing prose.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order: path, then line, col, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def format_text(findings: Sequence[Finding]) -> str:
    """grep-style ``path:line:col: rule: message`` lines plus a summary."""
    ordered = sort_findings(findings)
    lines = [
        f"{f.location()}: {f.rule}: {f.message}" for f in ordered
    ]
    n = len(ordered)
    lines.append(
        "replint: no findings" if n == 0
        else f"replint: {n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"findings": [...], "count": N}``."""
    ordered = sort_findings(findings)
    return json.dumps(
        {
            "findings": [f.as_dict() for f in ordered],
            "count": len(ordered),
        },
        indent=2,
        sort_keys=True,
    )
