"""Findings and report formatting for the ``replint`` static checker.

The actual implementation lives in
:mod:`repro.analysis.checks_common`, shared with archcheck so both
checkers emit identical ``path:line:col`` text and JSON report shapes;
this module re-exports it under the historical names.
"""

from __future__ import annotations

from repro.analysis.checks_common import (
    Finding,
    format_json,
    format_text,
    sort_findings,
)

__all__ = ["Finding", "format_json", "format_text", "sort_findings"]
