"""The ``replint`` rule set: AST checks tuned to simulator hazards.

Every replay metric this repository reports (L2 accesses, quad
imbalance, speedup) is an exact property of a deterministic quad/texel
access stream.  The rules below target the ways that determinism — or
the conservation invariants behind it — silently breaks:

========================  ====================================================
rule id                   hazard
========================  ====================================================
``wall-clock``            wall-clock reads inside timing-critical packages
                          leak host time into simulated results
``unseeded-random``       module-level ``random`` / ``numpy.random`` calls
                          (no seeded generator) make replays unrepeatable
``unordered-iteration``   iterating a ``set``/``frozenset`` lets hash
                          randomization reorder the access stream
``float-equality``        ``==`` against a nonzero float literal on
                          cycle/energy quantities is platform-fragile
``bare-assert``           ``assert`` vanishes under ``python -O``; library
                          validation must raise the ``repro.errors`` taxonomy
``config-mutation``       mutating a shared ``GPUConfig``/``DTexLConfig``
                          after construction corrupts every later replay
========================  ====================================================

Rules are pure functions of one parsed module: no I/O, no project
imports, stdlib :mod:`ast` only.  Each returns
:class:`~repro.analysis.lint.report.Finding` rows; scoping (which
packages a rule patrols) and suppression comments are the engine's job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.analysis.checks_common import (
    TIMING_CRITICAL_PACKAGES,
    Finding,
)

__all__ = [
    "ALL_RULES", "RULES_BY_ID", "TIMING_CRITICAL_PACKAGES",
    "ModuleContext", "Rule", "build_import_aliases", "dotted_name",
    "rule_ids",
]

#: Wall-clock entry points (resolved through import aliases).
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``random`` module-level functions (the shared, unseeded global RNG).
#: Instantiating ``random.Random(seed)`` is the sanctioned alternative.
_GLOBAL_RNG_ATTRS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "seed",
})

#: ``numpy.random`` module-level functions (legacy global state).
#: ``numpy.random.default_rng(seed)`` / ``Generator`` are sanctioned.
_NUMPY_RNG_EXEMPT = frozenset({"default_rng", "Generator", "RandomState",
                               "SeedSequence"})

#: Methods that produce a ``set`` whatever the receiver was.
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "resident_line_set",
})

#: Order-sensitive consumers: feeding them a set is a finding even
#: outside a ``for`` statement.  (``sorted``/``len``/``min``/``max`` are
#: order-insensitive and therefore fine.)
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate",
                                        "iter", "sum"})

#: Names that conventionally bind a shared simulation configuration.
_CONFIG_NAMES = frozenset({
    "config", "gpu", "gpu_config", "dtexl_config", "design",
    "base_config", "effective_config",
})


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    tree: ast.Module
    #: Whether the module lives in a timing-critical package.
    timing_critical: bool
    #: local alias -> imported dotted name (``np`` -> ``numpy``,
    #: ``monotonic`` -> ``time.monotonic``).
    import_aliases: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    summary: str
    #: Restrict the rule to timing-critical packages?
    timing_only: bool
    check: Callable[[ModuleContext], List[Finding]]


def build_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted import path they resolve to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolved_call_name(node: ast.Call, ctx: ModuleContext) -> Optional[str]:
    """The fully-resolved dotted name a call targets, if syntactically known."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = ctx.import_aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


def _finding(ctx: ModuleContext, node: ast.AST, rule_id: str,
             message: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule=rule_id,
        message=message,
    )


# -- wall-clock ---------------------------------------------------------------

def check_wall_clock(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _resolved_call_name(node, ctx)
        if name in _WALL_CLOCK_CALLS:
            findings.append(_finding(
                ctx, node, "wall-clock",
                f"call to {name}() reads the host clock inside a "
                "timing-critical package; simulated time must come from "
                "the cycle model, never the wall",
            ))
    return findings


# -- unseeded-random ----------------------------------------------------------

def check_unseeded_random(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _resolved_call_name(node, ctx)
        if name is None:
            continue
        parts = name.split(".")
        if (
            parts[0] == "random"
            and len(parts) == 2
            and parts[1] in _GLOBAL_RNG_ATTRS
        ):
            findings.append(_finding(
                ctx, node, "unseeded-random",
                f"{name}() draws from the process-global RNG; construct a "
                "seeded random.Random(seed) and thread it through instead",
            ))
        elif (
            parts[0] == "numpy"
            and len(parts) >= 3
            and parts[1] == "random"
            and parts[2] not in _NUMPY_RNG_EXEMPT
        ):
            findings.append(_finding(
                ctx, node, "unseeded-random",
                f"{name}() uses numpy's legacy global RNG; use "
                "numpy.random.default_rng(seed) instead",
            ))
    return findings


# -- unordered-iteration ------------------------------------------------------

def _is_set_producing(node: ast.AST) -> bool:
    """Whether an expression syntactically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_PRODUCING_METHODS
        ):
            return True
    return False


def check_unordered_iteration(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.AST) -> None:
        findings.append(_finding(
            ctx, node, "unordered-iteration",
            "iteration over a set is hash-order dependent; sort it "
            "(sorted(...)) or keep an ordered container so the replayed "
            "stream is identical on every run",
        ))

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_set_producing(node.iter):
            flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_producing(gen.iter):
                    flag(gen.iter)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_SENSITIVE_CONSUMERS
            and node.args
            and _is_set_producing(node.args[0])
        ):
            flag(node.args[0])
    return findings


# -- float-equality -----------------------------------------------------------

def _is_nonzero_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node.value != 0.0  # exact-zero degenerate guards are idiomatic
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
    ):
        return _is_nonzero_float_literal(node.operand)
    return False


def check_float_equality(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        eq_ops = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if eq_ops and any(_is_nonzero_float_literal(o) for o in operands):
            findings.append(_finding(
                ctx, node, "float-equality",
                "== / != against a nonzero float literal; cycle and "
                "energy quantities must be compared with tolerances "
                "(math.isclose) or kept integral",
            ))
    return findings


# -- bare-assert --------------------------------------------------------------

def check_bare_assert(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assert):
            findings.append(_finding(
                ctx, node, "bare-assert",
                "assert is stripped under python -O; library validation "
                "must raise the repro.errors taxonomy "
                "(ConfigError / WorkloadError / InvariantViolationError)",
            ))
    return findings


# -- config-mutation ----------------------------------------------------------

def _is_config_like(node: ast.AST) -> bool:
    """Whether an expression conventionally denotes a shared config."""
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CONFIG_NAMES
    return False


def check_config_mutation(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(_finding(
            ctx, node, "config-mutation",
            f"{what} mutates a shared GPUConfig/DTexLConfig after "
            "construction; build a new instance with dataclasses.replace "
            "so concurrent replays never observe a half-updated config",
        ))

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and _is_config_like(target.value)
                ):
                    flag(node, f"assignment to {dotted_name(target)}")
        elif isinstance(node, ast.Call):
            name = _resolved_call_name(node, ctx)
            if (
                name in ("setattr", "object.__setattr__")
                and node.args
                and _is_config_like(node.args[0])
            ):
                flag(node, f"{name}() on a config object")
    return findings


#: Registry, in reporting order.  ``timing_only`` rules patrol only
#: :data:`TIMING_CRITICAL_PACKAGES`; the rest patrol all library code.
ALL_RULES: List[Rule] = [
    Rule("wall-clock",
         "no host-clock reads in timing-critical packages",
         timing_only=True, check=check_wall_clock),
    Rule("unseeded-random",
         "no process-global RNG use in timing-critical packages",
         timing_only=True, check=check_unseeded_random),
    Rule("unordered-iteration",
         "no iteration over sets in timing-critical packages",
         timing_only=True, check=check_unordered_iteration),
    Rule("float-equality",
         "no == against nonzero float literals",
         timing_only=False, check=check_float_equality),
    Rule("bare-assert",
         "no assert-based validation in library code",
         timing_only=False, check=check_bare_assert),
    Rule("config-mutation",
         "no mutation of shared configs after construction",
         timing_only=False, check=check_config_mutation),
]

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def rule_ids() -> Set[str]:
    return set(RULES_BY_ID)
