"""Runtime invariant sanitizer for trace/replay pairs.

``replint`` (the static half of this package) keeps hazards out of the
source; the :class:`TraceSanitizer` checks the *artifacts* — a
:class:`~repro.sim.driver.FrameTrace` and the
:class:`~repro.sim.replay.RunResult` replayed from it — against the
structural invariants the decoupled-pipeline methodology rests on:

* **trace integrity** — the trace itself satisfies pass 1's guarantees
  (full tile-grid coverage, quads filed under their own tiles, totals
  matching :class:`~repro.sim.driver.RenderStats`), via
  :func:`repro.sim.checkpoint.verify_trace`.
* **quad conservation** — every quad the trace holds is executed exactly
  once: per traversal step, the scheduler's per-SC counts sum to the
  tile's quad count, and the frame totals agree end to end.
* **cycle monotonicity** — cycle counts are non-negative, per-SC issue
  cycles never exceed busy cycles, and no SC is busy longer than the
  frame.
* **counter consistency** — across the
  :class:`~repro.memory.hierarchy.MemoryHierarchy` counters:
  ``l1_misses <= l1_accesses``, ``l2_misses <= l2_accesses``, every L2
  miss is exactly one DRAM fill, and texture L1 misses are a subset of
  L2 traffic.  Holds for cold caches and for warm-cache frame deltas
  alike, because every counter is monotonic.
* **barrier ordering** — along the per-tile stage-completion records of
  :class:`~repro.raster.pipeline.FrameTiming`: Early-Z completes before
  Fragment before Blending within a tile, each unit's chain is
  monotonic across tiles, and the frame ends exactly when the slowest
  chain drains.
* **checkpoint-hash agreement** — an optional expected digest (computed
  with :func:`trace_digest` when the trace was produced or checkpointed)
  still matches, so a trace mutated between pass 1 and pass 2 is caught
  even when the mutation keeps the structure plausible.

``check`` returns all violations; ``sanitize`` raises
:class:`~repro.errors.InvariantViolationError` naming the first violated
invariant and listing the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import GPUConfig
from repro.core.dtexl import DTexLConfig
from repro.errors import InvariantViolationError, TraceIntegrityError
from repro.sim.checkpoint import trace_digest, verify_trace  # noqa: F401 — trace_digest re-exported; it moved into sim so the tile-granular checkpoints can chain to it without an analysis import
from repro.sim.driver import FrameTrace
from repro.sim.replay import RunResult


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with a pointer to what broke."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


class TraceSanitizer:
    """Checks a trace/replay pair against the pipeline's invariants."""

    def __init__(self, config: GPUConfig):
        self.config = config

    # -- individual invariant families ---------------------------------------

    def _check_trace(self, trace: FrameTrace) -> List[Violation]:
        try:
            verify_trace(trace)
        except TraceIntegrityError as error:
            return [Violation("trace-integrity", str(error))]
        return []

    def _check_quad_conservation(
        self, trace: FrameTrace, result: RunResult, design: DTexLConfig
    ) -> List[Violation]:
        violations: List[Violation] = []
        gpu = design.effective_gpu_config(self.config)
        scheduler = design.build_scheduler(self.config)
        counts = result.per_tile_quad_counts

        if result.total_quads != trace.total_quads:
            violations.append(Violation(
                "quad-conservation",
                f"replay executed {result.total_quads} quads but the "
                f"trace holds {trace.total_quads}",
            ))
        if len(counts) != scheduler.num_steps:
            violations.append(Violation(
                "quad-conservation",
                f"per_tile_quad_counts has {len(counts)} steps but the "
                f"{design.order!r} traversal has {scheduler.num_steps}",
            ))
            return violations  # per-step comparison is meaningless now
        for step, (tile, row) in enumerate(zip(scheduler.tiles, counts)):
            if len(row) != gpu.num_shader_cores:
                violations.append(Violation(
                    "quad-conservation",
                    f"step {step} (tile {tile}) reports {len(row)} SC "
                    f"slots; the configuration has "
                    f"{gpu.num_shader_cores}",
                ))
                continue
            if any(count < 0 for count in row):
                violations.append(Violation(
                    "quad-conservation",
                    f"step {step} (tile {tile}) has a negative per-SC "
                    f"quad count: {row}",
                ))
                continue
            entry = trace.tiles.get(tile)
            expected = len(entry.quads) if entry is not None else 0
            if sum(row) != expected:
                violations.append(Violation(
                    "quad-conservation",
                    f"step {step} (tile {tile}) executed {sum(row)} "
                    f"quads across SCs but the trace holds {expected}",
                ))
        return violations

    def _check_cycles(self, result: RunResult) -> List[Violation]:
        violations: List[Violation] = []
        timing = result.timing
        if timing.total_cycles < 0:
            violations.append(Violation(
                "cycle-monotonicity",
                f"negative frame cycle count {timing.total_cycles}",
            ))
        if timing.fetch_cycles_total < 0:
            violations.append(Violation(
                "cycle-monotonicity",
                f"negative total fetch cycles {timing.fetch_cycles_total}",
            ))
        for sc, (busy, issue) in enumerate(
            zip(timing.sc_busy_cycles, timing.sc_issue_cycles)
        ):
            if busy < 0 or issue < 0:
                violations.append(Violation(
                    "cycle-monotonicity",
                    f"SC{sc} reports negative cycles "
                    f"(busy={busy}, issue={issue})",
                ))
            elif issue > busy:
                violations.append(Violation(
                    "cycle-monotonicity",
                    f"SC{sc} issued for {issue} cycles but was only busy "
                    f"for {busy}",
                ))
            elif busy > timing.total_cycles:
                violations.append(Violation(
                    "cycle-monotonicity",
                    f"SC{sc} busy for {busy} cycles in a "
                    f"{timing.total_cycles}-cycle frame",
                ))
        for step, row in enumerate(timing.per_tile_sc_cycles):
            if any(cycles < 0 for cycles in row):
                violations.append(Violation(
                    "cycle-monotonicity",
                    f"tile step {step} has negative Fragment-stage "
                    f"cycles: {row}",
                ))
        return violations

    def _check_counters(self, result: RunResult) -> List[Violation]:
        violations: List[Violation] = []
        nonneg = [
            ("l1_accesses", result.l1_accesses),
            ("l1_misses", result.l1_misses),
            ("l2_accesses", result.l2_accesses),
            ("l2_misses", result.l2_misses),
            ("dram_accesses", result.dram_accesses),
            ("vertex_accesses", result.vertex_accesses),
            ("tile_accesses", result.tile_accesses),
            ("total_quads", result.total_quads),
            ("framebuffer_write_lines", result.framebuffer_write_lines),
        ]
        for name, value in nonneg:
            if value < 0:
                violations.append(Violation(
                    "counter-consistency", f"{name} is negative: {value}"
                ))
        if result.l1_misses > result.l1_accesses:
            violations.append(Violation(
                "counter-consistency",
                f"l1_misses ({result.l1_misses}) exceed l1_accesses "
                f"({result.l1_accesses})",
            ))
        if result.l2_misses > result.l2_accesses:
            violations.append(Violation(
                "counter-consistency",
                f"l2_misses ({result.l2_misses}) exceed l2_accesses "
                f"({result.l2_accesses})",
            ))
        if result.dram_accesses != result.l2_misses:
            violations.append(Violation(
                "counter-consistency",
                f"dram_accesses ({result.dram_accesses}) != l2_misses "
                f"({result.l2_misses}); every L2 miss is exactly one "
                "DRAM fill",
            ))
        if result.l1_misses > result.l2_accesses:
            violations.append(Violation(
                "counter-consistency",
                f"texture L1 misses ({result.l1_misses}) exceed total L2 "
                f"accesses ({result.l2_accesses}); L1 misses are a "
                "subset of L2 traffic",
            ))
        if result.l1_replication_factor < 1.0:
            violations.append(Violation(
                "counter-consistency",
                f"L1 replication factor {result.l1_replication_factor} "
                "< 1.0 (each resident line exists at least once)",
            ))
        for component, value in result.energy.components_mj.items():
            if value < 0:
                violations.append(Violation(
                    "counter-consistency",
                    f"negative energy component {component!r}: {value}",
                ))
        return violations

    def _check_barriers(self, result: RunResult) -> List[Violation]:
        violations: List[Violation] = []
        ends = result.timing.per_tile_stage_ends
        if not ends:
            return violations  # legacy results carry no stage records
        stage_names = ("Early-Z", "Fragment", "Blending")
        previous: Optional[List[List[int]]] = None
        for step, tile_ends in enumerate(ends):
            for unit in range(len(tile_ends[0])):
                chain = [tile_ends[s][unit] for s in range(3)]
                if any(value < 0 for value in chain):
                    violations.append(Violation(
                        "barrier-ordering",
                        f"step {step} unit {unit} has a negative stage "
                        f"completion time: {chain}",
                    ))
                    continue
                for s in range(2):
                    if chain[s] > chain[s + 1]:
                        violations.append(Violation(
                            "barrier-ordering",
                            f"step {step} unit {unit}: "
                            f"{stage_names[s]} completes at {chain[s]} "
                            f"after {stage_names[s + 1]} at "
                            f"{chain[s + 1]}",
                        ))
                if previous is not None:
                    for s in range(3):
                        if previous[s][unit] > tile_ends[s][unit]:
                            violations.append(Violation(
                                "barrier-ordering",
                                f"unit {unit} {stage_names[s]} chain "
                                f"runs backwards between steps "
                                f"{step - 1} and {step} "
                                f"({previous[s][unit]} -> "
                                f"{tile_ends[s][unit]})",
                            ))
            previous = tile_ends
        last_blend = max(ends[-1][2])
        if last_blend != result.timing.total_cycles:
            violations.append(Violation(
                "barrier-ordering",
                f"frame reports {result.timing.total_cycles} cycles but "
                f"the slowest Blending chain drains at {last_blend}",
            ))
        return violations

    def _check_digest(
        self, trace: FrameTrace, expected_digest: str
    ) -> List[Violation]:
        actual = trace_digest(trace)
        if actual != expected_digest:
            return [Violation(
                "checkpoint-hash",
                f"trace digest {actual[:16]}… does not match the "
                f"expected {expected_digest[:16]}… (trace mutated "
                "between checkpoint and replay)",
            )]
        return []

    # -- entry points --------------------------------------------------------

    def check(
        self,
        trace: FrameTrace,
        result: RunResult,
        design: DTexLConfig,
        expected_digest: Optional[str] = None,
    ) -> List[Violation]:
        """All violated invariants of a trace/replay pair (empty = sound)."""
        violations = self._check_trace(trace)
        violations.extend(self._check_quad_conservation(trace, result, design))
        violations.extend(self._check_cycles(result))
        violations.extend(self._check_counters(result))
        violations.extend(self._check_barriers(result))
        if expected_digest is not None:
            violations.extend(self._check_digest(trace, expected_digest))
        return violations

    def sanitize(
        self,
        trace: FrameTrace,
        result: RunResult,
        design: DTexLConfig,
        expected_digest: Optional[str] = None,
    ) -> None:
        """Raise :class:`InvariantViolationError` on any broken invariant."""
        violations = self.check(trace, result, design, expected_digest)
        if violations:
            detail = "; ".join(str(v) for v in violations)
            raise InvariantViolationError(
                f"replay of {result.design_point!r} violated "
                f"{len(violations)} pipeline invariant(s): {detail}",
                invariant=violations[0].invariant,
            )
