"""The paper's metrics (compatibility re-export).

The implementations live in :mod:`repro.stats`, at the bottom of the
layer stack, so the simulator can use them without importing the
analysis layer (``sim`` -> ``analysis`` is a forbidden edge under
``archcontract.toml``).  This module keeps the historical
``repro.analysis.metrics`` import path working for analysis code,
benchmarks and notebooks.
"""

from __future__ import annotations

from repro.stats import (
    geometric_mean,
    mean_deviation,
    per_tile_imbalance,
    per_tile_imbalance_distribution,
    percent_decrease,
    speedup,
    violin_summary,
)

__all__ = [
    "geometric_mean",
    "mean_deviation",
    "per_tile_imbalance",
    "per_tile_imbalance_distribution",
    "percent_decrease",
    "speedup",
    "violin_summary",
]
