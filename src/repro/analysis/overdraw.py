"""Overdraw and depth-complexity analysis of frame traces.

§II-B grounds DTexL's load-imbalance story in scene structure: "in most
scenes, geometry is not uniformly distributed over the frame, but rather
some regions are richer than others in depth complexity", and §V-A adds
that overdraw clusters *horizontally* ("gravity forces objects to be
more horizontally shaped").  These tools measure both properties on any
trace, so the claims can be verified on the synthetic suite — and on any
new workload a user adds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.sim.driver import FrameTrace


def shaded_pixel_map(trace: FrameTrace, config: GPUConfig) -> np.ndarray:
    """Per-pixel shaded-fragment counts (the depth-complexity map)."""
    depth_map = np.zeros(
        (config.screen_height, config.screen_width), dtype=np.int32
    )
    ts = config.tile_size
    for (tx, ty), entry in trace.tiles.items():
        for quad in entry.quads:
            px = tx * ts + quad.qx * 2
            py = ty * ts + quad.qy * 2
            for lane, (dx, dy) in enumerate(
                [(0, 0), (1, 0), (0, 1), (1, 1)]
            ):
                if not quad.coverage[lane]:
                    continue
                x, y = px + dx, py + dy
                if x < config.screen_width and y < config.screen_height:
                    depth_map[y, x] += 1
    return depth_map


@dataclass(frozen=True)
class OverdrawStats:
    """Summary of a frame's depth-complexity distribution."""

    mean: float
    peak: int
    #: Fraction of shaded fragments landing on the busiest 10% of pixels.
    concentration: float
    #: Ratio of row-to-row variance over column-to-column variance of the
    #: per-line overdraw totals; > 1 means overdraw clusters into
    #: horizontal bands (the §V-A gravity effect).
    horizontal_clustering: float


def overdraw_stats(depth_map: np.ndarray) -> OverdrawStats:
    """Summarize a depth-complexity map."""
    total = float(depth_map.sum())
    pixels = depth_map.size
    mean = total / pixels if pixels else 0.0
    peak = int(depth_map.max()) if pixels else 0

    flat = np.sort(depth_map.ravel())[::-1]
    top = max(1, pixels // 10)
    concentration = float(flat[:top].sum()) / total if total else 0.0

    row_totals = depth_map.sum(axis=1).astype(np.float64)
    col_totals = depth_map.sum(axis=0).astype(np.float64)
    # Compare normalized variation so the screen aspect ratio cancels.
    row_cv = row_totals.std() / row_totals.mean() if row_totals.mean() else 0.0
    col_cv = col_totals.std() / col_totals.mean() if col_totals.mean() else 0.0
    clustering = row_cv / col_cv if col_cv else float("inf")

    return OverdrawStats(
        mean=mean,
        peak=peak,
        concentration=concentration,
        horizontal_clustering=clustering,
    )


def per_tile_overdraw(
    trace: FrameTrace, config: GPUConfig
) -> Dict[Tuple[int, int], float]:
    """Mean shaded fragments per pixel for each tile."""
    area = config.tile_size * config.tile_size
    return {
        tile: sum(q.covered_pixels for q in entry.quads) / area
        for tile, entry in trace.tiles.items()
    }


def overdraw_ascii(depth_map: np.ndarray, block: int = 8) -> str:
    """Coarse ASCII heatmap of the depth-complexity map."""
    ramp = " .:-=+*#%@"
    height, width = depth_map.shape
    rows: List[str] = []
    peak = depth_map.max() or 1
    for y0 in range(0, height, block):
        row = []
        for x0 in range(0, width, block):
            cell = depth_map[y0 : y0 + block, x0 : x0 + block].mean()
            level = min(int(cell / peak * (len(ramp) - 1)), len(ramp) - 1)
            row.append(ramp[level])
        rows.append("".join(row))
    return "\n".join(rows)
