"""perfcheck: whole-program hot-path performance analysis.

Static companion to the perf-smoke benchmark: resolves archcheck's
call graph, walks the hot region from the entry points
``perfcontract.toml`` declares (the fast replay path, the cache access
loops, quad emission), and enforces the rules that keep the fast
engine fast — no allocation in hot loops, attribute chains hoisted to
locals, no exception machinery in the per-quad path, fast/reference
engine disjointness, declared loop-depth bounds, and a contract-drift
check so the declared hot set can't silently rot.  Run it as
``repro perfcheck``.
"""

from repro.analysis.perf.checks import (
    HotScan,
    check_contract_drift,
    check_engine_purity,
    check_hot_loops,
    check_loop_depth,
    check_profile,
    scan_function,
)
from repro.analysis.perf.contract import PerfContract, PerfEntry
from repro.analysis.perf.engine import PerfCheck, PerfReport
from repro.analysis.perf.export import hot_region_to_dot
from repro.analysis.perf.hotpath import (
    HotRegion,
    compute_hot_region,
    reachable_chains,
)

__all__ = [
    "HotRegion",
    "HotScan",
    "PerfCheck",
    "PerfContract",
    "PerfEntry",
    "PerfReport",
    "check_contract_drift",
    "check_engine_purity",
    "check_hot_loops",
    "check_loop_depth",
    "check_profile",
    "compute_hot_region",
    "hot_region_to_dot",
    "reachable_chains",
    "scan_function",
]
