"""The per-function hot-path rules and the contract-drift checks.

Every function in the hot region gets one AST scan that tracks lexical
loop depth and collects three families of evidence:

* **allocations** — list/dict/set/tuple literals, comprehensions,
  generator expressions, f-strings, string concatenation, closures and
  ``np.append`` calls executed inside a loop body.  CPython realities
  are encoded as exemptions: all-constant tuples fold to
  ``LOAD_CONST``, tuples in a subscript's slice are the idiomatic
  (and unavoidable) numpy index form, and small unpack-assign tuples
  (``a, b = x, y`` up to three elements) compile to register shuffles.
* **unhoisted attribute chains** — ``self.a.b`` / ``obj.a.b`` loads of
  two or more attributes inside a loop whose root name is never
  rebound in the function: each iteration pays the full lookup chain
  for a value that a one-line hoist makes a local.
* **fault paths** — ``try``/``raise``/``print``/logging/IO inside a
  loop body: exception machinery and side channels do not belong in
  the per-quad path (allocations inside a ``raise`` are not
  double-flagged; the raise itself is the finding).

Loop depth is counted the way CPython evaluates, not the way the
source indents: a ``for`` statement's iterable and target run once per
entry to the loop (the *enclosing* depth), while a ``while`` test runs
every iteration; comprehension bodies run per element, but the first
generator's iterable is evaluated once where the comprehension stands.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.arch.callgraph import CallGraph, FunctionNode
from repro.analysis.checks_common import Finding
from repro.analysis.perf.contract import PerfContract
from repro.analysis.perf.hotpath import HotRegion, reachable_chains

#: allocation call targets flagged by dotted name.
_ALLOCATING_CALLS = frozenset({"np.append", "numpy.append"})

#: names whose method calls count as logging in a hot loop.
_LOGGING_ROOTS = frozenset({"logging", "log", "logger"})


@dataclass
class _Site:
    kind: str
    line: int
    col: int
    detail: str = ""


@dataclass
class HotScan:
    """Everything one pass over a function body collected."""

    allocations: List[_Site] = field(default_factory=list)
    chains: List[_Site] = field(default_factory=list)
    fault_paths: List[_Site] = field(default_factory=list)
    max_loop_depth: int = 0


def _rebound_names(fn_node: ast.AST) -> set:
    """Every name the function body stores to (loop targets included)."""
    rebound = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            rebound.add(node.id)
        elif isinstance(node, ast.withitem) and isinstance(
            node.optional_vars, ast.Name
        ):
            rebound.add(node.optional_vars.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                rebound.add(alias.asname or alias.name.split(".")[0])
    return rebound


def _pure_chain(node: ast.Attribute) -> Optional[Tuple[str, int, str]]:
    """``(root, attr_count, dotted)`` for a Name-rooted attribute chain."""
    parts = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return current.id, len(parts) - 1, ".".join(parts)


def _is_str_operand(node: ast.AST) -> bool:
    return isinstance(node, ast.JoinedStr) or (
        isinstance(node, ast.Constant) and isinstance(node.value, str)
    )


class _Scanner:
    """One recursive descent over a function body, tracking loop depth."""

    def __init__(self, rebound: set):
        self.rebound = rebound
        self.result = HotScan()

    # -- recording -------------------------------------------------------

    def _alloc(self, node: ast.AST, kind: str, detail: str = "") -> None:
        self.result.allocations.append(_Site(
            kind=kind, line=node.lineno, col=node.col_offset, detail=detail,
        ))

    def _fault(self, node: ast.AST, kind: str) -> None:
        self.result.fault_paths.append(_Site(
            kind=kind, line=node.lineno, col=node.col_offset,
        ))

    # -- traversal -------------------------------------------------------
    #
    # ``depth`` counts enclosing For/While statements; ``comp`` counts
    # enclosing comprehension *element* positions.  Allocations gate on
    # depth alone: a statement-level comprehension is the blessed form
    # of bulk construction, so the tuples it builds per element are not
    # findings (the fix for an allocating loop IS a comprehension), and
    # a comprehension nested in a loop is already reported once as a
    # whole.  Attribute chains gate on depth + comp: a chain re-resolved
    # per element is worth hoisting wherever the comprehension stands.

    def scan(self, fn_node: ast.AST) -> HotScan:
        for child in ast.iter_child_nodes(fn_node):
            self._visit(child, 0, 0)
        return self.result

    def _visit_all(self, nodes: Sequence[ast.AST], depth: int,
                   comp: int) -> None:
        for node in nodes:
            self._visit(node, depth, comp)

    def _visit_children(self, node: ast.AST, depth: int, comp: int) -> None:
        for child in ast.iter_child_nodes(node):
            self._visit(child, depth, comp)

    def _visit(self, node: ast.AST, depth: int, comp: int) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            # iterable and target evaluate once per loop *entry*.
            self.result.max_loop_depth = max(
                self.result.max_loop_depth, depth + 1
            )
            self._visit(node.iter, depth, comp)
            self._visit(node.target, depth, comp)
            self._visit_all(node.body, depth + 1, comp)
            self._visit_all(node.orelse, depth + 1, comp)
            return
        if isinstance(node, ast.While):
            # the test re-evaluates every iteration.
            self.result.max_loop_depth = max(
                self.result.max_loop_depth, depth + 1
            )
            self._visit(node.test, depth + 1, comp)
            self._visit_all(node.body, depth + 1, comp)
            self._visit_all(node.orelse, depth + 1, comp)
            return
        if isinstance(node, ast.Raise):
            # the raise is the finding; its f-string is not a second one.
            if depth >= 1:
                self._fault(node, "raise")
            return
        if isinstance(node, ast.Try):
            if depth >= 1:
                self._fault(node, "try")
            self._visit_children(node, depth, comp)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            if depth >= 1:
                self._alloc(node, "closure")
                return
            body = node.body if isinstance(node.body, list) else [node.body]
            self._visit_all(body, 0, 0)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            if depth >= 1:
                kind = ("generator-expression"
                        if isinstance(node, ast.GeneratorExp)
                        else "comprehension")
                self._alloc(node, kind)
            # first iterable runs once where the comprehension stands;
            # everything else runs per element.
            for i, gen in enumerate(node.generators):
                self._visit(gen.iter, depth, comp if i == 0 else comp + 1)
                self._visit_all(gen.ifs, depth, comp + 1)
            if isinstance(node, ast.DictComp):
                self._visit(node.key, depth, comp + 1)
                self._visit(node.value, depth, comp + 1)
            else:
                self._visit(node.elt, depth, comp + 1)
            return
        if isinstance(node, ast.Assign):
            self._visit_all(node.targets, depth, comp)
            value = node.value
            if (
                isinstance(value, ast.Tuple)
                and len(value.elts) <= 3
                and any(isinstance(t, (ast.Tuple, ast.List))
                        for t in node.targets)
            ):
                # a, b = x, y compiles to a register shuffle, no tuple.
                self._visit_all(value.elts, depth, comp)
            else:
                self._visit(value, depth, comp)
            return
        if isinstance(node, ast.Subscript):
            self._visit(node.value, depth, comp)
            if isinstance(node.slice, ast.Tuple):
                # u[iy, ix] — the index tuple is the idiomatic numpy
                # form; there is nothing to hoist it into.
                self._visit_all(node.slice.elts, depth, comp)
            else:
                self._visit(node.slice, depth, comp)
            return
        if depth >= 1 and comp == 0:
            if isinstance(node, ast.List):
                self._alloc(node, "list-literal")
            elif isinstance(node, ast.Dict):
                self._alloc(node, "dict-literal")
            elif isinstance(node, ast.Set):
                self._alloc(node, "set-literal")
            elif isinstance(node, ast.Tuple) and isinstance(
                node.ctx, ast.Load
            ):
                if not all(isinstance(e, ast.Constant) for e in node.elts):
                    self._alloc(node, "tuple-literal")
                self._visit_all(node.elts, depth, comp)
                return
            elif isinstance(node, ast.JoinedStr):
                self._alloc(node, "fstring")
                return
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Add
            ) and (_is_str_operand(node.left)
                   or _is_str_operand(node.right)):
                self._alloc(node, "str-concat")
        if depth + comp >= 1:
            if isinstance(node, ast.Call):
                self._visit_call(node, depth)
                self._visit_children(node, depth, comp)
                return
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                chain = _pure_chain(node)
                if chain is not None:
                    root, attrs, dotted = chain
                    if attrs >= 2 and root not in self.rebound:
                        self.result.chains.append(_Site(
                            kind="chain", line=node.lineno,
                            col=node.col_offset, detail=dotted,
                        ))
                    return  # maximal chains only; sub-chains are implied
        self._visit_children(node, depth, comp)

    def _visit_call(self, node: ast.Call, depth: int) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                self._fault(node, "print")
            elif func.id == "open":
                self._fault(node, "io")
            return
        if isinstance(func, ast.Attribute):
            chain = _pure_chain(func)
            if chain is None:
                return
            root, _, dotted = chain
            if dotted in _ALLOCATING_CALLS:
                self._alloc(node, "np.append", detail=dotted)
            elif root in _LOGGING_ROOTS:
                self._fault(node, "logging")
            elif dotted.startswith(("sys.stdout.", "sys.stderr.")):
                self._fault(node, "io")


def scan_function(fn_node: ast.AST) -> HotScan:
    """Scan one function body for hot-loop evidence."""
    return _Scanner(_rebound_names(fn_node)).scan(fn_node)


# -- the checks ---------------------------------------------------------------


def _via(region: HotRegion, qualname: str) -> str:
    chain = region.chain_of(qualname)
    if len(chain) <= 1:
        return qualname
    return " -> ".join(chain)


def check_hot_loops(callgraph: CallGraph,
                    region: HotRegion) -> List[Finding]:
    """Allocation, attribute-chain and fault-path rules over the region.

    Findings aggregate per ``(function, kind)`` — one waiver covers one
    deliberate pattern in one function, and fixing any single site
    never silently unmasks its siblings (the fingerprint survives until
    the last site is gone).
    """
    findings: List[Finding] = []
    for qualname in region.members():
        fn = callgraph.functions[qualname]
        scan = scan_function(fn.node)
        by_kind: Dict[str, List[_Site]] = {}
        for site in scan.allocations:
            by_kind.setdefault(site.kind, []).append(site)
        for kind in sorted(by_kind):
            sites = by_kind[kind]
            first = min(sites, key=lambda s: (s.line, s.col))
            extra = (f" ({len(sites)} sites)" if len(sites) > 1 else "")
            findings.append(Finding(
                path=fn.path, line=first.line, col=first.col,
                rule="hot-loop-allocation",
                message=(
                    f"{kind} allocated inside a hot loop{extra}; this "
                    f"function is hot via {_via(region, qualname)} — "
                    "hoist the allocation out of the loop or build it "
                    "vectorized"
                ),
                fingerprint=f"hot-loop-allocation:{qualname}:{kind}",
            ))
        by_chain: Dict[str, List[_Site]] = {}
        for site in scan.chains:
            by_chain.setdefault(site.detail, []).append(site)
        for dotted in sorted(by_chain):
            sites = by_chain[dotted]
            first = min(sites, key=lambda s: (s.line, s.col))
            findings.append(Finding(
                path=fn.path, line=first.line, col=first.col,
                rule="unhoisted-attribute-chain",
                message=(
                    f"attribute chain {dotted} is re-resolved every "
                    f"iteration of a hot loop; this function is hot via "
                    f"{_via(region, qualname)} — hoist it to a local "
                    "before the loop"
                ),
                fingerprint=(
                    f"unhoisted-attribute-chain:{qualname}:{dotted}"
                ),
            ))
        by_fault: Dict[str, List[_Site]] = {}
        for site in scan.fault_paths:
            by_fault.setdefault(site.kind, []).append(site)
        for kind in sorted(by_fault):
            sites = by_fault[kind]
            first = min(sites, key=lambda s: (s.line, s.col))
            extra = (f" ({len(sites)} sites)" if len(sites) > 1 else "")
            findings.append(Finding(
                path=fn.path, line=first.line, col=first.col,
                rule="hot-loop-fault-path",
                message=(
                    f"{kind} inside a hot loop{extra}; this function is "
                    f"hot via {_via(region, qualname)} — move exception "
                    "machinery and side channels out of the per-quad path"
                ),
                fingerprint=f"hot-loop-fault-path:{qualname}:{kind}",
            ))
    return findings


def _declared_signature(fn_node: ast.AST) -> str:
    """Canonical comma-separated parameter list of a function node."""
    args = getattr(fn_node, "args", None)
    if args is None:
        return ""
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        names.append("*")
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append("**" + args.kwarg.arg)
    return ", ".join(names)


def _normalize_signature(declared: str) -> str:
    return ", ".join(
        part.strip() for part in declared.split(",") if part.strip()
    )


def check_contract_drift(callgraph: CallGraph,
                         contract: PerfContract) -> List[Finding]:
    """Entry points must still exist with their declared signatures."""
    findings: List[Finding] = []
    declared = {entry.function for entry in contract.entries}
    declared.update(contract.purity_entrypoints)
    for qualname in sorted(declared):
        if qualname not in callgraph.functions:
            findings.append(Finding(
                path=str(callgraph.graph.src_root), line=0, col=0,
                rule="missing-entrypoint",
                message=(
                    f"contract entry point {qualname} does not exist; "
                    "fix perfcontract.toml or restore the function"
                ),
                fingerprint=f"missing-entrypoint:{qualname}",
            ))
    for entry in contract.entries:
        fn = callgraph.functions.get(entry.function)
        if fn is None or not entry.signature:
            continue
        actual = _declared_signature(fn.node)
        expected = _normalize_signature(entry.signature)
        if actual != expected:
            findings.append(Finding(
                path=fn.path, line=fn.node.lineno, col=fn.node.col_offset,
                rule="entrypoint-drift",
                message=(
                    f"{entry.function} now has signature ({actual}) but "
                    f"the contract declares ({expected}); update "
                    "perfcontract.toml so the hot-path contract tracks "
                    "reality"
                ),
                fingerprint=f"entrypoint-drift:{entry.function}",
            ))
    return findings


def check_loop_depth(callgraph: CallGraph,
                     contract: PerfContract) -> List[Finding]:
    """Entry points must stay within their declared loop nesting."""
    findings: List[Finding] = []
    for entry in contract.entries:
        fn = callgraph.functions.get(entry.function)
        if fn is None:
            continue  # reported by check_contract_drift
        depth = scan_function(fn.node).max_loop_depth
        if depth > entry.max_loop_depth:
            findings.append(Finding(
                path=fn.path, line=fn.node.lineno, col=fn.node.col_offset,
                rule="loop-depth",
                message=(
                    f"{entry.function} nests loops {depth} deep but the "
                    f"contract allows {entry.max_loop_depth}; an extra "
                    "nesting level multiplies the per-quad work — "
                    "flatten it or re-justify the declared bound"
                ),
                fingerprint=f"loop-depth:{entry.function}",
            ))
    return findings


def check_engine_purity(callgraph: CallGraph,
                        contract: PerfContract) -> List[Finding]:
    """The fast engine must never reach reference-engine code."""
    findings: List[Finding] = []
    forbidden = list(contract.purity_forbidden)
    for entry in sorted(contract.purity_entrypoints):
        chains = reachable_chains(callgraph, entry)
        for qualname in sorted(chains):
            if not any(
                qualname == prefix or qualname.startswith(prefix + ".")
                for prefix in forbidden
            ):
                continue
            findings.append(Finding(
                path=callgraph.functions[qualname].path,
                line=callgraph.functions[qualname].node.lineno, col=0,
                rule="engine-purity",
                message=(
                    f"fast-engine entry point {entry} reaches forbidden "
                    f"{qualname} via {' -> '.join(chains[qualname])}; the "
                    "fast and reference engines must stay disjoint so "
                    "differential tests keep their meaning"
                ),
                fingerprint=f"engine-purity:{entry}:{qualname}",
            ))
    return findings


def check_profile(contract: PerfContract, profile: dict,
                  profile_path: str) -> List[Finding]:
    """Cross-check the contract against measured benchmark output."""
    findings: List[Finding] = []
    for section in contract.profile_sections:
        node = profile
        for part in section.split("."):
            if isinstance(node, dict) and part in node:
                node = node[part]
            else:
                findings.append(Finding(
                    path=profile_path, line=0, col=0,
                    rule="profile-drift",
                    message=(
                        f"benchmark profile is missing required section "
                        f"{section}; the perf contract and the benchmark "
                        "output have drifted apart"
                    ),
                    fingerprint=f"profile-drift:{section}",
                ))
                break
    if contract.profile_min_speedup > 0:
        speedup = profile.get("fast_vs_reference_speedup")
        if isinstance(speedup, (int, float)) \
                and speedup < contract.profile_min_speedup:
            findings.append(Finding(
                path=profile_path, line=0, col=0,
                rule="profile-regression",
                message=(
                    f"measured fast-vs-reference speedup {speedup:.2f}x "
                    f"is below the contract floor "
                    f"{contract.profile_min_speedup:.2f}x; the fast "
                    "engine has regressed"
                ),
                fingerprint=(
                    "profile-regression:fast_vs_reference_speedup"
                ),
            ))
    return findings
