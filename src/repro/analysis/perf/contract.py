"""Declared hot-path performance contracts: parsing and drift checks.

``perfcontract.toml`` declares the simulator's hot entry points once,
checked in next to the code it governs::

    [project]
    package = "repro"

    [[entry]]
    function = "repro.sim.replay.TraceReplayer.run"
    signature = "self, trace, design, hierarchy"
    max_loop_depth = 2

    [hotregion]
    exclude = ["repro.core.dtexl.DTexLConfig.build_scheduler"]

    [purity]
    entrypoints = ["repro.sim.replay.TraceReplayer._tile_quads_fast"]
    forbidden = ["repro.memory.cache.ReferenceCache"]

    [profile]
    required_sections = ["engines.fast.quads_per_s"]
    min_speedup = 2.0

Each ``[[entry]]`` is a root of the hot region: every function the
call graph can reach from it inherits the hot-loop rules.  ``exclude``
prunes subtrees that are *called from* hot code but are not per-quad
work (per-frame construction, image-output paths); an exclusion stops
the walk at that function.  The ``signature`` and ``max_loop_depth``
fields pin the entry point's shape so the contract rots loudly: rename
a parameter or add a fourth nested loop and the drift check fires
before the benchmark does.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class PerfEntry:
    """One declared hot entry point."""

    function: str        #: qualname, e.g. ``repro.sim.replay.TraceReplayer.run``
    signature: str       #: comma-separated parameter names, as declared
    max_loop_depth: int  #: deepest lexical For/While nesting allowed


@dataclass
class PerfContract:
    """The parsed contents of a ``perfcontract.toml``."""

    package: str
    entries: List[PerfEntry]
    #: qualname prefixes pruned from the hot-region walk.
    exclude: List[str] = field(default_factory=list)
    #: roots of the engine-purity walk (the fast engine).
    purity_entrypoints: List[str] = field(default_factory=list)
    #: qualname prefixes the purity walk must never reach.
    purity_forbidden: List[str] = field(default_factory=list)
    #: dotted keys that must exist in the benchmark profile JSON.
    profile_sections: List[str] = field(default_factory=list)
    #: floor for ``fast_vs_reference_speedup`` in the profile JSON.
    profile_min_speedup: float = 0.0
    #: where the contract was loaded from.
    path: Optional[Path] = None

    @classmethod
    def load(cls, path: Path) -> "PerfContract":
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                raw = tomllib.load(handle)
        except FileNotFoundError:
            raise ConfigError(
                f"no performance contract at {path}; create a "
                "perfcontract.toml (see docs/ARCHITECTURE.md)"
            ) from None
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(
                f"cannot parse performance contract {path}: {error}"
            ) from error
        return cls.from_dict(raw, path=path)

    @classmethod
    def from_dict(cls, raw: dict, path: Optional[Path] = None
                  ) -> "PerfContract":
        project = raw.get("project", {})
        package = project.get("package")
        if not isinstance(package, str) or not package:
            raise ConfigError(
                "performance contract must declare [project] package"
            )
        entries_raw = raw.get("entry")
        if not isinstance(entries_raw, list) or not entries_raw:
            raise ConfigError(
                "performance contract must declare at least one [[entry]]"
            )
        entries: List[PerfEntry] = []
        for row in entries_raw:
            if not isinstance(row, dict) or not isinstance(
                row.get("function"), str
            ):
                raise ConfigError(
                    f"malformed [[entry]] in performance contract: {row!r}"
                )
            depth = row.get("max_loop_depth", 0)
            if not isinstance(depth, int) or depth < 0:
                raise ConfigError(
                    f"entry {row['function']!r} max_loop_depth must be a "
                    "non-negative integer"
                )
            entries.append(PerfEntry(
                function=row["function"],
                signature=str(row.get("signature", "")),
                max_loop_depth=depth,
            ))
        hotregion = raw.get("hotregion", {})
        purity = raw.get("purity", {})
        profile = raw.get("profile", {})
        min_speedup = profile.get("min_speedup", 0.0)
        if not isinstance(min_speedup, (int, float)):
            raise ConfigError("[profile] min_speedup must be a number")
        return cls(
            package=package,
            entries=entries,
            exclude=[str(x) for x in hotregion.get("exclude", [])],
            purity_entrypoints=[
                str(x) for x in purity.get("entrypoints", [])
            ],
            purity_forbidden=[str(x) for x in purity.get("forbidden", [])],
            profile_sections=[
                str(x) for x in profile.get("required_sections", [])
            ],
            profile_min_speedup=float(min_speedup),
            path=path,
        )
