"""The perfcheck engine: compute the hot region, run every rule.

Mirrors :class:`repro.analysis.flow.engine.FaultCheck`: one
:meth:`PerfCheck.run` builds the module graph, resolves the call
graph, walks the hot region from the contract's entry points, runs the
drift / loop-depth / hot-loop / purity rules (plus the optional
benchmark-profile cross-check), and splits the findings against the
shared ratcheted baseline — *new* findings gate (exit 1 in the CLI),
*baselined* findings are reported but tolerated, *stale* entries are
surfaced so waivers only ever shrink.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.arch.baseline import Baseline
from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.arch.modgraph import ModuleGraph
from repro.analysis.checks_common import Finding, sort_findings
from repro.analysis.perf.checks import (
    check_contract_drift,
    check_engine_purity,
    check_hot_loops,
    check_loop_depth,
    check_profile,
)
from repro.analysis.perf.contract import PerfContract
from repro.analysis.perf.hotpath import HotRegion, compute_hot_region
from repro.errors import ConfigError


@dataclass
class PerfReport:
    """Everything one perfcheck run produced."""

    graph: ModuleGraph
    callgraph: CallGraph
    contract: PerfContract
    region: HotRegion
    #: findings NOT covered by the baseline — these gate.
    findings: List[Finding] = field(default_factory=list)
    #: findings covered by a justified baseline entry.
    baselined: List[Finding] = field(default_factory=list)
    #: baseline fingerprints that no longer match anything.
    stale: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> Dict[str, int]:
        """Headline numbers for reports."""
        return {
            "modules": len(self.graph.modules),
            "hot_functions": len(self.region.chains),
            "entrypoints": len(self.region.entries),
            "findings": len(self.findings),
            "baselined": len(self.baselined),
            "stale": len(self.stale),
        }


class PerfCheck:
    """Whole-program hot-path checks over one source root."""

    def __init__(self, contract: PerfContract, src_root: Path,
                 baseline: Optional[Baseline] = None,
                 profile_path: Optional[Path] = None):
        self.contract = contract
        self.src_root = Path(src_root)
        self.baseline = baseline if baseline is not None else Baseline(
            path=self.src_root / "perfcheck-baseline.json"
        )
        self.profile_path = profile_path

    def _load_profile(self) -> dict:
        path = Path(self.profile_path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(
                f"cannot read benchmark profile {path}: {error}"
            ) from error
        if not isinstance(raw, dict):
            raise ConfigError(
                f"benchmark profile {path} must be a JSON object"
            )
        return raw

    def run(self, update_baseline: bool = False) -> PerfReport:
        graph = ModuleGraph.build(
            self.src_root, packages=[self.contract.package]
        )
        callgraph = CallGraph(graph)
        region = compute_hot_region(
            callgraph,
            [entry.function for entry in self.contract.entries],
            exclude=self.contract.exclude,
        )
        raw: List[Finding] = list(graph.errors)
        raw.extend(check_contract_drift(callgraph, self.contract))
        raw.extend(check_loop_depth(callgraph, self.contract))
        raw.extend(check_hot_loops(callgraph, region))
        raw.extend(check_engine_purity(callgraph, self.contract))
        if self.profile_path is not None:
            raw.extend(check_profile(
                self.contract, self._load_profile(),
                str(self.profile_path),
            ))
        raw = sort_findings(raw)
        if update_baseline:
            self.baseline.write_updated(raw)
        new, baselined, stale = self.baseline.partition(raw)
        new.extend(self.baseline.unjustified())
        return PerfReport(
            graph=graph,
            callgraph=callgraph,
            contract=self.contract,
            region=region,
            findings=sort_findings(new),
            baselined=baselined,
            stale=stale,
        )
