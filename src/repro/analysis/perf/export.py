"""Hot-region export: a DOT graph of what the entry points reach.

One node per hot function, clustered by module, entry points drawn
double-bordered and excluded-but-referenced functions dashed grey —
so a reviewer can see at a glance which code inherits the hot-loop
rules and where the region was deliberately pruned.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.arch.callgraph import CallGraph
from repro.analysis.perf.hotpath import HotRegion


def _short(qualname: str, package: str) -> str:
    prefix = package + "."
    return qualname[len(prefix):] if qualname.startswith(prefix) else qualname


def hot_region_to_dot(callgraph: CallGraph, region: HotRegion,
                      package: str = "repro") -> str:
    """The hot region as a Graphviz digraph."""
    members = set(region.chains)
    entries = set(region.entries)
    excluded = set(region.excluded)
    edges: Set[Tuple[str, str]] = set()
    for qualname in sorted(members):
        for callee in sorted(callgraph.functions[qualname].calls):
            if callee in members or callee in excluded:
                edges.add((qualname, callee))
    by_module: Dict[str, List[str]] = {}
    for qualname in sorted(members):
        by_module.setdefault(
            callgraph.functions[qualname].module, []
        ).append(qualname)
    lines: List[str] = [
        "digraph hotregion {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
    ]
    for i, module in enumerate(sorted(by_module)):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f'    label="{module}";')
        lines.append('    color="grey60";')
        for qualname in by_module[module]:
            attrs = [f'label="{_short(qualname, package)}"']
            if qualname in entries:
                attrs.append("peripheries=2")
                attrs.append('style="bold"')
            lines.append(f'    "{qualname}" [{", ".join(attrs)}];')
        lines.append("  }")
    for qualname in sorted(excluded):
        lines.append(
            f'  "{qualname}" [label="{_short(qualname, package)}", '
            'style="dashed", color="grey50", fontcolor="grey50"];'
        )
    for src, dst in sorted(edges):
        attrs = []
        if dst in excluded:
            attrs.append('style="dashed"')
            attrs.append('color="grey50"')
        suffix = f' [{", ".join(attrs)}]' if attrs else ""
        lines.append(f'  "{src}" -> "{dst}"{suffix};')
    lines.append("}")
    return "\n".join(lines) + "\n"
