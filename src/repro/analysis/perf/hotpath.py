"""The hot region: everything the declared entry points can reach.

perfcheck's scope is not "every loop in the repository" — formatting a
results table may allocate all it wants.  The hot region is the set of
functions reachable along archcheck's resolved call graph from the
entry points ``perfcontract.toml`` declares, minus excluded subtrees
(per-frame construction, image-output paths).  Every member carries
one concrete call chain back to its entry point so a finding inside a
helper three calls deep is actionable without re-deriving the path.

Resolution inherits the call graph's conservatism: an unresolvable
call adds no edge, so the region under-approximates.  That is the
right direction for a gate — misses are silent non-edges, never false
alarms — and the entry points themselves pin the loops that matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Sequence

from repro.analysis.arch.callgraph import CallGraph


@dataclass
class HotRegion:
    """The reachable-from-hot-entry-points function set."""

    #: member qualname -> call chain from its entry point (inclusive).
    chains: Dict[str, List[str]] = field(default_factory=dict)
    #: declared entry points present in the function index.
    entries: List[str] = field(default_factory=list)
    #: declared entry points absent from the function index.
    missing: List[str] = field(default_factory=list)
    #: qualnames pruned by a [hotregion] exclude pattern.
    excluded: List[str] = field(default_factory=list)

    def __contains__(self, qualname: str) -> bool:
        return qualname in self.chains

    def members(self) -> List[str]:
        return sorted(self.chains)

    def chain_of(self, qualname: str) -> List[str]:
        return self.chains.get(qualname, [])


def _is_excluded(qualname: str, patterns: Sequence[str]) -> bool:
    return any(
        qualname == pattern or fnmatch(qualname, pattern)
        for pattern in patterns
    )


def compute_hot_region(callgraph: CallGraph, entrypoints: Sequence[str],
                       exclude: Sequence[str] = ()) -> HotRegion:
    """Breadth-first walk from each entry point, pruning exclusions.

    The first entry point (in declaration order) to reach a function
    owns its chain; excluded functions are recorded but never visited,
    so their callees stay out unless reachable some other way.
    """
    region = HotRegion()
    excluded: set = set()
    for entry in entrypoints:
        if entry not in callgraph.functions:
            region.missing.append(entry)
            continue
        region.entries.append(entry)
        if entry in region.chains:
            continue
        region.chains[entry] = [entry]
        queue = [entry]
        while queue:
            current = queue.pop(0)
            fn = callgraph.functions[current]
            for callee in sorted(fn.calls):
                if callee in region.chains:
                    continue
                if _is_excluded(callee, exclude):
                    excluded.add(callee)
                    continue
                region.chains[callee] = region.chains[current] + [callee]
                queue.append(callee)
    region.excluded = sorted(excluded)
    return region


def reachable_chains(callgraph: CallGraph,
                     entry: str) -> Dict[str, List[str]]:
    """Unpruned reachability from one entry point (for purity checks)."""
    if entry not in callgraph.functions:
        return {}
    chains: Dict[str, List[str]] = {entry: [entry]}
    queue = [entry]
    while queue:
        current = queue.pop(0)
        for callee in sorted(callgraph.functions[current].calls):
            if callee not in chains:
                chains[callee] = chains[current] + [callee]
                queue.append(callee)
    return chains
