"""Reuse-distance (stack-distance) analysis of texture access streams.

The classic LRU stack-distance tool: for a trace of cache-line accesses,
the *reuse distance* of an access is the number of **distinct** lines
touched since the previous access to the same line (infinity for cold
accesses).  For a fully-associative LRU cache of ``C`` lines, an access
hits iff its reuse distance is < ``C`` — so one histogram predicts the
hit rate of *every* capacity at once.

DTexL's story in these terms: fine-grained quad interleaving stretches
each SC's reuse distances (neighbouring quads that would re-touch a line
immediately are sent to other cores), pushing them past the 256-line L1;
coarse-grained grouping compresses them back under it.  The
``ablation_reuse`` bench plots exactly that shift.

The implementation uses the standard O(N log N) Fenwick-tree algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & -index
        return total


@dataclass
class ReuseProfile:
    """Reuse-distance histogram of one access stream."""

    #: histogram[d] = number of accesses with reuse distance exactly d.
    histogram: Dict[int, int] = field(default_factory=dict)
    cold_accesses: int = 0
    total_accesses: int = 0

    def hit_rate(self, capacity_lines: int) -> float:
        """Predicted hit rate of a fully-associative LRU of that size."""
        if self.total_accesses == 0:
            return 0.0
        hits = sum(
            count for distance, count in self.histogram.items()
            if distance < capacity_lines
        )
        return hits / self.total_accesses

    def miss_rate(self, capacity_lines: int) -> float:
        return 1.0 - self.hit_rate(capacity_lines)

    def working_set(self, coverage: float = 0.9) -> int:
        """Smallest capacity whose predicted hit rate covers ``coverage``
        of all *reused* accesses."""
        reused = self.total_accesses - self.cold_accesses
        if reused <= 0:
            return 0
        needed = coverage * reused
        running = 0
        for distance in sorted(self.histogram):
            running += self.histogram[distance]
            if running >= needed:
                return distance + 1
        return max(self.histogram, default=0) + 1

    def mean_distance(self) -> float:
        """Mean finite reuse distance."""
        reused = self.total_accesses - self.cold_accesses
        if reused == 0:
            return 0.0
        return (
            sum(d * c for d, c in self.histogram.items()) / reused
        )

    def merge(self, other: "ReuseProfile") -> "ReuseProfile":
        merged = dict(self.histogram)
        for distance, count in other.histogram.items():
            merged[distance] = merged.get(distance, 0) + count
        return ReuseProfile(
            histogram=merged,
            cold_accesses=self.cold_accesses + other.cold_accesses,
            total_accesses=self.total_accesses + other.total_accesses,
        )


def reuse_profile(stream: Iterable[int]) -> ReuseProfile:
    """Compute the reuse-distance histogram of a line-address stream."""
    accesses = list(stream)
    profile = ReuseProfile(total_accesses=len(accesses))
    if not accesses:
        return profile
    tree = _Fenwick(len(accesses))
    last_seen: Dict[int, int] = {}
    distinct_in_tree = 0
    for timestamp, line in enumerate(accesses):
        previous = last_seen.get(line)
        if previous is None:
            profile.cold_accesses += 1
        else:
            # Distinct lines touched strictly after ``previous``.
            distance = distinct_in_tree - tree.prefix_sum(previous)
            profile.histogram[distance] = (
                profile.histogram.get(distance, 0) + 1
            )
            tree.add(previous, -1)
            distinct_in_tree -= 1
        tree.add(timestamp, 1)
        distinct_in_tree += 1
        last_seen[line] = timestamp
    return profile


def per_core_reuse_profiles(
    trace,
    scheduler,
    num_cores: Optional[int] = None,
) -> List[ReuseProfile]:
    """Per-SC texture reuse profiles of a frame trace under a schedule.

    Walks the trace in the scheduler's tile order and splits each quad's
    texture lines onto its assigned core's stream, then profiles each
    stream independently — the per-L1 view of locality.
    """
    cores = num_cores or scheduler.config.num_shader_cores
    streams: List[List[int]] = [[] for _ in range(cores)]
    for step, tile in enumerate(scheduler.tiles):
        entry = trace.tiles.get(tile)
        if entry is None:
            continue
        perm = scheduler.permutation_at(step)
        for quad in entry.quads:
            core = perm[scheduler.slot_of(quad.qx, quad.qy)] % cores
            streams[core].extend(quad.texture_lines)
    return [reuse_profile(stream) for stream in streams]
