"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospaced table.

    Floats are shown with three decimals; everything else with ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
