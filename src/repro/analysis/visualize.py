"""ASCII visualization of schedules, groupings, orders and assignments.

These render the paper's Figures 6, 7 and 8 for *any* configuration —
handy for understanding what a design point actually does to the screen,
and used by the ``python -m repro schedule`` CLI command.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.quad_grouping import QuadGrouping
from repro.core.scheduler import QuadScheduler
from repro.core.tile_order import TileCoord

#: Glyph per shader core / slot.
CORE_GLYPHS = "0123"


def render_grouping_ascii(grouping: QuadGrouping, side: int = 16) -> str:
    """One tile's quad -> slot map as a glyph grid (paper Figure 6)."""
    grid = grouping.slot_map(side)
    lines = [f"{grouping.name} ({side}x{side} quads)"]
    for row in grid:
        lines.append("".join(CORE_GLYPHS[slot] for slot in row))
    return "\n".join(lines)


def render_tile_order_ascii(
    order: Sequence[TileCoord], tiles_x: int, tiles_y: int
) -> str:
    """The traversal as per-tile sequence numbers (paper Figure 7)."""
    width = len(str(len(order) - 1)) if order else 1
    sequence = {tile: step for step, tile in enumerate(order)}
    lines = []
    for ty in range(tiles_y):
        lines.append(
            " ".join(
                str(sequence[(tx, ty)]).rjust(width)
                for tx in range(tiles_x)
            )
        )
    return "\n".join(lines)


def render_assignment_ascii(
    scheduler: QuadScheduler, steps: Sequence[int], side: int = 8
) -> str:
    """Subtile->SC maps of selected traversal steps (paper Figure 8)."""
    blocks: List[List[str]] = []
    for step in steps:
        grid = scheduler.core_map(step)
        stride = max(1, len(grid) // side)
        tile = scheduler.tiles[step]
        header = f"step {step} tile {tile}"
        rows = [header.ljust(side + 2)]
        for qy in range(0, len(grid), stride):
            rows.append(
                "".join(
                    CORE_GLYPHS[grid[qy][qx]]
                    for qx in range(0, len(grid[qy]), stride)
                ).ljust(side + 2)
            )
        blocks.append(rows)
    height = max(len(b) for b in blocks)
    lines = []
    for i in range(height):
        lines.append("  ".join(
            block[i] if i < len(block) else " " * len(block[0])
            for block in blocks
        ))
    return "\n".join(lines)


def render_schedule_ascii(
    scheduler: QuadScheduler, max_tiles: int = 8
) -> str:
    """Full overview of one schedule: grouping, order and assignments."""
    sections = [
        render_grouping_ascii(
            scheduler.grouping, scheduler.config.quads_per_tile_side
        ),
        "",
        f"tile order '{scheduler.order_name}' over "
        f"{scheduler.config.tiles_x}x{scheduler.config.tiles_y} tiles:",
        render_tile_order_ascii(
            scheduler.tiles, scheduler.config.tiles_x, scheduler.config.tiles_y
        ),
        "",
        f"subtile assignment '{scheduler.assignment.name}' over the first "
        f"{max_tiles} steps:",
        render_assignment_ascii(scheduler, list(range(
            min(max_tiles, scheduler.num_steps)
        ))),
    ]
    return "\n".join(sections)


def render_imbalance_heatmap(
    per_tile_values: Sequence[Sequence[float]],
    tiles: Sequence[TileCoord],
    tiles_x: int,
    tiles_y: int,
) -> str:
    """Per-tile imbalance as an ASCII heatmap (darker = more imbalanced).

    ``per_tile_values[i]`` are the per-SC values of ``tiles[i]``.
    """
    from repro.stats import mean_deviation

    ramp = " .:-=+*#%@"
    deviations = {
        tile: mean_deviation(values)
        for tile, values in zip(tiles, per_tile_values)
    }
    peak = max(deviations.values(), default=0.0) or 1.0
    lines = []
    for ty in range(tiles_y):
        row = []
        for tx in range(tiles_x):
            level = deviations.get((tx, ty), 0.0) / peak
            row.append(ramp[min(int(level * (len(ramp) - 1)), len(ramp) - 1)])
        lines.append("".join(row))
    return "\n".join(lines)
