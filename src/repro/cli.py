"""Command-line interface.

Subcommands::

    python -m repro info                      # list games / design points / orders
    python -m repro render GAME [-o out.ppm]  # functional render to an image
    python -m repro replay GAME [-d NAME ...] # replay design points, print table
    python -m repro suite [-d NAME ...]       # whole-suite comparison
    python -m repro sweep [--grouping ...]    # design-space grid, table or CSV
    python -m repro animate GAME [--frames N] # multi-frame warm-cache run
    python -m repro schedule [--grouping ...] # visualize a schedule as ASCII
    python -m repro lint [PATHS ...]          # replint static checks
    python -m repro archcheck [--dot out.dot] # whole-program arch checks
    python -m repro faultcheck [--json ...]   # exception-flow analysis
    python -m repro perfcheck [--dot out.dot] # hot-path performance checks
    python -m repro check                     # all four analyzers, concurrently
    python -m repro sanitize GAME [-d NAME]   # runtime invariant sanitizer
    python -m repro chaos [--trials N]        # fault-injection campaign

Common options: ``--screen WxH`` picks the simulated resolution
(default 512x256; ``--screen paper`` = the Table II 1960x768), and
``--json`` switches tabular output to JSON for scripting.

Exit codes: 0 for clean success, 1 for lint findings or invariant
violations, 3 for a partial sweep (some design points failed but the
campaign completed), 2 for a fatal error (also what argparse uses for
invalid arguments).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.config import GPUConfig
from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS, DTexLConfig
from repro.core.quad_grouping import GROUPINGS
from repro.core.subtile_assignment import ASSIGNMENTS
from repro.core.tile_order import TILE_ORDERS
from repro.errors import ConfigError, ReproError, UnknownWorkloadError
from repro.sim import ExperimentRunner, FrameRenderer, TraceReplayer
from repro.sim.stream import STREAM_DRIVERS
from repro.sim.export import run_result_to_dict, suite_result_to_dict
from repro.workloads import GAMES, build_game

#: Distinct exit codes for unattended campaign drivers.
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_FATAL = 2
EXIT_PARTIAL = 3


def _parse_screen(value: str) -> GPUConfig:
    if value == "paper":
        return GPUConfig()
    try:
        width, height = value.lower().split("x")
        return GPUConfig(screen_width=int(width), screen_height=int(height))
    except (ValueError, TypeError) as error:
        # ArgumentTypeError messages are printed verbatim by argparse;
        # a plain ValueError's reason would be swallowed.
        raise argparse.ArgumentTypeError(
            f"invalid screen size {value!r} ({error}); "
            "expected WIDTHxHEIGHT or 'paper'"
        ) from error


def _games(value: Optional[str]) -> Optional[List[str]]:
    """Split and validate a ``--games A,B,...`` list."""
    if not value:
        return None
    aliases = [alias.strip() for alias in value.split(",") if alias.strip()]
    unknown = [alias for alias in aliases if alias not in GAMES]
    if unknown:
        raise UnknownWorkloadError(
            f"unknown game(s) {', '.join(map(repr, unknown))}; "
            f"choose from {', '.join(GAMES)}"
        )
    return aliases


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--screen", type=_parse_screen, default=_parse_screen("512x256"),
        metavar="WxH|paper", help="simulated screen size (default 512x256)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )


def _designs(names: Optional[List[str]]) -> List[DTexLConfig]:
    if not names:
        return [BASELINE, PAPER_CONFIGURATIONS["HLB-flp2"]]
    out = []
    for name in names:
        try:
            out.append(PAPER_CONFIGURATIONS[name])
        except KeyError:
            raise ConfigError(
                f"unknown design point {name!r}; see `python -m repro info`"
            ) from None
    return out


def cmd_info(_args) -> int:
    print("Games (Table I):")
    for alias, spec in GAMES.items():
        print(f"  {alias:4s} {spec.title} ({spec.scene_type}, "
              f"{spec.texture_footprint_mib} MiB)")
    print("\nDesign points (paper configurations):")
    for name, cfg in PAPER_CONFIGURATIONS.items():
        arch = "decoupled" if cfg.decoupled else "coupled"
        print(f"  {name:22s} {cfg.grouping:10s} {cfg.order:8s} "
              f"{cfg.assignment:6s} {arch}")
    print("\nQuad groupings:", ", ".join(sorted(GROUPINGS)))
    print("Tile orders:   ", ", ".join(sorted(TILE_ORDERS)))
    print("Assignments:   ", ", ".join(sorted(ASSIGNMENTS)))
    return 0


def cmd_render(args) -> int:
    config = args.screen
    workload = build_game(args.game, config)
    renderer = FrameRenderer(config)
    trace, framebuffer = renderer.render(workload, with_image=True)
    output = args.output or f"{args.game.lower()}_frame.ppm"
    with open(output, "wb") as handle:
        handle.write(framebuffer.to_ppm())
    stats = trace.stats
    print(
        f"wrote {output}: {stats.num_quads} quads, "
        f"overdraw {stats.overdraw_factor(config):.2f}, "
        f"Early-Z cull {stats.z_cull_rate:.0%}"
    )
    return 0


def _print_replay_profile(profiler, render_s: float, replay_s: float) -> None:
    """Per-phase wall times plus the hottest profile entries."""
    import pstats

    stats = pstats.Stats(profiler)
    # The pass-2 timing model, attributed from the profile: cumulative
    # time under RasterPipelineModel.simulate.
    timing_s = sum(
        ct
        for (filename, _line, name), (_cc, _nc, _tt, ct, _callers)
        in stats.stats.items()
        if name == "simulate" and "pipeline" in filename
    )
    print("\nprofile (phases)")
    print(f"  pass-1 render : {render_s:8.3f} s")
    print(f"  pass-2 replay : {replay_s:8.3f} s")
    print(f"    timing model: {timing_s:8.3f} s (within replay)")
    print("\nprofile (top functions by cumulative time)")
    stats.sort_stats("cumulative").print_stats(15)


def cmd_replay(args) -> int:
    config = args.screen
    designs = _designs(args.design)
    stream = getattr(args, "stream", "batch")
    profiling = getattr(args, "profile", False)
    if profiling:
        import time
        t0 = time.perf_counter()
    replayer = TraceReplayer(config)
    if stream == "batch":
        workload = build_game(args.game, config)
        trace, _ = FrameRenderer(config).render(workload)
    if profiling:
        import cProfile
        render_s = time.perf_counter() - t0
        profiler = cProfile.Profile()
        t1 = time.perf_counter()
        profiler.enable()
    if stream == "batch":
        results = [replayer.run(trace, design) for design in designs]
    else:
        # Streamed dataflows render inside the replay loop, so pass 1
        # is part of the profiled phase and each design point pays its
        # own (bounded-memory) render.
        runner = ExperimentRunner(config, games=[args.game], stream=stream)
        results = [runner.run(args.game, design) for design in designs]
    if profiling:
        profiler.disable()
        replay_s = time.perf_counter() - t1
        _print_replay_profile(profiler, render_s, replay_s)
    if args.json:
        import json
        print(json.dumps(
            [run_result_to_dict(r) for r in results], indent=2, sort_keys=True
        ))
        return 0
    base = results[0]
    rows = [
        [
            r.design_point, r.l2_accesses,
            r.l2_accesses / base.l2_accesses if base.l2_accesses else 0.0,
            r.frame_cycles, base.frame_cycles / r.frame_cycles,
            r.energy.total_mj,
        ]
        for r in results
    ]
    print(format_table(
        ["design point", "L2 accesses", "L2 norm.", "cycles",
         "speedup", "energy mJ"],
        rows,
        title=f"{args.game} at {config.screen_width}x{config.screen_height} "
              f"(speedup vs {base.design_point})",
    ))
    return 0


def cmd_suite(args) -> int:
    config = args.screen
    runner = ExperimentRunner(config, games=_games(args.games))
    designs = _designs(args.design)
    suites = [runner.run_suite(design) for design in designs]
    if args.json:
        import json
        print(json.dumps(
            [suite_result_to_dict(s) for s in suites], indent=2, sort_keys=True
        ))
        return 0
    base = suites[0]
    rows = [
        [
            suite.design_point,
            suite.total_l2_accesses,
            suite.mean_l2_decrease_vs(base),
            suite.mean_speedup_vs(base),
            suite.mean_energy_decrease_vs(base),
        ]
        for suite in suites
    ]
    print(format_table(
        ["design point", "L2 accesses", "L2 decrease %", "speedup",
         "energy decrease %"],
        rows,
        title=f"suite of {len(runner.games)} games vs {base.design_point}",
    ))
    return 0


def cmd_sweep(args) -> int:
    from repro.sim.resilience import ReplayBudget, RetryPolicy
    from repro.sim.sweep import DesignSweep, best_row, rows_to_csv

    if args.resume and not args.checkpoint_dir:
        raise ConfigError("--resume requires --checkpoint-dir")
    if args.max_retries < 0:
        raise ConfigError("--max-retries must be >= 0")
    if args.budget is not None and args.budget <= 0:
        raise ConfigError("--budget must be a positive quad count")
    if args.jobs < 1:
        raise ConfigError("--jobs must be >= 1")
    runner = ExperimentRunner(
        args.screen,
        games=_games(args.games),
        budget=ReplayBudget(max_quads=args.budget),
        stream=args.stream,
    )
    sweep = DesignSweep(
        groupings=args.grouping,
        assignments=args.assignment,
        orders=args.order,
        decoupled=[False, True] if args.both_architectures else [True],
    )
    report = sweep.run(
        runner,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        jobs=args.jobs,
        task_timeout_s=args.task_timeout,
    )
    exit_code = {"success": EXIT_OK, "partial": EXIT_PARTIAL}.get(
        report.outcome, EXIT_FATAL
    )
    for failure in report.failures:
        print(
            f"FAILED {failure.design_point}"
            + (f" on {failure.game}" if failure.game else "")
            + f": {failure.error_type}: {failure.message}"
            + (f" (after {failure.attempts} attempts)"
               if failure.attempts > 1 else ""),
            file=sys.stderr,
        )
    if args.csv:
        print(rows_to_csv(report.rows), end="")
        return exit_code
    print(format_table(
        ["grouping", "assignment", "order", "decoupled", "L2 norm.",
         "speedup", "imbalance", "energy dec %"],
        [
            [r.grouping, r.assignment, r.order, r.decoupled,
             r.l2_normalized, r.speedup, r.quad_imbalance,
             r.energy_decrease_pct]
            for r in report.rows
        ],
        title=f"design-space sweep over {len(runner.games)} games",
    ))
    if report.resumed:
        print(f"\nresumed {len(report.resumed)} completed design point(s) "
              "from checkpoint")
    winner = best_row(report.rows, "speedup")
    if winner is not None:
        print(f"\nbest by speedup: {winner.grouping}/{winner.assignment}/"
              f"{winner.order} "
              f"({'decoupled' if winner.decoupled else 'coupled'})"
              f" at {winner.speedup:.3f}x")
    if report.failures:
        print(f"\n{len(report.failures)} design point failure(s); "
              "see stderr for details")
    return exit_code


def cmd_chaos(args) -> int:
    from repro.sim.chaos import run_chaos
    from repro.sim.resilience import RetryPolicy

    report = run_chaos(
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        config=args.screen,
        games=_games(args.games),
        task_timeout_s=args.task_timeout,
        retry_policy=RetryPolicy(max_retries=args.max_retries,
                                 seed=args.seed),
    )
    if args.json:
        import json
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return EXIT_OK if report.ok else EXIT_FINDINGS
    for trial in report.trials:
        status = "ok" if trial.ok else "DIVERGED"
        extras = []
        if trial.killed:
            extras.append("killed+resumed")
        if trial.fires:
            extras.append(f"{trial.fires} parent fire(s)")
        note = f" [{', '.join(extras)}]" if extras else ""
        print(f"trial {trial.index:3d} seed={trial.seed:<10d} "
              f"jobs={trial.jobs} {status:8s} {trial.plan}{note}")
        for problem in trial.problems:
            print(f"    {problem}", file=sys.stderr)
    verdict = ("all trials converged to the uninjected reference"
               if report.ok
               else f"{len(report.failed_trials)} trial(s) diverged")
    print(f"\nchaos: {len(report.trials)} trial(s), "
          f"{report.reference_rows} reference row(s), "
          f"{report.wall_time_s:.1f}s — {verdict}")
    return EXIT_OK if report.ok else EXIT_FINDINGS


def cmd_animate(args) -> int:
    from repro.sim.multiframe import AnimationSimulator
    from repro.workloads.animation import Animation

    animation = Animation.of_game(args.game, num_frames=args.frames)
    simulator = AnimationSimulator(args.screen)
    designs = _designs(args.design)
    results = [simulator.run(animation, design) for design in designs]
    rows = []
    for result in results:
        rows.append(
            [
                result.design_point,
                result.total_l2_accesses,
                sum(f.dram_accesses for f in result.frames),
                result.total_cycles,
                result.fps(args.screen.frequency_mhz),
                result.warmup_ratio(),
            ]
        )
    print(format_table(
        ["design point", "L2 accesses", "DRAM fills", "cycles",
         "FPS", "warm-up ratio"],
        rows,
        title=f"{args.frames}-frame animation of {args.game} "
              "(caches persist across frames)",
    ))
    return 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis.lint import (
        LintEngine,
        format_json,
        format_text,
        rule_ids,
    )

    if args.select:
        unknown = set(args.select) - rule_ids()
        if unknown:
            raise ConfigError(
                f"unknown lint rule(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"choose from {', '.join(sorted(rule_ids()))}"
            )
    engine = LintEngine(select=args.select or None)
    findings = engine.lint_paths([Path(p) for p in args.paths])
    if args.format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return EXIT_FINDINGS if findings else EXIT_OK


def cmd_archcheck(args) -> int:
    from pathlib import Path

    from repro.analysis.arch import (
        ArchCheck,
        Baseline,
        LayerContract,
        graph_to_json,
        to_dot,
    )
    from repro.analysis.checks_common import format_json, format_text

    contract = LayerContract.load(Path(args.contract))
    baseline = Baseline.load(Path(args.baseline))
    check = ArchCheck(contract, Path(args.src), baseline=baseline)
    report = check.run(update_baseline=args.update_baseline)
    if args.dot:
        dot = to_dot(report.graph, contract)
        if args.dot == "-":
            print(dot, end="")
        else:
            Path(args.dot).write_text(dot, encoding="utf-8")
    if args.graph_json:
        graph = graph_to_json(report.graph, contract)
        if args.graph_json == "-":
            print(graph)
        else:
            Path(args.graph_json).write_text(graph + "\n", encoding="utf-8")
    summary = {
        "modules": len(report.graph.modules),
        "edges": len(report.graph.edges),
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": report.stale,
    }
    if args.format == "json":
        print(format_json(report.findings, tool="archcheck", **summary))
    else:
        print(format_text(report.findings, tool="archcheck"))
        print(f"graph: {summary['modules']} modules, "
              f"{summary['edges']} internal edges")
        if report.baselined:
            print(f"baselined: {len(report.baselined)} pre-existing "
                  f"finding(s) waived by {args.baseline}")
        for fingerprint in report.stale:
            print(f"stale baseline entry (violation fixed? delete it): "
                  f"{fingerprint}")
        if args.update_baseline:
            print(f"baseline rewritten: {args.baseline}")
    return EXIT_FINDINGS if report.findings else EXIT_OK


def cmd_faultcheck(args) -> int:
    from pathlib import Path

    from repro.analysis.arch import Baseline
    from repro.analysis.checks_common import format_json, format_text
    from repro.analysis.flow import FaultCheck

    baseline = Baseline.load(Path(args.baseline))
    check = FaultCheck(
        Path(args.src), package=args.package, baseline=baseline
    )
    report = check.run(update_baseline=args.update_baseline)
    stats = report.stats()
    summary = {
        "stats": stats,
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": report.stale,
    }
    rendered_json = format_json(
        report.findings, tool="faultcheck", **summary
    )
    if args.report:
        # Machine-readable copy for CI artifacts, independent of the
        # console format.
        Path(args.report).write_text(rendered_json + "\n", encoding="utf-8")
    if args.format == "json":
        print(rendered_json)
    else:
        print(format_text(report.findings, tool="faultcheck"))
        print(f"flow: {stats['modules']} modules, "
              f"{stats['exception_classes']} exception classes, "
              f"{stats['functions']} functions analyzed")
        if report.baselined:
            print(f"baselined: {len(report.baselined)} pre-existing "
                  f"finding(s) waived by {args.baseline}")
        for fingerprint in report.stale:
            print(f"stale baseline entry (violation fixed? delete it): "
                  f"{fingerprint}")
        if args.update_baseline:
            print(f"baseline rewritten: {args.baseline}")
    return EXIT_FINDINGS if report.findings else EXIT_OK


def cmd_perfcheck(args) -> int:
    from pathlib import Path

    from repro.analysis.arch import Baseline
    from repro.analysis.checks_common import format_json, format_text
    from repro.analysis.perf import (
        PerfCheck,
        PerfContract,
        hot_region_to_dot,
    )

    contract = PerfContract.load(Path(args.contract))
    baseline = Baseline.load(Path(args.baseline))
    check = PerfCheck(
        contract, Path(args.src), baseline=baseline,
        profile_path=Path(args.profile_json) if args.profile_json else None,
    )
    report = check.run(update_baseline=args.update_baseline)
    if args.dot:
        dot = hot_region_to_dot(
            report.callgraph, report.region, package=contract.package
        )
        if args.dot == "-":
            print(dot, end="")
        else:
            Path(args.dot).write_text(dot, encoding="utf-8")
    stats = report.stats()
    summary = {
        "stats": stats,
        "hot_region": report.region.members(),
        "baselined": [f.as_dict() for f in report.baselined],
        "stale_baseline": report.stale,
    }
    rendered_json = format_json(
        report.findings, tool="perfcheck", **summary
    )
    if args.report:
        # Machine-readable copy for CI artifacts, independent of the
        # console format.
        Path(args.report).write_text(rendered_json + "\n", encoding="utf-8")
    if args.format == "json":
        print(rendered_json)
    else:
        print(format_text(report.findings, tool="perfcheck"))
        print(f"hot region: {stats['hot_functions']} functions reachable "
              f"from {stats['entrypoints']} entry points")
        if report.baselined:
            print(f"baselined: {len(report.baselined)} pre-existing "
                  f"finding(s) waived by {args.baseline}")
        for fingerprint in report.stale:
            print(f"stale baseline entry (violation fixed? delete it): "
                  f"{fingerprint}")
        if args.update_baseline:
            print(f"baseline rewritten: {args.baseline}")
    return EXIT_FINDINGS if report.findings else EXIT_OK


def _run_check_gate(name: str, options: dict) -> tuple:
    """Run one analyzer gate, capturing its console output.

    Module-level with picklable arguments so ``repro check`` can fan
    the gates out to a process pool (faultcheck's worker-pickling rule
    holds the umbrella to the same standard as the sweeps).
    """
    import contextlib
    import io

    handlers = {
        "lint": cmd_lint,
        "archcheck": cmd_archcheck,
        "faultcheck": cmd_faultcheck,
        "perfcheck": cmd_perfcheck,
    }
    buffer = io.StringIO()
    try:
        with contextlib.redirect_stdout(buffer):
            code = handlers[name](argparse.Namespace(**options))
    except ReproError as error:
        # A broken contract or baseline fails its own gate, not the
        # whole umbrella run.
        buffer.write(f"error: {error}\n")
        code = EXIT_FATAL
    return name, code, buffer.getvalue()


def cmd_check(args) -> int:
    """Umbrella gate: all four analyzers, one exit code.

    The gates run concurrently in worker processes — wall clock is the
    slowest analyzer, not the sum — and their captured output is
    printed serially, in declared order, with a per-gate exit status.
    """
    gates = [
        ("lint", {
            "paths": [args.src], "format": args.format, "select": None,
        }),
        ("archcheck", {
            "src": args.src, "contract": args.contract,
            "baseline": args.arch_baseline, "format": args.format,
            "dot": None, "graph_json": None, "update_baseline": False,
        }),
        ("faultcheck", {
            "src": args.src, "package": args.package,
            "baseline": args.fault_baseline, "format": args.format,
            "update_baseline": False, "report": args.report,
        }),
        ("perfcheck", {
            "src": args.src, "contract": args.perf_contract,
            "baseline": args.perf_baseline, "format": args.format,
            "dot": None, "report": args.perf_report, "profile_json": None,
            "update_baseline": False,
        }),
    ]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(max_workers=len(gates)) as pool:
            futures = [
                pool.submit(_run_check_gate, name, options)
                for name, options in gates
            ]
            results = [future.result() for future in futures]
    except (OSError, BrokenProcessPool):
        # No usable process pool (restricted sandbox, dead worker):
        # same gates, same output, serially.
        results = [_run_check_gate(name, options) for name, options in gates]
    statuses = {
        EXIT_OK: "clean", EXIT_FINDINGS: "findings", EXIT_FATAL: "fatal",
    }
    for index, (name, code, text) in enumerate(results):
        if index:
            print()
        print(f"== {name} ==")
        print(text, end="" if text.endswith("\n") else "\n")
        print(f"{name}: exit {code} "
              f"({statuses.get(code, 'unknown')})")
    failed = [code for _, code, _ in results if code != EXIT_OK]
    print(f"\ncheck: {len(results) - len(failed)}/{len(results)} "
          "gates clean")
    return EXIT_FINDINGS if failed else EXIT_OK


def cmd_sanitize(args) -> int:
    from repro.analysis.lint import TraceSanitizer, trace_digest

    config = args.screen
    designs = _designs(args.design)
    workload = build_game(args.game, config)
    trace, _ = FrameRenderer(config).render(workload)
    digest = trace_digest(trace)
    replayer = TraceReplayer(config)
    sanitizer = TraceSanitizer(config)
    rows = []
    clean = True
    for design in designs:
        result = replayer.run(trace, design)
        violations = sanitizer.check(
            trace, result, design, expected_digest=digest
        )
        clean = clean and not violations
        rows.append({
            "design_point": design.name,
            "ok": not violations,
            "violations": [
                {"invariant": v.invariant, "message": v.message}
                for v in violations
            ],
        })
    if args.json:
        import json
        print(json.dumps(
            {"game": args.game, "trace_digest": digest, "designs": rows},
            indent=2, sort_keys=True,
        ))
    else:
        for row in rows:
            status = "OK" if row["ok"] else "VIOLATED"
            print(f"{row['design_point']:24s} {status}")
            for violation in row["violations"]:
                print(f"    [{violation['invariant']}] "
                      f"{violation['message']}")
        print(
            f"\nsanitized {len(rows)} design point(s) on {args.game}: "
            + ("all invariants hold" if clean else "invariants violated")
        )
    return EXIT_OK if clean else EXIT_FINDINGS


def cmd_schedule(args) -> int:
    from repro.analysis.visualize import render_schedule_ascii

    config = args.screen
    design = DTexLConfig(
        name="cli",
        grouping=args.grouping,
        assignment=args.assignment,
        order=args.order,
    )
    scheduler = design.build_scheduler(config)
    print(render_schedule_ascii(scheduler, max_tiles=args.tiles))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DTexL (MICRO 2022) reproduction — TBR GPU simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list games, design points and knobs")

    p_render = sub.add_parser("render", help="render a game frame to PPM")
    p_render.add_argument("game", choices=sorted(GAMES))
    p_render.add_argument("-o", "--output")
    _add_common(p_render)

    p_replay = sub.add_parser("replay", help="replay design points on one game")
    p_replay.add_argument("game", choices=sorted(GAMES))
    p_replay.add_argument(
        "-d", "--design", action="append", metavar="NAME",
        help="design point (repeatable; default: baseline + HLB-flp2)",
    )
    p_replay.add_argument(
        "--profile", action="store_true",
        help="print per-phase wall times (render / replay / timing "
             "model) and the hottest profile entries",
    )
    p_replay.add_argument(
        "--stream", choices=STREAM_DRIVERS, default="batch",
        help="tile dataflow: batch materializes the whole trace, "
             "streaming renders/replays/drops one tile group at a time "
             "(bounded memory), overlap renders ahead in a worker "
             "process; results are bit-identical across all three",
    )
    _add_common(p_replay)

    p_suite = sub.add_parser("suite", help="whole-suite comparison")
    p_suite.add_argument(
        "-d", "--design", action="append", metavar="NAME",
        help="design point (repeatable; default: baseline + HLB-flp2)",
    )
    p_suite.add_argument(
        "--games", metavar="A,B,...", help="subset of game aliases"
    )
    _add_common(p_suite)

    p_sweep = sub.add_parser("sweep", help="evaluate a design-space grid")
    p_sweep.add_argument(
        "--grouping", nargs="+", default=["FG-xshift2", "CG-square"],
        choices=sorted(GROUPINGS),
    )
    p_sweep.add_argument(
        "--assignment", nargs="+", default=["const"],
        choices=sorted(ASSIGNMENTS),
    )
    p_sweep.add_argument(
        "--order", nargs="+", default=["zorder"], choices=sorted(TILE_ORDERS)
    )
    p_sweep.add_argument(
        "--both-architectures", action="store_true",
        help="sweep coupled AND decoupled (default: decoupled only)",
    )
    p_sweep.add_argument("--csv", action="store_true", help="emit CSV")
    p_sweep.add_argument("--games", metavar="A,B,...")
    p_sweep.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="persist traces, completed rows and a run manifest here",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="reuse rows completed by a previous run of this campaign "
             "(requires --checkpoint-dir)",
    )
    p_sweep.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="re-attempts for failures flagged transient (default 0)",
    )
    p_sweep.add_argument(
        "--budget", type=int, default=None, metavar="QUADS",
        help="kill any replay that processes more than QUADS quads",
    )
    p_sweep.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the replay fan-out (default 1: "
             "serial; results are identical either way)",
    )
    p_sweep.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task deadline for parallel workers: a task past it is "
             "killed and retried, then recorded as a failure (default: "
             "no deadline)",
    )
    p_sweep.add_argument(
        "--stream", choices=STREAM_DRIVERS, default="batch",
        help="tile dataflow for each replay (see `repro replay "
             "--help`); with --checkpoint-dir the streaming driver "
             "caches per-tile chunks so later design points skip the "
             "render; rows are bit-identical across drivers",
    )
    _add_common(p_sweep)

    p_anim = sub.add_parser("animate", help="multi-frame warm-cache run")
    p_anim.add_argument("game", choices=sorted(GAMES))
    p_anim.add_argument("--frames", type=int, default=4)
    p_anim.add_argument(
        "-d", "--design", action="append", metavar="NAME",
        help="design point (repeatable; default: baseline + HLB-flp2)",
    )
    _add_common(p_anim)

    p_lint = sub.add_parser(
        "lint", help="run the replint static checks over source paths"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is what CI gates on)",
    )
    p_lint.add_argument(
        "--select", nargs="+", metavar="RULE",
        help="run only the named rules (default: all)",
    )

    p_arch = sub.add_parser(
        "archcheck",
        help="whole-program layer-contract / call-graph / API checks",
    )
    p_arch.add_argument(
        "--src", default="src", metavar="DIR",
        help="source root to analyze (default: src)",
    )
    p_arch.add_argument(
        "--contract", default="archcontract.toml", metavar="FILE",
        help="layer contract file (default: archcontract.toml)",
    )
    p_arch.add_argument(
        "--baseline", default="archcheck-baseline.json", metavar="FILE",
        help="justified-waiver baseline (default: archcheck-baseline.json)",
    )
    p_arch.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is what CI gates on)",
    )
    p_arch.add_argument(
        "--dot", metavar="FILE",
        help="write the layer graph as Graphviz DOT ('-' for stdout)",
    )
    p_arch.add_argument(
        "--graph-json", metavar="FILE",
        help="write the full module graph as JSON ('-' for stdout)",
    )
    p_arch.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to current findings (new entries get "
             "a TODO justification that still fails the gate)",
    )

    p_fault = sub.add_parser(
        "faultcheck",
        help="whole-program exception-flow and fault-path checks",
    )
    p_fault.add_argument(
        "--src", default="src", metavar="DIR",
        help="source root to analyze (default: src)",
    )
    p_fault.add_argument(
        "--package", default="repro", metavar="NAME",
        help="top-level package under --src (default: repro)",
    )
    p_fault.add_argument(
        "--baseline", default="faultcheck-baseline.json", metavar="FILE",
        help="justified-waiver baseline "
             "(default: faultcheck-baseline.json)",
    )
    p_fault.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is what CI gates on)",
    )
    p_fault.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON report here (for CI artifacts)",
    )
    p_fault.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to current findings (new entries get "
             "a TODO justification that still fails the gate)",
    )

    p_perf = sub.add_parser(
        "perfcheck",
        help="whole-program hot-path performance checks",
    )
    p_perf.add_argument(
        "--src", default="src", metavar="DIR",
        help="source root to analyze (default: src)",
    )
    p_perf.add_argument(
        "--contract", default="perfcontract.toml", metavar="FILE",
        help="hot-path contract file (default: perfcontract.toml)",
    )
    p_perf.add_argument(
        "--baseline", default="perfcheck-baseline.json", metavar="FILE",
        help="justified-waiver baseline "
             "(default: perfcheck-baseline.json)",
    )
    p_perf.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is what CI gates on)",
    )
    p_perf.add_argument(
        "--report", metavar="FILE",
        help="also write the JSON report here (for CI artifacts)",
    )
    p_perf.add_argument(
        "--dot", metavar="FILE",
        help="write the hot-region graph as Graphviz DOT ('-' for stdout)",
    )
    p_perf.add_argument(
        "--profile-json", metavar="FILE",
        help="cross-check the contract against a benchmark profile "
             "(e.g. BENCH_replay.json)",
    )
    p_perf.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to current findings (new entries get "
             "a TODO justification that still fails the gate)",
    )

    p_check = sub.add_parser(
        "check",
        help="umbrella gate: lint + archcheck + faultcheck + perfcheck, "
             "run concurrently",
    )
    p_check.add_argument(
        "--src", default="src", metavar="DIR",
        help="source root to analyze (default: src)",
    )
    p_check.add_argument(
        "--package", default="repro", metavar="NAME",
        help="top-level package under --src (default: repro)",
    )
    p_check.add_argument(
        "--contract", default="archcontract.toml", metavar="FILE",
        help="layer contract file (default: archcontract.toml)",
    )
    p_check.add_argument(
        "--arch-baseline", default="archcheck-baseline.json",
        metavar="FILE",
        help="archcheck waiver baseline (default: archcheck-baseline.json)",
    )
    p_check.add_argument(
        "--fault-baseline", default="faultcheck-baseline.json",
        metavar="FILE",
        help="faultcheck waiver baseline "
             "(default: faultcheck-baseline.json)",
    )
    p_check.add_argument(
        "--perf-contract", default="perfcontract.toml", metavar="FILE",
        help="hot-path contract file (default: perfcontract.toml)",
    )
    p_check.add_argument(
        "--perf-baseline", default="perfcheck-baseline.json",
        metavar="FILE",
        help="perfcheck waiver baseline "
             "(default: perfcheck-baseline.json)",
    )
    p_check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format for every gate",
    )
    p_check.add_argument(
        "--report", metavar="FILE",
        help="also write the faultcheck JSON report here",
    )
    p_check.add_argument(
        "--perf-report", metavar="FILE",
        help="also write the perfcheck JSON report here",
    )

    p_sanitize = sub.add_parser(
        "sanitize", help="replay a game and check pipeline invariants"
    )
    p_sanitize.add_argument("game", choices=sorted(GAMES))
    p_sanitize.add_argument(
        "-d", "--design", action="append", metavar="NAME",
        help="design point (repeatable; default: baseline + HLB-flp2)",
    )
    _add_common(p_sanitize)

    p_chaos = sub.add_parser(
        "chaos",
        help="randomized fault-injection campaign: inject, kill, resume, "
             "and diff against an uninjected reference",
    )
    p_chaos.add_argument(
        "--trials", type=int, default=20, metavar="N",
        help="number of randomized trials (default 20)",
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="campaign seed; same seed, same plans, same verdict "
             "(default 0)",
    )
    p_chaos.add_argument(
        "-j", "--jobs", type=int, default=2, metavar="N",
        help="max worker processes a trial may use; trials alternate "
             "between serial and parallel (default 2)",
    )
    p_chaos.add_argument(
        "--games", metavar="A,B,...",
        help="game aliases for the trial sweeps (default: SWa only)",
    )
    p_chaos.add_argument(
        "--task-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-task deadline used by the trial sweeps; injected "
             "hangs sleep past it on purpose (default 5)",
    )
    p_chaos.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="transient-failure retries granted to trial sweeps "
             "(default 2; 0 would make injected transients fatal)",
    )
    p_chaos.add_argument(
        "--screen", type=_parse_screen, default=_parse_screen("128x64"),
        metavar="WxH|paper",
        help="simulated screen size for trials (default 128x64: chaos "
             "exercises infrastructure, not the timing model)",
    )
    p_chaos.add_argument(
        "--json", action="store_true", help="emit JSON instead of a table"
    )

    p_sched = sub.add_parser("schedule", help="visualize a quad schedule")
    p_sched.add_argument("--grouping", default="CG-square",
                         choices=sorted(GROUPINGS))
    p_sched.add_argument("--assignment", default="flp2",
                         choices=sorted(ASSIGNMENTS))
    p_sched.add_argument("--order", default="hilbert",
                         choices=sorted(TILE_ORDERS))
    p_sched.add_argument("--tiles", type=int, default=8,
                         help="how many tiles of the traversal to show")
    _add_common(p_sched)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "render": cmd_render,
        "replay": cmd_replay,
        "suite": cmd_suite,
        "sweep": cmd_sweep,
        "animate": cmd_animate,
        "schedule": cmd_schedule,
        "lint": cmd_lint,
        "archcheck": cmd_archcheck,
        "faultcheck": cmd_faultcheck,
        "perfcheck": cmd_perfcheck,
        "check": cmd_check,
        "sanitize": cmd_sanitize,
        "chaos": cmd_chaos,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        # Friendly one-liner instead of a traceback: bad names and bad
        # values are user input errors, not simulator crashes.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FATAL


if __name__ == "__main__":
    sys.exit(main())
