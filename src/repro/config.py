"""GPU simulation parameters (paper Table II).

The defaults reproduce Table II of the paper::

    Tech Specs            600 MHz, 1 V, 32 nm
    Screen Resolution     1960x768
    Tile Size             32x32
    Tile Traversal Order  Z-order
    Main Memory           50-100 cycles, 1 GiB
    Vertex Cache          64-B lines,  8 KiB, 4-way, 1 cycle
    Texture Caches (4x)   64-B lines, 16 KiB, 4-way, 1 cycle
    Tile Cache            64-B lines, 64 KiB, 4-way, 1 cycle
    L2 Cache              64-B lines,  1 MiB, 8-way, 12 cycles

``GPUConfig`` is the single source of truth threaded through the whole
simulator.  Scaled-down variants (for tests and fast benches) are produced
with :meth:`GPUConfig.scaled`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache size and line size must be positive")
        if self.size_bytes % self.line_bytes:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not a multiple of "
                f"line size {self.line_bytes}"
            )
        num_lines = self.size_bytes // self.line_bytes
        if self.associativity <= 0 or num_lines % self.associativity:
            raise ConfigError(
                f"{self.name}: {num_lines} lines not divisible by "
                f"associativity {self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class DRAMConfig:
    """Main-memory model (Table II: 50-100 cycles, 1 GiB)."""

    min_latency: int = 50
    max_latency: int = 100
    size_bytes: int = 1 * 1024 * MIB

    def __post_init__(self) -> None:
        if not 0 < self.min_latency <= self.max_latency:
            raise ConfigError("require 0 < min_latency <= max_latency")


@dataclass(frozen=True)
class ShaderConfig:
    """Shader-core (SC) execution model parameters.

    ``max_warps`` bounds the number of quads (warps) simultaneously in
    flight per SC — the multithreading that hides texture-miss latency.
    ``issue_rate`` is instructions issued per cycle per SC.
    """

    max_warps: int = 4
    issue_rate: int = 1
    base_shader_cycles: int = 12
    texture_issue_cycles: int = 1
    #: Extra cycles per L1 texture miss beyond the raw cache latencies:
    #: NoC round trip to the shared L2 plus texture-unit pipeline replay.
    miss_overhead_cycles: int = 24

    def __post_init__(self) -> None:
        if self.max_warps <= 0 or self.issue_rate <= 0:
            raise ConfigError("max_warps and issue_rate must be positive")
        if self.miss_overhead_cycles < 0:
            raise ConfigError("miss_overhead_cycles must be non-negative")


@dataclass(frozen=True)
class GPUConfig:
    """Full GPU configuration (paper Table II defaults)."""

    screen_width: int = 1960
    screen_height: int = 768
    tile_size: int = 32
    num_shader_cores: int = 4
    frequency_mhz: int = 600
    voltage: float = 1.0
    tech_nm: int = 32

    vertex_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("vertex", 8 * KIB)
    )
    texture_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("texture-l1", 16 * KIB)
    )
    tile_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("tile", 64 * KIB)
    )
    l2_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            "l2", 1 * MIB, associativity=8, hit_latency=12
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    shader: ShaderConfig = field(default_factory=ShaderConfig)

    # Raster-pipeline structural parameters.
    fifo_depth: int = 16
    tile_fetcher_cycles_per_primitive: int = 2
    raster_quads_per_cycle: int = 4
    stage_unit_quads_per_cycle: int = 1
    #: Color Buffer -> Frame Buffer flush bandwidth.  The baseline
    #: flushes the whole tile before Blending may start the next tile;
    #: the decoupled architecture flushes each bank independently.
    flush_bytes_per_cycle: int = 16
    color_bytes_per_pixel: int = 4

    def __post_init__(self) -> None:
        if self.tile_size <= 0 or self.tile_size % 2:
            raise ConfigError("tile_size must be a positive even number")
        if self.num_shader_cores not in (1, 2, 4, 8, 16):
            raise ConfigError("num_shader_cores must be a power of two <= 16")
        if self.screen_width <= 0 or self.screen_height <= 0:
            raise ConfigError("screen dimensions must be positive")

    # -- derived geometry ---------------------------------------------------

    @property
    def tiles_x(self) -> int:
        """Number of tile columns (partial edge tiles round up)."""
        return -(-self.screen_width // self.tile_size)

    @property
    def tiles_y(self) -> int:
        """Number of tile rows (partial edge tiles round up)."""
        return -(-self.screen_height // self.tile_size)

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    @property
    def quads_per_tile_side(self) -> int:
        """Quads along one side of a tile (a quad covers 2x2 pixels)."""
        return self.tile_size // 2

    @property
    def quads_per_tile(self) -> int:
        return self.quads_per_tile_side ** 2

    @property
    def cycle_time_ns(self) -> float:
        return 1000.0 / self.frequency_mhz

    # -- variants ------------------------------------------------------------

    def scaled(self, width: int, height: int, **overrides) -> "GPUConfig":
        """Return a copy with a different screen size (for fast tests)."""
        return dataclasses.replace(
            self, screen_width=width, screen_height=height, **overrides
        )

    def with_upper_bound_cache(self) -> "GPUConfig":
        """Single-SC configuration with one 4x-sized L1 texture cache.

        This is the paper's conservative upper bound for Figure 16: one
        shader core whose private L1 has the aggregate capacity of the
        four baseline L1s, eliminating all replication.
        """
        big_l1 = dataclasses.replace(
            self.texture_cache,
            size_bytes=self.texture_cache.size_bytes * self.num_shader_cores,
        )
        return dataclasses.replace(
            self, num_shader_cores=1, texture_cache=big_l1
        )


#: The exact configuration of paper Table II.
PAPER_CONFIG = GPUConfig()

#: Small configuration used by the test-suite and quick benches.
TEST_CONFIG = GPUConfig(screen_width=512, screen_height=256)
