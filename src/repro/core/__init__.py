"""DTexL core: the paper's primary contribution.

Quad groupings (Figure 6), tile orders (Figure 7), subtile-to-SC
assignments (Figure 8), the quad scheduler that combines them, and the
``DTexLConfig`` facade with the paper's named configurations.
"""

from repro.core.tile_order import (
    TILE_ORDERS,
    hilbert_order,
    hilbert_rect_order,
    scanline_order,
    s_order,
    tile_order,
    z_order,
)
from repro.core.quad_grouping import (
    FINE_GRAINED,
    COARSE_GRAINED,
    GROUPINGS,
    QuadGrouping,
    SubtileLayout,
    get_grouping,
)
from repro.core.subtile_assignment import (
    ASSIGNMENTS,
    SubtileAssignment,
    get_assignment,
)
from repro.core.scheduler import QuadScheduler
from repro.core.dtexl import (
    BASELINE,
    DTEXL_BEST,
    DTexLConfig,
    PAPER_CONFIGURATIONS,
)

__all__ = [
    "tile_order", "scanline_order", "z_order", "hilbert_order",
    "hilbert_rect_order", "s_order", "TILE_ORDERS",
    "QuadGrouping", "SubtileLayout", "get_grouping",
    "FINE_GRAINED", "COARSE_GRAINED", "GROUPINGS",
    "SubtileAssignment", "get_assignment", "ASSIGNMENTS",
    "QuadScheduler",
    "DTexLConfig", "BASELINE", "DTEXL_BEST", "PAPER_CONFIGURATIONS",
]
