"""Schedule statistics: shared-edge capture and SC fairness.

Quantifies what Figure 8 shows qualitatively: for a given scheduler, how
often do the subtiles on the shared edge of two consecutive tiles land
on the *same* shader core (edge capture — the locality win), and how
evenly is that privilege spread over the cores (fairness — the
load-balance requirement the flip variants exist for)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.quad_grouping import NUM_SLOTS
from repro.core.scheduler import QuadScheduler


@dataclass(frozen=True)
class ScheduleStats:
    """Edge-capture and fairness summary of one schedule."""

    #: Consecutive tile pairs that share an edge.
    adjacent_steps: int
    #: Edge-adjacent subtile pairs whose SCs match (summed over steps).
    captured_edges: int
    #: Edge-adjacent subtile pairs in total.
    total_edges: int
    #: Per-SC counts of captured edges.
    per_core_captures: Tuple[int, ...]

    @property
    def capture_rate(self) -> float:
        """Fraction of shared-edge subtile pairs kept on one SC."""
        return self.captured_edges / self.total_edges if self.total_edges else 0.0

    @property
    def fairness(self) -> float:
        """Jain's fairness index of the per-SC capture counts (1 = fair)."""
        counts = self.per_core_captures
        total = sum(counts)
        if total == 0:
            return 1.0
        squares = sum(c * c for c in counts)
        return total * total / (len(counts) * squares)


def _boundary_slot_pairs(
    scheduler: QuadScheduler, dx: int, dy: int
) -> List[Tuple[int, int]]:
    """Slot pairs facing each other across the shared edge.

    For a step of (dx, dy), returns (slot_in_prev, slot_in_cur) for each
    quad position on the shared edge.
    """
    side = scheduler.config.quads_per_tile_side
    pairs = []
    for k in range(side):
        if dx == 1:   # moving right: prev's right column, cur's left
            pairs.append((scheduler.slot_of(side - 1, k), scheduler.slot_of(0, k)))
        elif dx == -1:
            pairs.append((scheduler.slot_of(0, k), scheduler.slot_of(side - 1, k)))
        elif dy == 1:  # moving down: prev's bottom row, cur's top
            pairs.append((scheduler.slot_of(k, side - 1), scheduler.slot_of(k, 0)))
        else:
            pairs.append((scheduler.slot_of(k, 0), scheduler.slot_of(k, side - 1)))
    return pairs


def schedule_stats(scheduler: QuadScheduler) -> ScheduleStats:
    """Measure edge capture and fairness over the whole traversal."""
    adjacent_steps = 0
    captured = 0
    total = 0
    per_core = [0] * NUM_SLOTS
    tiles = scheduler.tiles
    for step in range(1, len(tiles)):
        dx = tiles[step][0] - tiles[step - 1][0]
        dy = tiles[step][1] - tiles[step - 1][1]
        if abs(dx) + abs(dy) != 1:
            continue
        adjacent_steps += 1
        prev_perm = scheduler.permutation_at(step - 1)
        cur_perm = scheduler.permutation_at(step)
        # Count unique facing subtile pairs (not per quad) so strips and
        # quadrants are comparable.
        seen = set()
        for prev_slot, cur_slot in _boundary_slot_pairs(scheduler, dx, dy):
            key = (prev_slot, cur_slot)
            if key in seen:
                continue
            seen.add(key)
            total += 1
            if prev_perm[prev_slot] == cur_perm[cur_slot]:
                captured += 1
                per_core[cur_perm[cur_slot]] += 1
    return ScheduleStats(
        adjacent_steps=adjacent_steps,
        captured_edges=captured,
        total_edges=total,
        per_core_captures=tuple(per_core),
    )


def compare_schedules(
    schedulers: Dict[str, QuadScheduler],
) -> Dict[str, ScheduleStats]:
    """Stats for several named schedules (e.g. the Figure 8 mappings)."""
    return {name: schedule_stats(s) for name, s in schedulers.items()}
