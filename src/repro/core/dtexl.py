"""DTexL configurations: the named design points the paper evaluates.

A :class:`DTexLConfig` names one point in the design space — a quad
grouping x subtile assignment x tile order x barrier architecture.
:data:`PAPER_CONFIGURATIONS` enumerates every point the evaluation
section uses, keyed by the paper's own labels (Figures 8, 16, 17, 18).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import GPUConfig
from repro.core.quad_grouping import QuadGrouping, get_grouping
from repro.core.scheduler import QuadScheduler
from repro.core.subtile_assignment import SubtileAssignment, get_assignment


@dataclass(frozen=True)
class DTexLConfig:
    """One evaluated design point."""

    name: str
    grouping: str = "FG-xshift2"
    assignment: str = "const"
    order: str = "zorder"
    decoupled: bool = False
    #: Single-SC with a 4x L1: the paper's Figure 16 upper bound.
    upper_bound: bool = False

    def build_scheduler(self, config: GPUConfig) -> QuadScheduler:
        """Instantiate the quad scheduler for this design point."""
        return QuadScheduler(
            config=config,
            grouping=self.resolve_grouping(),
            assignment=self.resolve_assignment(),
            order_name=self.order,
        )

    def resolve_grouping(self) -> QuadGrouping:
        return get_grouping(self.grouping)

    def resolve_assignment(self) -> SubtileAssignment:
        return get_assignment(self.assignment)

    def effective_gpu_config(self, config: GPUConfig) -> GPUConfig:
        """The GPU config this design point runs on (handles upper bound)."""
        if self.upper_bound:
            return config.with_upper_bound_cache()
        return config


#: The paper's baseline: fine-grained grouping, Z-order, coupled barriers.
BASELINE = DTexLConfig(name="baseline")

#: The paper's best DTexL point (§V-C2): CG-square + Hilbert + flp2,
#: decoupled-barrier architecture.
DTEXL_BEST = DTexLConfig(
    name="DTexL(HLB-flp2)",
    grouping="CG-square",
    assignment="flp2",
    order="hilbert",
    decoupled=True,
)

#: Every named configuration used in the evaluation.
PAPER_CONFIGURATIONS: Dict[str, DTexLConfig] = {
    cfg.name: cfg
    for cfg in [
        BASELINE,
        # Figure 13: coarse groupings without decoupling.
        DTexLConfig(name="CG-square-coupled", grouping="CG-square"),
        DTexLConfig(name="CG-yrect-coupled", grouping="CG-yrect"),
        # Figure 17: fine-grained with decoupling only.
        DTexLConfig(name="FG-xshift2-decoupled", decoupled=True),
        # Figure 8 / 16: the eight subtile mappings (all decoupled, all
        # CG; Sorder rows use CG-yrect per the paper, the rest CG-square).
        DTexLConfig(
            name="Zorder-const", grouping="CG-square",
            assignment="const", order="zorder", decoupled=True,
        ),
        DTexLConfig(
            name="Zorder-flp", grouping="CG-square",
            assignment="flp1", order="zorder", decoupled=True,
        ),
        DTexLConfig(
            name="HLB-const", grouping="CG-square",
            assignment="const", order="hilbert", decoupled=True,
        ),
        DTexLConfig(
            name="HLB-flp1", grouping="CG-square",
            assignment="flp1", order="hilbert", decoupled=True,
        ),
        DTexLConfig(
            name="HLB-flp2", grouping="CG-square",
            assignment="flp2", order="hilbert", decoupled=True,
        ),
        DTexLConfig(
            name="HLB-flp3", grouping="CG-square",
            assignment="flp3", order="hilbert", decoupled=True,
        ),
        DTexLConfig(
            name="Sorder-const", grouping="CG-yrect",
            assignment="const", order="sorder", decoupled=True,
        ),
        DTexLConfig(
            name="Sorder-flp", grouping="CG-yrect",
            assignment="flp1", order="sorder", decoupled=True,
        ),
        # Figure 16's conservative upper bound.
        DTexLConfig(
            name="upper-bound", grouping="CG-square",
            order="zorder", decoupled=True, upper_bound=True,
        ),
    ]
}

#: The eight Figure-8 subtile mappings, in presentation order.
FIG8_MAPPING_NAMES = [
    "Zorder-const", "Zorder-flp",
    "HLB-const", "HLB-flp1", "HLB-flp2", "HLB-flp3",
    "Sorder-const", "Sorder-flp",
]
