"""Quad groupings: how a tile's quads are partitioned into Subtiles.

Paper Figure 6 and §III-B.  A grouping maps the quad coordinates within a
tile, ``(qx, qy)`` with ``0 <= qx, qy < tile_size/2``, to one of four
*subtile slots*.  Each slot is bound to one Z-Buffer/Color-Buffer bank and
— through the subtile assignment of Figure 8 — to one shader core.

Fine-grained (FG) groupings interleave adjacent quads across slots for
load balance; coarse-grained (CG) groupings keep adjacent quads together
for texture locality:

* ``FG-check``   (6a) 2x2 checkerboard — no 4-neighbour shares a slot.
* ``FG-check2``  (6b) checkerboard with swapped odd rows — same property.
* ``FG-diag``    (6c) anti-diagonal stripes — at most 2 diagonal
  neighbours share a slot.
* ``FG-adiag``   (6d) main-diagonal stripes — same, other diagonal.
* ``FG-xshift2`` (6e) horizontal pairs, shifted by 2 each row — at most
  2 horizontal neighbours share a slot.  **The paper's baseline.**
* ``FG-yshift2`` (6f) vertical pairs, shifted by 2 each column.
* ``CG-xrect``   (6g) four vertical strips (rectangles arrayed along x).
* ``CG-yrect``   (6h) four horizontal strips (rectangles arrayed along y).
* ``CG-tri``     (6i) four triangles meeting at the tile centre.
* ``CG-square``  (6j) four square quadrants.  **The paper's CG choice.**
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List

from repro.errors import ConfigError, UnknownNameError

NUM_SLOTS = 4


class SubtileLayout(Enum):
    """Spatial arrangement of the four subtile slots within a tile.

    The subtile assignment policies (Figure 8) need to know where each
    slot sits to flip along the shared edge of consecutive tiles.
    """

    #: 2x2 quadrants: slot = (col) + 2*(row).
    SQUARE = "square"
    #: 4 slots side by side along x (vertical strips).
    XSTRIPS = "xstrips"
    #: 4 slots stacked along y (horizontal strips).
    YSTRIPS = "ystrips"
    #: Fine-grained: slots have no coherent position; flips are no-ops.
    INTERLEAVED = "interleaved"


@dataclass(frozen=True)
class QuadGrouping:
    """A named mapping from in-tile quad coordinates to subtile slots."""

    name: str
    fine_grained: bool
    layout: SubtileLayout
    _fn: Callable[[int, int, int], int]

    def slot(self, qx: int, qy: int, quads_per_side: int) -> int:
        """Subtile slot (0..3) of quad ``(qx, qy)`` in a tile.

        ``quads_per_side`` is tile_size/2 (16 for 32x32-pixel tiles).
        """
        if not (0 <= qx < quads_per_side and 0 <= qy < quads_per_side):
            raise ConfigError(
                f"quad ({qx}, {qy}) outside tile of side {quads_per_side}"
            )
        return self._fn(qx, qy, quads_per_side)

    def slot_map(self, quads_per_side: int) -> List[List[int]]:
        """Full slot matrix (rows indexed by qy) for inspection/plots."""
        return [
            [self._fn(qx, qy, quads_per_side) for qx in range(quads_per_side)]
            for qy in range(quads_per_side)
        ]


# -- fine-grained mappings (Figure 6 a-f) --------------------------------------

def _fg_check(qx: int, qy: int, _side: int) -> int:
    return (qx % 2) + 2 * (qy % 2)


def _fg_check2(qx: int, qy: int, _side: int) -> int:
    base = qx % 2
    if qy % 2:
        return 3 - base
    return base


def _fg_diag(qx: int, qy: int, _side: int) -> int:
    return (qx + qy) % 4


def _fg_adiag(qx: int, qy: int, _side: int) -> int:
    return (qx - qy) % 4


def _fg_xshift2(qx: int, qy: int, _side: int) -> int:
    # Horizontal pairs of quads; the 8-quad pattern shifts 2 per row.
    return (((qx + 2 * qy) % 8) // 2)


def _fg_yshift2(qx: int, qy: int, _side: int) -> int:
    return (((qy + 2 * qx) % 8) // 2)


# -- coarse-grained mappings (Figure 6 g-j) ------------------------------------

def _cg_xrect(qx: int, qy: int, side: int) -> int:
    return min(qx * NUM_SLOTS // side, NUM_SLOTS - 1)


def _cg_yrect(qx: int, qy: int, side: int) -> int:
    return min(qy * NUM_SLOTS // side, NUM_SLOTS - 1)


def _cg_square(qx: int, qy: int, side: int) -> int:
    half = side // 2
    return (1 if qx >= half else 0) + (2 if qy >= half else 0)


def _cg_tri(qx: int, qy: int, side: int) -> int:
    """Four triangles meeting at the tile centre: N=0, E=1, W=2, S=3.

    A quad belongs to the triangle whose tile edge it is nearest to;
    quads equidistant from two edges (on the tile diagonals) alternate
    between the two candidates so all four subtiles hold exactly
    ``side*side/4`` quads.
    """
    mx = min(qx, side - 1 - qx)  # distance to nearest vertical edge
    my = min(qy, side - 1 - qy)  # distance to nearest horizontal edge
    if my < mx:
        return 0 if qy < side // 2 else 3  # north / south
    if mx < my:
        return 2 if qx < side // 2 else 1  # west / east
    # Diagonal tie: alternate by ring index to keep the split exact.
    if mx % 2 == 0:
        return 0 if qy < side // 2 else 3
    return 2 if qx < side // 2 else 1


FINE_GRAINED: Dict[str, QuadGrouping] = {
    g.name: g
    for g in [
        QuadGrouping("FG-check", True, SubtileLayout.INTERLEAVED, _fg_check),
        QuadGrouping("FG-check2", True, SubtileLayout.INTERLEAVED, _fg_check2),
        QuadGrouping("FG-diag", True, SubtileLayout.INTERLEAVED, _fg_diag),
        QuadGrouping("FG-adiag", True, SubtileLayout.INTERLEAVED, _fg_adiag),
        QuadGrouping("FG-xshift2", True, SubtileLayout.INTERLEAVED, _fg_xshift2),
        QuadGrouping("FG-yshift2", True, SubtileLayout.INTERLEAVED, _fg_yshift2),
    ]
}

COARSE_GRAINED: Dict[str, QuadGrouping] = {
    g.name: g
    for g in [
        QuadGrouping("CG-xrect", False, SubtileLayout.XSTRIPS, _cg_xrect),
        QuadGrouping("CG-yrect", False, SubtileLayout.YSTRIPS, _cg_yrect),
        QuadGrouping("CG-tri", False, SubtileLayout.SQUARE, _cg_tri),
        QuadGrouping("CG-square", False, SubtileLayout.SQUARE, _cg_square),
    ]
}

GROUPINGS: Dict[str, QuadGrouping] = {**FINE_GRAINED, **COARSE_GRAINED}


def get_grouping(name: str) -> QuadGrouping:
    """Look up a grouping by its Figure 6 name."""
    try:
        return GROUPINGS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown quad grouping {name!r}; choose from {sorted(GROUPINGS)}"
        ) from None
