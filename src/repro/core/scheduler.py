"""The quad scheduler: grouping + assignment + tile order combined.

This is the hardware block DTexL replaces: it decides, for every quad of
every tile, which Z-Buffer/Color-Buffer bank (subtile slot) and which
shader core processes it.  The decision is static per frame — exactly as
in the paper, where the mapping is a function of tile-order step and quad
coordinates only, never of runtime load.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config import GPUConfig
from repro.core.quad_grouping import QuadGrouping
from repro.core.subtile_assignment import Permutation, SubtileAssignment
from repro.core.tile_order import TileCoord, tile_order


class QuadScheduler:
    """Static quad-to-shader-core schedule for one frame.

    Parameters
    ----------
    config:
        GPU geometry (tile grid, quads per tile).
    grouping:
        The Figure 6 quad grouping (quad -> subtile slot).
    assignment:
        The Figure 8 binding policy (slot -> SC per tile step).
    order_name:
        The Figure 7 tile order name.
    """

    def __init__(
        self,
        config: GPUConfig,
        grouping: QuadGrouping,
        assignment: SubtileAssignment,
        order_name: str,
    ):
        self.config = config
        self.grouping = grouping
        self.assignment = assignment
        self.order_name = order_name

        self.tiles: List[TileCoord] = tile_order(
            order_name, config.tiles_x, config.tiles_y
        )
        self._step_of_tile = {tile: i for i, tile in enumerate(self.tiles)}
        self._perms: List[Permutation] = assignment.permutation_sequence(
            self.tiles, grouping.layout
        )
        side = config.quads_per_tile_side
        self._slot_map: List[List[int]] = grouping.slot_map(side)
        #: Row-major flattening of the slot map, for the replay hot path.
        self._slot_flat: Tuple[int, ...] = tuple(
            slot for row in self._slot_map for slot in row
        )
        # core_lut results keyed by (permutation, n_cores): the traversal
        # revisits a handful of distinct permutations, so the per-step
        # quad -> core tables collapse to a few shared tuples.
        self._lut_cache: dict = {}

    # -- queries -------------------------------------------------------------

    @property
    def num_steps(self) -> int:
        return len(self.tiles)

    def step_of(self, tile: TileCoord) -> int:
        """Position of ``tile`` in the traversal."""
        return self._step_of_tile[tile]

    def slot_of(self, qx: int, qy: int) -> int:
        """Subtile slot of in-tile quad ``(qx, qy)``."""
        return self._slot_map[qy][qx]

    def permutation_at(self, step: int) -> Permutation:
        """slot -> SC binding at traversal position ``step``."""
        return self._perms[step]

    def core_lut(self, step: int, n_cores: int) -> Tuple[int, ...]:
        """Flat quad -> SC table for one traversal step.

        ``lut[qy * side + qx]`` is the shader core (modulo ``n_cores``,
        for the single-SC upper-bound configuration) executing in-tile
        quad ``(qx, qy)`` — the whole per-quad schedule of the step as
        one precomputed tuple, replacing a ``perm[slot_of(qx, qy)]``
        call per quad.
        """
        perm = self._perms[step]
        key = (perm, n_cores)
        lut = self._lut_cache.get(key)
        if lut is None:
            cores = [core % n_cores for core in perm]
            lut = tuple(cores[slot] for slot in self._slot_flat)
            self._lut_cache[key] = lut
        return lut

    def core_of(self, step: int, qx: int, qy: int) -> int:
        """Shader core executing quad ``(qx, qy)`` of the step-th tile."""
        return self._perms[step][self._slot_map[qy][qx]]

    def core_map(self, step: int) -> List[List[int]]:
        """Full quad -> SC matrix for the step-th tile (for plots/tests)."""
        perm = self._perms[step]
        return [[perm[slot] for slot in row] for row in self._slot_map]

    def quad_counts_per_core(
        self, step: int, occupied: Sequence[Tuple[int, int]]
    ) -> List[int]:
        """Histogram of shaded quads per SC for one tile.

        ``occupied`` lists the (qx, qy) of quads that actually produced
        work (after rasterization and Early-Z).
        """
        counts = [0] * self.config.num_shader_cores
        perm = self._perms[step]
        for qx, qy in occupied:
            counts[perm[self._slot_map[qy][qx]]] += 1
        return counts
