"""Subtile-to-shader-core assignment policies (paper Figure 8, §III-D).

As the Tile Fetcher walks the tile order, each tile's four subtile slots
must be bound to the four shader cores.  A constant binding wastes the
texture locality across shared tile edges; the *flip* policies re-bind
the slots so that the subtiles that share an edge with the previous tile
land on the same SC — and the fairer variants rotate which SC gets the
shared edge so no core is favoured over the frame.

Policies:

* ``const`` — identity binding for every tile (Fig 8a/8c/8g).
* ``flp1``  — flip the binding along the shared edge of each pair of
  edge-adjacent consecutive tiles (Fig 8b/8d).  One SC keeps the edge
  advantage for the whole frame.
* ``flp2``  — ``flp1`` plus, when stepping from an even to an odd tile,
  the two non-sharing subtiles also swap (Fig 8e).  Fair to all SCs.
  **The paper's best-performing assignment (HLB-flp2).**
* ``flp3``  — ``flp1`` plus a 180-degree flip of all four subtiles every
  16 tiles (Fig 8f).  Also fair over the frame.

A policy is evaluated against a :class:`~repro.core.quad_grouping.SubtileLayout`
so flips know where the slots physically sit; for fine-grained
(interleaved) groupings flips are meaningless and every policy collapses
to ``const``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.quad_grouping import NUM_SLOTS, SubtileLayout
from repro.core.tile_order import TileCoord
from repro.errors import ConfigError, UnknownNameError

Permutation = Tuple[int, ...]  # perm[slot] = shader core

IDENTITY: Permutation = tuple(range(NUM_SLOTS))

#: Grid position of each slot per layout: slot -> (px, py), plus extent.
_LAYOUT_POSITIONS: Dict[SubtileLayout, Tuple[Dict[int, Tuple[int, int]], Tuple[int, int]]] = {
    SubtileLayout.SQUARE: (
        {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (1, 1)}, (2, 2)
    ),
    SubtileLayout.XSTRIPS: ({s: (s, 0) for s in range(4)}, (4, 1)),
    SubtileLayout.YSTRIPS: ({s: (0, s) for s in range(4)}, (1, 4)),
}

#: Period of flp3's full flip, from the paper ("every 16 tiles").
FLP3_PERIOD = 16

VALID_POLICIES = ("const", "flp1", "flp2", "flp3")


class _SlotGrid:
    """Mutable position -> SC mapping used to apply flips."""

    def __init__(self, layout: SubtileLayout):
        positions, extent = _LAYOUT_POSITIONS[layout]
        self.positions = positions
        self.extent = extent
        # Start with slot s on core s.
        self.cores: Dict[Tuple[int, int], int] = {
            pos: slot for slot, pos in positions.items()
        }

    def flip_x(self) -> None:
        ex, _ = self.extent
        if ex == 1:
            return
        self.cores = {
            (ex - 1 - x, y): sc for (x, y), sc in self.cores.items()
        }

    def flip_y(self) -> None:
        _, ey = self.extent
        if ey == 1:
            return
        self.cores = {
            (x, ey - 1 - y): sc for (x, y), sc in self.cores.items()
        }

    def swap_far_pair(self, dx: int, dy: int) -> None:
        """Swap the two slots farthest from the shared edge (flp2).

        Only meaningful for the SQUARE layout; strips have no
        perpendicular pair to swap.
        """
        ex, ey = self.extent
        if (ex, ey) != (2, 2):
            return
        if dx:
            # Shared edge is vertical; far column is the one the step
            # points away from in the new tile.
            far_x = ex - 1 if dx > 0 else 0
            a, b = (far_x, 0), (far_x, 1)
        elif dy:
            far_y = ey - 1 if dy > 0 else 0
            a, b = (0, far_y), (1, far_y)
        else:
            return
        self.cores[a], self.cores[b] = self.cores[b], self.cores[a]

    def permutation(self) -> Permutation:
        return tuple(
            self.cores[self.positions[slot]] for slot in range(NUM_SLOTS)
        )


@dataclass(frozen=True)
class SubtileAssignment:
    """A named subtile-to-SC binding policy."""

    name: str
    policy: str

    def __post_init__(self) -> None:
        if self.policy not in VALID_POLICIES:
            raise ConfigError(
                f"policy must be one of {VALID_POLICIES}, got {self.policy!r}"
            )

    def permutation_sequence(
        self, tiles: Sequence[TileCoord], layout: SubtileLayout
    ) -> List[Permutation]:
        """The slot->SC permutation for each step of the tile order.

        ``perm[i][slot]`` is the shader core that executes ``slot`` of the
        i-th tile in the traversal.
        """
        if layout is SubtileLayout.INTERLEAVED or self.policy == "const":
            return [IDENTITY] * len(tiles)

        grid = _SlotGrid(layout)
        perms: List[Permutation] = []
        for step, tile in enumerate(tiles):
            if step > 0:
                prev = tiles[step - 1]
                dx, dy = tile[0] - prev[0], tile[1] - prev[1]
                edge_adjacent = abs(dx) + abs(dy) == 1
                if edge_adjacent:
                    if dx:
                        grid.flip_x()
                    else:
                        grid.flip_y()
                    if self.policy == "flp2" and step % 2 == 0:
                        # Stepping from an even tile (1-based: tile
                        # number ``step``) to an odd one.
                        grid.swap_far_pair(dx, dy)
                if self.policy == "flp3" and step % FLP3_PERIOD == 0:
                    grid.flip_x()
                    grid.flip_y()
            perms.append(grid.permutation())
        return perms


ASSIGNMENTS: Dict[str, SubtileAssignment] = {
    a.name: a
    for a in [
        SubtileAssignment("const", "const"),
        SubtileAssignment("flp1", "flp1"),
        SubtileAssignment("flp2", "flp2"),
        SubtileAssignment("flp3", "flp3"),
    ]
}


def get_assignment(name: str) -> SubtileAssignment:
    """Look up an assignment policy by name."""
    try:
        return ASSIGNMENTS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown assignment {name!r}; choose from {sorted(ASSIGNMENTS)}"
        ) from None
