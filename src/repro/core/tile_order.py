"""Tile traversal orders (paper Figure 7 and §III-C).

A tile order is the sequence in which the Tile Fetcher feeds tiles to the
Raster Pipeline.  Tiles are independent, so any permutation is legal; the
order reorders the texture access stream at tile granularity and is one
of DTexL's two levers on locality.

Orders provided:

* ``scanline`` — row-major.
* ``zorder``   — Morton order (the baseline's traversal, Table II).
* ``hilbert``  — the paper's rect-adapted Hilbert: a Hilbert curve on
  8x8-tile square sub-frames, sub-frames traversed boustrophedonically.
* ``sorder``   — boustrophedon (serpentine) traversal, column-major, so
  consecutive tiles always share an edge.

All functions return a list of ``(tx, ty)`` tile coordinates covering the
``tiles_x`` x ``tiles_y`` grid exactly once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import ConfigError, UnknownNameError

TileCoord = Tuple[int, int]

#: Side (in tiles) of the square sub-frames the rect-adapted Hilbert uses.
HILBERT_SUBFRAME = 8


def _validate(tiles_x: int, tiles_y: int) -> None:
    if tiles_x <= 0 or tiles_y <= 0:
        raise ConfigError("tile grid dimensions must be positive")


def scanline_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Row-major traversal."""
    _validate(tiles_x, tiles_y)
    return [(tx, ty) for ty in range(tiles_y) for tx in range(tiles_x)]


def s_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Boustrophedon traversal: down one column, up the next.

    Every pair of consecutive tiles shares an edge, which maximises the
    opportunities for shared-edge subtile assignment (Fig 8(g)/(h)).
    """
    _validate(tiles_x, tiles_y)
    out: List[TileCoord] = []
    for tx in range(tiles_x):
        ys = range(tiles_y) if tx % 2 == 0 else range(tiles_y - 1, -1, -1)
        out.extend((tx, ty) for ty in ys)
    return out


def z_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Morton (Z) order, skipping codes that fall outside the grid."""
    _validate(tiles_x, tiles_y)
    side = 1
    while side < max(tiles_x, tiles_y):
        side *= 2
    out: List[TileCoord] = []
    for code in range(side * side):
        x = _compact_bits(code)
        y = _compact_bits(code >> 1)
        if x < tiles_x and y < tiles_y:
            out.append((x, y))
    return out


def _compact_bits(n: int) -> int:
    """Extract the even-position bits of n (inverse of bit interleave)."""
    n &= 0x5555555555555555
    n = (n ^ (n >> 1)) & 0x3333333333333333
    n = (n ^ (n >> 2)) & 0x0F0F0F0F0F0F0F0F
    n = (n ^ (n >> 4)) & 0x00FF00FF00FF00FF
    n = (n ^ (n >> 8)) & 0x0000FFFF0000FFFF
    n = (n ^ (n >> 16)) & 0xFFFFFFFF
    return n


def _hilbert_d2xy(order: int, d: int) -> TileCoord:
    """Point at distance ``d`` along a Hilbert curve of 2^order x 2^order."""
    x = y = 0
    t = d
    s = 1
    n = 1 << order
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_order(tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Plain Hilbert order over the bounding square, clipped to the grid."""
    _validate(tiles_x, tiles_y)
    order = 0
    while (1 << order) < max(tiles_x, tiles_y):
        order += 1
    out: List[TileCoord] = []
    for d in range(1 << (2 * order)):
        x, y = _hilbert_d2xy(order, d)
        if x < tiles_x and y < tiles_y:
            out.append((x, y))
    return out


def hilbert_rect_order(
    tiles_x: int, tiles_y: int, subframe: int = HILBERT_SUBFRAME
) -> List[TileCoord]:
    """The paper's rectangle-adapted Hilbert order (§III-C).

    "We apply the Hilbert order on a square sub-frame with 8x8 tiles and
    then traverse all the sub-frames in the frame boustrophedonically."
    Sub-frames on the right/bottom edge may be partial; out-of-range
    positions are skipped.
    """
    _validate(tiles_x, tiles_y)
    if subframe <= 0 or subframe & (subframe - 1):
        raise ConfigError("subframe side must be a positive power of two")
    order = subframe.bit_length() - 1
    curve = [_hilbert_d2xy(order, d) for d in range(subframe * subframe)]
    frames_x = -(-tiles_x // subframe)
    frames_y = -(-tiles_y // subframe)
    out: List[TileCoord] = []
    for fy in range(frames_y):
        xs = range(frames_x) if fy % 2 == 0 else range(frames_x - 1, -1, -1)
        for fx in xs:
            base_x, base_y = fx * subframe, fy * subframe
            for cx, cy in curve:
                tx, ty = base_x + cx, base_y + cy
                if tx < tiles_x and ty < tiles_y:
                    out.append((tx, ty))
    return out


TILE_ORDERS: Dict[str, Callable[[int, int], List[TileCoord]]] = {
    "scanline": scanline_order,
    "zorder": z_order,
    "hilbert": hilbert_rect_order,
    "hilbert-square": hilbert_order,
    "sorder": s_order,
}


def tile_order(name: str, tiles_x: int, tiles_y: int) -> List[TileCoord]:
    """Look up a tile order by name and generate it for the given grid."""
    try:
        fn = TILE_ORDERS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown tile order {name!r}; choose from {sorted(TILE_ORDERS)}"
        ) from None
    return fn(tiles_x, tiles_y)
