"""Typed error taxonomy of the simulator.

Every failure the harness can isolate, retry or report derives from
:class:`ReproError`, so callers never have to catch bare ``ValueError``/
``KeyError`` and guess whether the problem was an invalid configuration,
a broken workload, a corrupted cached trace or a runaway replay.

The hierarchy::

    ReproError
    ├── ConfigError            invalid GPU / design-point parameters
    │   └── UnknownNameError       a registry lookup (grouping / tile
    │                              order / assignment) that does not exist
    ├── WorkloadError          a scene or recipe cannot be built
    │   └── UnknownWorkloadError   a game alias that does not exist
    ├── AnalysisError          a metric cannot be computed from the
    │                          given results (empty/degenerate inputs)
    ├── CheckpointError        a checkpoint-store operation failed; the
    │   │                      sweep treats it as a cache miss (re-render)
    │   └── TraceIntegrityError    a checkpointed trace failed verification
    ├── InvariantViolationError  a pipeline invariant broke mid-flight
    │                            (quad conservation, counter consistency,
    │                            barrier ordering — see the sanitizer)
    ├── WorkerCrashError       a sweep worker process died (transient:
    │                          the respawned pool may succeed)
    ├── TaskTimeoutError       a sweep task blew its per-task deadline
    │                          (transient: the retried task may finish)
    └── ReplayError            pass 2 cannot produce a result
        ├── BudgetExceededError    a replay blew its quad/cycle budget
        └── InjectedFaultError     a failure injected by an armed
                                   FaultPlan (sim.faults; transient)

For backwards compatibility with callers (and the existing test-suite)
that predate the taxonomy, :class:`ConfigError` and
:class:`WorkloadError` are also ``ValueError`` subclasses and
:class:`UnknownWorkloadError` is additionally a ``KeyError``.

Errors carry a ``transient`` flag: the sweep's retry policy re-attempts
only failures marked transient (e.g. a flaky I/O layer under a
checkpoint store), never deterministic ones — retrying a deterministic
crash would just triple a campaign's wall time.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of every simulator-raised failure."""

    #: Whether a retry has any chance of succeeding.  Class-level
    #: default; individual instances may override via the constructor.
    transient: bool = False

    def __init__(self, *args, transient: Optional[bool] = None):
        super().__init__(*args)
        if transient is not None:
            self.transient = transient


class ConfigError(ReproError, ValueError):
    """An invalid GPU configuration or design-point parameter."""


class UnknownNameError(ConfigError, KeyError):
    """A registry name (grouping, tile order, assignment) that does not exist."""

    # KeyError.__str__ repr()s the first argument, which turns sentence
    # messages into quoted blobs; plain Exception formatting reads better.
    __str__ = Exception.__str__


class WorkloadError(ReproError, ValueError):
    """A workload (scene recipe, texture atlas, animation) cannot be built."""


class UnknownWorkloadError(WorkloadError, KeyError):
    """A game alias or workload name that does not exist."""

    # KeyError.__str__ repr()s the first argument, which turns sentence
    # messages into quoted blobs; plain Exception formatting reads better.
    __str__ = Exception.__str__


class AnalysisError(ReproError, ValueError):
    """A metric cannot be computed from the given results."""


class CheckpointError(ReproError):
    """A checkpoint-store operation failed (unreadable, corrupt, torn).

    Consumers treat this as a *cache miss*: the checkpoint is discarded
    and the underlying artifact is recomputed, never trusted.
    """


class TraceIntegrityError(CheckpointError):
    """A checkpointed frame trace failed hash or structural verification."""


class InvariantViolationError(ReproError):
    """A structural invariant of the decoupled pipeline was violated.

    Raised by the :class:`~repro.analysis.lint.sanitizer.TraceSanitizer`
    when a trace/result pair breaks conservation (quads lost between the
    trace and the scheduler), monotonicity (negative or shrinking cycle
    counts), cache-counter consistency (misses exceeding accesses), the
    raster-stage barrier ordering, or checkpoint-hash agreement.

    ``invariant`` names the violated invariant so campaign tooling can
    aggregate failures by class rather than by message text.
    """

    def __init__(self, *args, invariant: str = "",
                 transient: Optional[bool] = None):
        super().__init__(*args, transient=transient)
        self.invariant = invariant


class ReplayError(ReproError):
    """Pass 2 cannot produce a result for a design point."""


class BudgetExceededError(ReplayError):
    """A replay exceeded its configured quad or cycle budget."""


class InjectedFaultError(ReplayError):
    """A failure injected by an armed :class:`~repro.sim.faults.FaultPlan`.

    Transient by default: injected transients exist precisely to
    exercise the retry machinery, so a retry must be allowed to heal
    them.
    """

    transient = True


class WorkerCrashError(ReproError):
    """A sweep worker process died mid-task (``BrokenProcessPool``).

    Transient: the pool is respawned and the task rescheduled; only
    when the crash repeats past the attempt budget does this surface
    as a :class:`~repro.sim.resilience.FailureRecord`.
    """

    transient = True


class TaskTimeoutError(ReproError):
    """A sweep task exceeded its per-task deadline (hung worker).

    Transient: the hung worker is killed, the pool respawned and the
    task retried before the failure is recorded.
    """

    transient = True


def is_transient(error: BaseException) -> bool:
    """Whether the sweep's retry policy should re-attempt ``error``."""
    return bool(getattr(error, "transient", False))
