"""Geometry substrate and Geometry Pipeline.

Vector/matrix math, meshes and scenes, and the three front-end stages of
the Graphics Pipeline of Figure 3: the Vertex Stage (fetch + transform),
the Primitive Assembler and frustum clipping/culling.
"""

from repro.geometry.vec import Mat4, Vec2, Vec3, Vec4
from repro.geometry.mesh import DrawCommand, Mesh, Scene, Vertex
from repro.geometry.transform import (
    look_at,
    orthographic,
    perspective,
    rotate_y,
    scale,
    translate,
    viewport_transform,
)
from repro.geometry.vertex_stage import VertexStage
from repro.geometry.primitive_assembly import Primitive, PrimitiveAssembler
from repro.geometry.clipping import clip_primitive, cull_backface

__all__ = [
    "Vec2", "Vec3", "Vec4", "Mat4",
    "Vertex", "Mesh", "Scene", "DrawCommand",
    "translate", "scale", "rotate_y", "look_at", "perspective",
    "orthographic", "viewport_transform",
    "VertexStage", "Primitive", "PrimitiveAssembler",
    "clip_primitive", "cull_backface",
]
