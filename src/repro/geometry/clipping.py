"""Frustum clipping and back-face culling.

Primitives are clipped against the near plane (w > epsilon) in homogeneous
clip space using Sutherland-Hodgman, then trivially rejected when fully
outside the left/right/top/bottom planes.  Full polygon clipping against
all six planes is unnecessary for correctness here because the Rasterizer
clamps its pixel loop to the tile, but near-plane clipping *is* required
to keep the perspective divide well-defined.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.primitive_assembly import Primitive, PrimitiveBatch
from repro.geometry.vec import Vec2 as _Vec2, Vec3 as _Vec3, Vec4 as _Vec4
from repro.geometry.vertex_stage import TransformedVertex

#: Minimum w after clipping; keeps 1/w finite.
NEAR_EPSILON = 1e-5


def cull_backface(primitive: Primitive, cull_back: bool = False) -> bool:
    """Return True when the primitive should be discarded.

    Degenerate (zero-area) triangles are always discarded.  When
    ``cull_back`` is set, back-facing triangles (negative signed area in
    NDC, i.e. clockwise with y up) are discarded too; the synthetic
    workloads render double-sided by default, as most mobile 2D/UI
    content does.
    """
    try:
        a = primitive.vertices[0].clip_position.perspective_divide()
        b = primitive.vertices[1].clip_position.perspective_divide()
        c = primitive.vertices[2].clip_position.perspective_divide()
    except ZeroDivisionError:
        return True
    area2 = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
    if area2 == 0.0:
        return True
    return cull_back and area2 < 0.0


def _clip_against_near(
    vertices: List[TransformedVertex],
) -> List[TransformedVertex]:
    """Sutherland-Hodgman against the plane w = NEAR_EPSILON."""
    output: List[TransformedVertex] = []
    count = len(vertices)
    for i in range(count):
        current = vertices[i]
        following = vertices[(i + 1) % count]
        current_in = current.clip_position.w > NEAR_EPSILON
        following_in = following.clip_position.w > NEAR_EPSILON
        if current_in:
            output.append(current)
        if current_in != following_in:
            wa = current.clip_position.w
            wb = following.clip_position.w
            t = (NEAR_EPSILON - wa) / (wb - wa)
            output.append(TransformedVertex.lerp(current, following, t))
    return output


def _outside_one_plane(primitive: Primitive) -> bool:
    """Trivial rejection: all vertices outside the same frustum side."""
    verts = primitive.vertices
    for axis in ("x", "y", "z"):
        if all(getattr(v.clip_position, axis) > v.clip_position.w for v in verts):
            return True
        if all(getattr(v.clip_position, axis) < -v.clip_position.w for v in verts):
            return True
    return False


def clip_batch(batch: PrimitiveBatch) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized clip/cull classification of a whole primitive batch.

    Returns ``(keep, fallback)``: ``keep`` flags triangles that survive
    :func:`clip_primitive` *unchanged* (trivially inside the near plane,
    not rejected, not culled) and ``fallback`` flags triangles that need
    the scalar clipper (some vertex at or behind ``w == NEAR_EPSILON``
    but not trivially rejected).  Everything else is discarded, exactly
    as the scalar path discards it.

    Bit-exactness: a triangle whose three vertices all satisfy
    ``w > NEAR_EPSILON`` passes Sutherland-Hodgman untouched (every
    vertex is emitted, no intersections), fans to itself, and reaches
    :func:`cull_backface` with its original vertices — so the only
    decision left is the NDC signed-area test replicated here
    elementwise.
    """
    cx, cy, cz, cw = batch.cx, batch.cy, batch.cz, batch.cw
    reject = (
        (cx > cw).all(axis=1) | (cx < -cw).all(axis=1)
        | (cy > cw).all(axis=1) | (cy < -cw).all(axis=1)
        | (cz > cw).all(axis=1) | (cz < -cw).all(axis=1)
    )
    clean = (cw > NEAR_EPSILON).all(axis=1) & ~reject
    fallback = ~reject & ~clean

    # Back-face / degeneracy cull for the clean rows, in NDC exactly as
    # cull_backface computes it (w > NEAR_EPSILON, so 1/w is finite).
    safe_w = np.where(clean[:, None], cw, 1.0)
    inv = 1.0 / safe_w
    nx = cx * inv
    ny = cy * inv
    area2 = (
        (nx[:, 1] - nx[:, 0]) * (ny[:, 2] - ny[:, 0])
        - (nx[:, 2] - nx[:, 0]) * (ny[:, 1] - ny[:, 0])
    )
    keep = clean & (area2 != 0.0)
    return keep, fallback


def primitive_from_batch(batch: PrimitiveBatch, row: int) -> Primitive:
    """Materialize one batch row as a scalar :class:`Primitive`.

    Used for the rows :func:`clip_batch` sends to the scalar fallback;
    the reconstructed vertices carry exactly the batch's float values.
    """
    vertices = tuple(
        TransformedVertex(
            clip_position=_Vec4(
                float(batch.cx[row, i]), float(batch.cy[row, i]),
                float(batch.cz[row, i]), float(batch.cw[row, i]),
            ),
            uv=_Vec2(float(batch.u[row, i]), float(batch.v[row, i])),
            color=_Vec3(
                float(batch.cr[row, i]), float(batch.cg[row, i]),
                float(batch.cb[row, i]),
            ),
        )
        for i in range(3)
    )
    return Primitive(
        primitive_id=int(batch.pid[row]),
        vertices=vertices,
        texture_id=batch.texture_id,
        shader=batch.shader,
        depth_write=batch.depth_write,
        blend=batch.blend,
        late_z=batch.late_z,
    )


def clip_primitive(primitive: Primitive) -> List[Primitive]:
    """Clip one primitive; returns 0, 1 or 2 triangles.

    Near-plane clipping of a triangle yields a triangle or a quad; the
    quad is fanned into two triangles that keep the original primitive id
    (they remain the same logical primitive for ordering purposes).
    """
    if _outside_one_plane(primitive):
        return []
    polygon = _clip_against_near(list(primitive.vertices))
    if len(polygon) < 3:
        return []
    fanned: List[Primitive] = []
    for i in range(1, len(polygon) - 1):
        fanned.append(
            primitive.with_vertices([polygon[0], polygon[i], polygon[i + 1]])
        )
    return [p for p in fanned if not cull_backface(p)]
