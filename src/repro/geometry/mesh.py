"""Meshes, draw commands and scenes — the input to the Graphics Pipeline.

A :class:`Scene` is a list of :class:`DrawCommand`\\ s.  Each draw command
references a :class:`Mesh` (vertex + index buffers), a texture id, a model
matrix and a shader-program descriptor.  This mirrors the paper's input
model: "Input data for the Graphics Pipeline consists of vertices and
textures", with draw commands triggering the Geometry Pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.geometry.vec import Mat4, Vec2, Vec3
from repro.errors import WorkloadError

#: Bytes occupied by one vertex in the vertex buffer, used to map vertex
#: fetches onto vertex-cache lines (position 12B + uv 8B + color 12B,
#: padded to 32B).
VERTEX_STRIDE_BYTES = 32


@dataclass(frozen=True)
class Vertex:
    """A mesh vertex: object-space position, texture coordinate, color."""

    position: Vec3
    uv: Vec2
    color: Vec3 = Vec3(1.0, 1.0, 1.0)


@dataclass(frozen=True)
class ShaderProgram:
    """Cost descriptor of a fragment shader program.

    ``alu_cycles`` models the arithmetic length of the program and
    ``texture_samples`` how many texture fetch instructions it issues per
    fragment quad.  The paper's "workload intensity" of a quad (§V-B)
    is precisely this pair.
    """

    name: str = "default"
    alu_cycles: int = 12
    texture_samples: int = 1

    def __post_init__(self) -> None:
        if self.alu_cycles < 1:
            raise WorkloadError("alu_cycles must be >= 1")
        if self.texture_samples < 0:
            raise WorkloadError("texture_samples must be >= 0")


@dataclass
class Mesh:
    """An indexed triangle mesh."""

    vertices: List[Vertex]
    indices: List[int]
    base_address: int = 0

    def __post_init__(self) -> None:
        if len(self.indices) % 3:
            raise WorkloadError("index count must be a multiple of 3")
        if self.indices and max(self.indices) >= len(self.vertices):
            raise WorkloadError("index out of range of vertex buffer")
        if self.indices and min(self.indices) < 0:
            raise WorkloadError("negative vertex index")

    @property
    def num_triangles(self) -> int:
        return len(self.indices) // 3

    def triangles(self) -> Sequence[Tuple[int, int, int]]:
        """Iterate index triples in program order."""
        idx = self.indices
        return [
            (idx[i], idx[i + 1], idx[i + 2]) for i in range(0, len(idx), 3)
        ]

    def vertex_address(self, index: int) -> int:
        """Byte address of vertex ``index`` in the vertex buffer."""
        return self.base_address + index * VERTEX_STRIDE_BYTES


@dataclass
class DrawCommand:
    """One draw call: a mesh instance with texture and shader state.

    ``late_z`` marks draws whose shader conceptually modifies fragment
    depth: "the Early Z-Test is disabled and the Late Z-Test is
    employed" (paper §II-A) — every rasterized fragment is shaded, and
    the depth test runs after shading instead.
    """

    mesh: Mesh
    texture_id: int
    model_matrix: Mat4 = field(default_factory=Mat4.identity)
    shader: ShaderProgram = field(default_factory=ShaderProgram)
    depth_write: bool = True
    blend: bool = False
    late_z: bool = False


@dataclass
class Scene:
    """A renderable scene: draw commands plus camera matrices."""

    draws: List[DrawCommand] = field(default_factory=list)
    view_matrix: Mat4 = field(default_factory=Mat4.identity)
    projection_matrix: Mat4 = field(default_factory=Mat4.identity)
    name: str = "scene"

    def add(self, draw: DrawCommand) -> None:
        self.draws.append(draw)

    @property
    def num_triangles(self) -> int:
        return sum(d.mesh.num_triangles for d in self.draws)

    def texture_ids(self) -> List[int]:
        """Distinct texture ids referenced by the scene, in first-use order."""
        seen: List[int] = []
        for draw in self.draws:
            if draw.texture_id not in seen:
                seen.append(draw.texture_id)
        return seen
