"""The Primitive Assembler.

"The Primitive Assembler takes the vertices in program order and joins
them to produce primitives."  A :class:`Primitive` carries its three
transformed vertices plus the rendering state (texture, shader) it was
drawn with; primitive ids are assigned globally in program order, which
the Polygon List Builder and Rasterizer rely on for correctness (quads
of primitive *i* must complete before quads of primitive *i+1* within a
tile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.geometry.mesh import DrawCommand, ShaderProgram
from repro.geometry.vertex_stage import TransformedVertex
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Primitive:
    """An assembled triangle in clip space with its render state."""

    primitive_id: int
    vertices: Sequence[TransformedVertex]  # exactly 3
    texture_id: int
    shader: ShaderProgram
    depth_write: bool = True
    blend: bool = False
    late_z: bool = False

    def __post_init__(self) -> None:
        if len(self.vertices) != 3:
            raise WorkloadError("a primitive is a triangle: need 3 vertices")

    def with_vertices(self, vertices: Sequence[TransformedVertex]) -> "Primitive":
        """Copy with replaced vertices (used by the clipper)."""
        return Primitive(
            primitive_id=self.primitive_id,
            vertices=tuple(vertices),
            texture_id=self.texture_id,
            shader=self.shader,
            depth_write=self.depth_write,
            blend=self.blend,
            late_z=self.late_z,
        )


class PrimitiveAssembler:
    """Joins transformed vertices into triangles in program order."""

    def __init__(self) -> None:
        self._next_id = 0

    def assemble(
        self, draw: DrawCommand, transformed: List[TransformedVertex]
    ) -> Iterator[Primitive]:
        """Yield one primitive per index triple of the draw command.

        ``transformed`` must be in index order, exactly as produced by
        :meth:`repro.geometry.vertex_stage.VertexStage.run`.
        """
        if len(transformed) != len(draw.mesh.indices):
            raise WorkloadError(
                "transformed vertex stream does not match the index buffer"
            )
        for i in range(0, len(transformed), 3):
            primitive = Primitive(
                primitive_id=self._next_id,
                vertices=tuple(transformed[i : i + 3]),
                texture_id=draw.texture_id,
                shader=draw.shader,
                depth_write=draw.depth_write,
                blend=draw.blend,
                late_z=draw.late_z,
            )
            self._next_id += 1
            yield primitive

    @property
    def primitives_assembled(self) -> int:
        return self._next_id
