"""The Primitive Assembler.

"The Primitive Assembler takes the vertices in program order and joins
them to produce primitives."  A :class:`Primitive` carries its three
transformed vertices plus the rendering state (texture, shader) it was
drawn with; primitive ids are assigned globally in program order, which
the Polygon List Builder and Rasterizer rely on for correctness (quads
of primitive *i* must complete before quads of primitive *i+1* within a
tile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.geometry.mesh import DrawCommand, ShaderProgram
from repro.geometry.vertex_stage import TransformedVertex, VertexBatch
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Primitive:
    """An assembled triangle in clip space with its render state."""

    primitive_id: int
    vertices: Sequence[TransformedVertex]  # exactly 3
    texture_id: int
    shader: ShaderProgram
    depth_write: bool = True
    blend: bool = False
    late_z: bool = False

    def __post_init__(self) -> None:
        if len(self.vertices) != 3:
            raise WorkloadError("a primitive is a triangle: need 3 vertices")

    def with_vertices(self, vertices: Sequence[TransformedVertex]) -> "Primitive":
        """Copy with replaced vertices (used by the clipper)."""
        return Primitive(
            primitive_id=self.primitive_id,
            vertices=tuple(vertices),
            texture_id=self.texture_id,
            shader=self.shader,
            depth_write=self.depth_write,
            blend=self.blend,
            late_z=self.late_z,
        )


@dataclass
class PrimitiveBatch:
    """Structure-of-arrays form of a draw's assembled triangles.

    Vertex attributes are ``(T, 3)`` arrays (one row per triangle, one
    column per corner, in index-triple order); ``pid`` carries the
    program-order primitive ids the scalar assembler would have
    assigned.  Render state is uniform per draw and kept scalar.
    """

    cx: np.ndarray
    cy: np.ndarray
    cz: np.ndarray
    cw: np.ndarray
    u: np.ndarray
    v: np.ndarray
    cr: np.ndarray
    cg: np.ndarray
    cb: np.ndarray
    pid: np.ndarray
    texture_id: int
    shader: ShaderProgram
    depth_write: bool
    blend: bool
    late_z: bool

    def __len__(self) -> int:
        return len(self.pid)


class PrimitiveAssembler:
    """Joins transformed vertices into triangles in program order."""

    def __init__(self) -> None:
        self._next_id = 0

    def assemble(
        self, draw: DrawCommand, transformed: List[TransformedVertex]
    ) -> Iterator[Primitive]:
        """Yield one primitive per index triple of the draw command.

        ``transformed`` must be in index order, exactly as produced by
        :meth:`repro.geometry.vertex_stage.VertexStage.run`.
        """
        if len(transformed) != len(draw.mesh.indices):
            raise WorkloadError(
                "transformed vertex stream does not match the index buffer"
            )
        for i in range(0, len(transformed), 3):
            primitive = Primitive(
                primitive_id=self._next_id,
                vertices=tuple(transformed[i : i + 3]),
                texture_id=draw.texture_id,
                shader=draw.shader,
                depth_write=draw.depth_write,
                blend=draw.blend,
                late_z=draw.late_z,
            )
            self._next_id += 1
            yield primitive

    def assemble_batch(
        self, draw: DrawCommand, batch: VertexBatch
    ) -> PrimitiveBatch:
        """Vectorized :meth:`assemble`: one SoA row per index triple.

        Consumes the same global id counter as the scalar path, so a
        renderer may not mix both methods for the same frame's draws in
        anything but program order.
        """
        if len(batch) != len(draw.mesh.indices):
            raise WorkloadError(
                "transformed vertex stream does not match the index buffer"
            )
        count = len(batch) // 3
        pid = np.arange(self._next_id, self._next_id + count, dtype=np.int64)
        self._next_id += count
        return PrimitiveBatch(
            cx=batch.clip_x.reshape(count, 3),
            cy=batch.clip_y.reshape(count, 3),
            cz=batch.clip_z.reshape(count, 3),
            cw=batch.clip_w.reshape(count, 3),
            u=batch.u.reshape(count, 3),
            v=batch.v.reshape(count, 3),
            cr=batch.color_r.reshape(count, 3),
            cg=batch.color_g.reshape(count, 3),
            cb=batch.color_b.reshape(count, 3),
            pid=pid,
            texture_id=draw.texture_id,
            shader=draw.shader,
            depth_write=draw.depth_write,
            blend=draw.blend,
            late_z=draw.late_z,
        )

    @property
    def primitives_assembled(self) -> int:
        return self._next_id
