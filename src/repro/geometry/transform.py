"""Standard graphics transforms: model/view/projection and viewport."""

from __future__ import annotations

import math

from repro.geometry.vec import Mat4, Vec2, Vec3
from repro.errors import WorkloadError


def translate(t: Vec3) -> Mat4:
    """Translation matrix."""
    return Mat4(
        [
            [1, 0, 0, t.x],
            [0, 1, 0, t.y],
            [0, 0, 1, t.z],
            [0, 0, 0, 1],
        ]
    )


def scale(s: Vec3) -> Mat4:
    """Non-uniform scale matrix."""
    return Mat4(
        [
            [s.x, 0, 0, 0],
            [0, s.y, 0, 0],
            [0, 0, s.z, 0],
            [0, 0, 0, 1],
        ]
    )


def rotate_y(angle_rad: float) -> Mat4:
    """Rotation about the +Y axis."""
    c, s = math.cos(angle_rad), math.sin(angle_rad)
    return Mat4(
        [
            [c, 0, s, 0],
            [0, 1, 0, 0],
            [-s, 0, c, 0],
            [0, 0, 0, 1],
        ]
    )


def look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4:
    """Right-handed view matrix looking from ``eye`` towards ``target``."""
    forward = (target - eye).normalized()
    side = forward.cross(up).normalized()
    true_up = side.cross(forward)
    rotation = Mat4(
        [
            [side.x, side.y, side.z, 0],
            [true_up.x, true_up.y, true_up.z, 0],
            [-forward.x, -forward.y, -forward.z, 0],
            [0, 0, 0, 1],
        ]
    )
    return rotation @ translate(Vec3(-eye.x, -eye.y, -eye.z))


def perspective(fov_y_rad: float, aspect: float, near: float, far: float) -> Mat4:
    """OpenGL-style perspective projection (clip z in [-w, w])."""
    if near <= 0 or far <= near:
        raise WorkloadError("require 0 < near < far")
    f = 1.0 / math.tan(fov_y_rad / 2.0)
    return Mat4(
        [
            [f / aspect, 0, 0, 0],
            [0, f, 0, 0],
            [0, 0, (far + near) / (near - far), 2 * far * near / (near - far)],
            [0, 0, -1, 0],
        ]
    )


def orthographic(
    left: float, right: float, bottom: float, top: float,
    near: float = -1.0, far: float = 1.0,
) -> Mat4:
    """Orthographic projection (used by the 2D games)."""
    if right == left or top == bottom or far == near:
        raise WorkloadError("degenerate orthographic volume")
    return Mat4(
        [
            [2 / (right - left), 0, 0, -(right + left) / (right - left)],
            [0, 2 / (top - bottom), 0, -(top + bottom) / (top - bottom)],
            [0, 0, -2 / (far - near), -(far + near) / (far - near)],
            [0, 0, 0, 1],
        ]
    )


def viewport_transform(ndc: Vec3, width: int, height: int) -> Vec3:
    """NDC [-1, 1] -> screen pixels, with depth mapped to [0, 1].

    y is flipped so that screen y grows downwards (raster convention).
    """
    sx = (ndc.x + 1.0) * 0.5 * width
    sy = (1.0 - ndc.y) * 0.5 * height
    sz = (ndc.z + 1.0) * 0.5
    return Vec3(sx, sy, sz)


def ndc_to_screen_xy(ndc: Vec3, width: int, height: int) -> Vec2:
    """Convenience: just the screen-space x, y of :func:`viewport_transform`."""
    screen = viewport_transform(ndc, width, height)
    return Vec2(screen.x, screen.y)
