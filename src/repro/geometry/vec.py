"""Small immutable vector and matrix types.

These are deliberately plain (tuples + floats, no numpy broadcasting) so
that the geometry pipeline stays easy to reason about and hash-stable.
Bulk math in the rasterizer uses numpy directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Vec2:
    """2-component vector (texture coordinates, screen positions)."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, k: float) -> "Vec2":
        return Vec2(self.x * k, self.y * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec2") -> float:
        return self.x * other.x + self.y * other.y

    def length(self) -> float:
        return math.hypot(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class Vec3:
    """3-component vector (positions, normals, colors)."""

    x: float
    y: float
    z: float

    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, k: float) -> "Vec3":
        return Vec3(self.x * k, self.y * k, self.z * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length(self) -> float:
        return math.sqrt(self.dot(self))

    def normalized(self) -> "Vec3":
        n = self.length()
        if n == 0.0:
            raise WorkloadError("cannot normalize a zero vector")
        return self * (1.0 / n)

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class Vec4:
    """Homogeneous 4-component vector (clip-space positions)."""

    x: float
    y: float
    z: float
    w: float

    def __add__(self, other: "Vec4") -> "Vec4":
        return Vec4(
            self.x + other.x, self.y + other.y,
            self.z + other.z, self.w + other.w,
        )

    def __sub__(self, other: "Vec4") -> "Vec4":
        return Vec4(
            self.x - other.x, self.y - other.y,
            self.z - other.z, self.w - other.w,
        )

    def __mul__(self, k: float) -> "Vec4":
        return Vec4(self.x * k, self.y * k, self.z * k, self.w * k)

    __rmul__ = __mul__

    def dot(self, other: "Vec4") -> float:
        return (
            self.x * other.x + self.y * other.y
            + self.z * other.z + self.w * other.w
        )

    def perspective_divide(self) -> Vec3:
        """Clip space -> normalized device coordinates."""
        if self.w == 0.0:
            raise ZeroDivisionError("perspective divide by w == 0")
        inv = 1.0 / self.w
        return Vec3(self.x * inv, self.y * inv, self.z * inv)

    def xyz(self) -> Vec3:
        return Vec3(self.x, self.y, self.z)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x, self.y, self.z, self.w)

    @staticmethod
    def from_vec3(v: Vec3, w: float = 1.0) -> "Vec4":
        return Vec4(v.x, v.y, v.z, w)

    @staticmethod
    def lerp(a: "Vec4", b: "Vec4", t: float) -> "Vec4":
        return a + (b - a) * t


class Mat4:
    """Row-major 4x4 matrix."""

    __slots__ = ("rows",)

    def __init__(self, rows: Iterable[Iterable[float]]):
        self.rows: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(float(v) for v in row) for row in rows
        )
        if len(self.rows) != 4 or any(len(r) != 4 for r in self.rows):
            raise WorkloadError("Mat4 requires 4 rows of 4 values")

    @staticmethod
    def identity() -> "Mat4":
        return Mat4(
            [
                [1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, 1],
            ]
        )

    def __matmul__(self, other: "Mat4") -> "Mat4":
        a, b = self.rows, other.rows
        return Mat4(
            [
                [sum(a[i][k] * b[k][j] for k in range(4)) for j in range(4)]
                for i in range(4)
            ]
        )

    def transform(self, v: Vec4) -> Vec4:
        t = v.as_tuple()
        out = [sum(row[k] * t[k] for k in range(4)) for row in self.rows]
        return Vec4(*out)

    def transform_point(self, p: Vec3) -> Vec4:
        return self.transform(Vec4.from_vec3(p, 1.0))

    def transform_direction(self, d: Vec3) -> Vec3:
        return self.transform(Vec4.from_vec3(d, 0.0)).xyz()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mat4) and self.rows == other.rows

    def __repr__(self) -> str:
        return f"Mat4({self.rows!r})"
