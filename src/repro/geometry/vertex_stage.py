"""The Vertex Stage of the Geometry Pipeline.

"A Draw Command triggers the Geometry Pipeline and the Vertex Stage starts
fetching vertices from memory using an L1 Vertex Cache.  It then transforms
them according to a vertex program."  Here the vertex program is the
standard model-view-projection transform; vertex fetches go through the
memory hierarchy's vertex cache so that geometry traffic shows up in the
L2 statistics exactly as in the baseline architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geometry.mesh import DrawCommand, Vertex
from repro.geometry.vec import Mat4, Vec2, Vec3, Vec4
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class TransformedVertex:
    """A vertex after the vertex program: clip-space position + attributes."""

    clip_position: Vec4
    uv: Vec2
    color: Vec3

    @staticmethod
    def lerp(a: "TransformedVertex", b: "TransformedVertex", t: float) -> "TransformedVertex":
        """Linear interpolation in clip space (used by the clipper)."""
        return TransformedVertex(
            clip_position=Vec4.lerp(a.clip_position, b.clip_position, t),
            uv=a.uv + (b.uv - a.uv) * t,
            color=a.color + (b.color - a.color) * t,
        )


class VertexStage:
    """Fetches and transforms the vertices of a draw command."""

    def __init__(self, hierarchy: Optional[MemoryHierarchy] = None):
        self.hierarchy = hierarchy
        self.vertices_processed = 0

    def run(
        self,
        draw: DrawCommand,
        view: Mat4,
        projection: Mat4,
    ) -> List[TransformedVertex]:
        """Transform every vertex of ``draw`` into clip space.

        Vertex fetches are issued to the vertex cache in index order —
        the same order the Primitive Assembler will consume them — so
        index-buffer locality is captured.
        """
        mvp = projection @ view @ draw.model_matrix
        transformed: List[Optional[TransformedVertex]] = (
            [None] * len(draw.mesh.vertices)
        )
        out: List[TransformedVertex] = []
        for index in draw.mesh.indices:
            if self.hierarchy is not None:
                line = draw.mesh.vertex_address(index) // 64
                self.hierarchy.vertex_access(line)
            cached = transformed[index]
            if cached is None:
                cached = self._transform_one(draw.mesh.vertices[index], mvp)
                transformed[index] = cached
                self.vertices_processed += 1
            out.append(cached)
        return out

    @staticmethod
    def _transform_one(vertex: Vertex, mvp: Mat4) -> TransformedVertex:
        clip = mvp.transform_point(vertex.position)
        return TransformedVertex(
            clip_position=clip, uv=vertex.uv, color=vertex.color
        )
