"""The Vertex Stage of the Geometry Pipeline.

"A Draw Command triggers the Geometry Pipeline and the Vertex Stage starts
fetching vertices from memory using an L1 Vertex Cache.  It then transforms
them according to a vertex program."  Here the vertex program is the
standard model-view-projection transform; vertex fetches go through the
memory hierarchy's vertex cache so that geometry traffic shows up in the
L2 statistics exactly as in the baseline architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geometry.mesh import DrawCommand, Vertex
from repro.geometry.vec import Mat4, Vec2, Vec3, Vec4
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class TransformedVertex:
    """A vertex after the vertex program: clip-space position + attributes."""

    clip_position: Vec4
    uv: Vec2
    color: Vec3

    @staticmethod
    def lerp(a: "TransformedVertex", b: "TransformedVertex", t: float) -> "TransformedVertex":
        """Linear interpolation in clip space (used by the clipper)."""
        return TransformedVertex(
            clip_position=Vec4.lerp(a.clip_position, b.clip_position, t),
            uv=a.uv + (b.uv - a.uv) * t,
            color=a.color + (b.color - a.color) * t,
        )


@dataclass
class VertexBatch:
    """Structure-of-arrays form of a draw's transformed vertex stream.

    One row per *index slot* (not per unique vertex), in index-buffer
    order — exactly the stream :meth:`VertexStage.run` produces as a
    list of :class:`TransformedVertex`.  Each value is bit-identical to
    the scalar path's: the batched MVP transform applies the same
    multiply/add sequence in the same IEEE association order.
    """

    clip_x: np.ndarray
    clip_y: np.ndarray
    clip_z: np.ndarray
    clip_w: np.ndarray
    u: np.ndarray
    v: np.ndarray
    color_r: np.ndarray
    color_g: np.ndarray
    color_b: np.ndarray

    def __len__(self) -> int:
        return len(self.clip_x)


class VertexStage:
    """Fetches and transforms the vertices of a draw command."""

    def __init__(self, hierarchy: Optional[MemoryHierarchy] = None):
        self.hierarchy = hierarchy
        self.vertices_processed = 0

    def run(
        self,
        draw: DrawCommand,
        view: Mat4,
        projection: Mat4,
    ) -> List[TransformedVertex]:
        """Transform every vertex of ``draw`` into clip space.

        Vertex fetches are issued to the vertex cache in index order —
        the same order the Primitive Assembler will consume them — so
        index-buffer locality is captured.
        """
        mvp = projection @ view @ draw.model_matrix
        transformed: List[Optional[TransformedVertex]] = (
            [None] * len(draw.mesh.vertices)
        )
        out: List[TransformedVertex] = []
        for index in draw.mesh.indices:
            if self.hierarchy is not None:
                line = draw.mesh.vertex_address(index) // 64
                self.hierarchy.vertex_access(line)
            cached = transformed[index]
            if cached is None:
                cached = self._transform_one(draw.mesh.vertices[index], mvp)
                transformed[index] = cached
                self.vertices_processed += 1
            out.append(cached)
        return out

    @staticmethod
    def _transform_one(vertex: Vertex, mvp: Mat4) -> TransformedVertex:
        clip = mvp.transform_point(vertex.position)
        return TransformedVertex(
            clip_position=clip, uv=vertex.uv, color=vertex.color
        )

    def run_batch(
        self,
        draw: DrawCommand,
        view: Mat4,
        projection: Mat4,
    ) -> VertexBatch:
        """Vectorized :meth:`run`: the same stream as structure-of-arrays.

        Bit-exactness: :meth:`~repro.geometry.vec.Mat4.transform`
        evaluates each component as ``sum(row[k] * t[k])`` — Python's
        ``sum`` starts from integer 0, so the association order is
        ``(((0 + r0*x) + r1*y) + r2*z) + r3*1.0``; adding 0 (or +0.0)
        to the first product is IEEE-exact (it only normalizes -0.0 to
        +0.0, exactly as the scalar path does).  The expressions below
        replay that order elementwise, so every clip-space coordinate
        matches the scalar path bit for bit.
        """
        mvp = projection @ view @ draw.model_matrix
        vertices = draw.mesh.vertices
        xs = np.array([vert.position.x for vert in vertices], dtype=np.float64)
        ys = np.array([vert.position.y for vert in vertices], dtype=np.float64)
        zs = np.array([vert.position.z for vert in vertices], dtype=np.float64)
        rows = mvp.rows
        clip = [
            (((0.0 + row[0] * xs) + row[1] * ys) + row[2] * zs) + row[3] * 1.0
            for row in rows
        ]
        us = np.array([vert.uv.x for vert in vertices], dtype=np.float64)
        vs = np.array([vert.uv.y for vert in vertices], dtype=np.float64)
        crs = np.array([vert.color.x for vert in vertices], dtype=np.float64)
        cgs = np.array([vert.color.y for vert in vertices], dtype=np.float64)
        cbs = np.array([vert.color.z for vert in vertices], dtype=np.float64)

        index = np.asarray(draw.mesh.indices, dtype=np.intp)
        self.vertices_processed += len(set(draw.mesh.indices))
        return VertexBatch(
            clip_x=clip[0][index],
            clip_y=clip[1][index],
            clip_z=clip[2][index],
            clip_w=clip[3][index],
            u=us[index],
            v=vs[index],
            color_r=crs[index],
            color_g=cgs[index],
            color_b=cbs[index],
        )
