"""Memory substrate: set-associative caches, DRAM, and the hierarchy.

This package models the memory system of Figure 5 of the paper: private
per-SC L1 texture caches plus vertex and tile caches, all backed by a
shared L2, which is backed by main memory.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.dram import DRAM
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["Cache", "CacheStats", "DRAM", "MemoryHierarchy", "AccessResult"]
