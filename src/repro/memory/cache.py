"""Set-associative LRU cache model.

Caches are indexed by byte address; internally everything is tracked at
cache-line granularity.  The model is purely functional w.r.t. timing —
it reports hits and misses, and the surrounding hierarchy converts those
into latencies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import CacheConfig
from repro.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new ``CacheStats`` with the sums of both counters."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


@dataclass
class Cache:
    """A set-associative cache with true-LRU replacement.

    Parameters come from a :class:`~repro.config.CacheConfig`.  Each set is
    an ``OrderedDict`` mapping line-tag -> None, oldest first, so a hit is
    a ``move_to_end`` and a replacement pops the front.
    """

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._line_shift = self.config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != self.config.line_bytes:
            raise ConfigError("line size must be a power of two")
        self._num_sets = self.config.num_sets
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    # -- address helpers ------------------------------------------------------

    def line_of(self, address: int) -> int:
        """Cache-line number containing ``address``."""
        return address >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    # -- operations -----------------------------------------------------------

    def access(self, address: int) -> bool:
        """Access a byte address.  Returns ``True`` on hit.

        On a miss, the line is filled and the LRU line of its set is
        evicted if the set is full.
        """
        line = self.line_of(address)
        cache_set = self._sets[self._set_index(line)]
        self.stats.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = None
        return False

    def access_line(self, line: int) -> bool:
        """Access by precomputed line number (hot path for the simulator)."""
        cache_set = self._sets[line % self._num_sets]
        self.stats.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = None
        return False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        line = self.line_of(address)
        return line in self._sets[self._set_index(line)]

    def invalidate(self, address: Optional[int] = None) -> None:
        """Invalidate one line (or the whole cache when ``address`` is None)."""
        if address is None:
            for cache_set in self._sets:
                cache_set.clear()
            return
        line = self.line_of(address)
        self._sets[self._set_index(line)].pop(line, None)

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def resident_line_set(self) -> set:
        """The set of all resident line numbers (for replication analysis)."""
        lines: set = set()
        for cache_set in self._sets:
            lines.update(cache_set.keys())
        return lines

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.invalidate()
        self.stats.reset()
