"""Set-associative LRU cache models.

Caches are indexed by byte address; internally everything is tracked at
cache-line granularity.  The models are purely functional w.r.t. timing —
they report hits and misses, and the surrounding hierarchy converts those
into latencies.

Two implementations share one contract:

* :class:`Cache` — the fast engine.  Set contents live in flat
  ``tags``/``ages`` arrays (one slot per way) with a line -> slot index
  for O(1) hit detection; true-LRU order is a monotone age stamp, so a
  hit is two array writes and an eviction is a short scan of one set's
  ways.  The batched :meth:`Cache.access_lines` entry point processes a
  whole footprint (e.g. one quad's texture lines) per call — the hot
  path of the replay engine.
* :class:`ReferenceCache` — the original ``OrderedDict``-per-set model,
  kept as the executable specification.  Differential tests drive both
  on identical access streams and require bit-identical counters,
  hit/miss sequences, eviction order and resident sets.

Age stamps replicate ``OrderedDict`` recency order exactly: a hit
re-stamps the line (``move_to_end``), a fill stamps it newest, and the
victim is the minimum stamp of the set (``popitem(last=False)``).
Stamps are unique (one global tick per access), so LRU choice is never
ambiguous.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import CacheConfig
from repro.errors import ConfigError


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new ``CacheStats`` with the sums of both counters."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = self.evictions = 0


@dataclass
class Cache:
    """A set-associative cache with true-LRU replacement (fast engine).

    Parameters come from a :class:`~repro.config.CacheConfig`.  Backing
    store: ``_tags[set * ways + way]`` holds the resident line number
    (-1 = invalid) and ``_ages`` its last-touch stamp; ``_index`` maps
    resident lines to their slot so the hit path never scans.
    """

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._line_shift = self.config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != self.config.line_bytes:
            raise ConfigError("line size must be a power of two")
        self._num_sets = self.config.num_sets
        self._ways = self.config.associativity
        slots = self._num_sets * self._ways
        self._tags: List[int] = [-1] * slots
        self._ages: List[int] = [0] * slots
        self._index: Dict[int, int] = {}
        self._tick = 0

    # -- address helpers ------------------------------------------------------

    def line_of(self, address: int) -> int:
        """Cache-line number containing ``address``."""
        return address >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    # -- operations -----------------------------------------------------------

    def access(self, address: int) -> bool:
        """Access a byte address.  Returns ``True`` on hit.

        On a miss, the line is filled and the LRU line of its set is
        evicted if the set is full.
        """
        return self.access_line(self.line_of(address))

    def access_line(self, line: int) -> bool:
        """Access by precomputed line number (hot path for the simulator)."""
        hits, _ = self.access_lines((line,))
        return hits == 1

    def access_lines(self, lines: Sequence[int]) -> Tuple[int, List[int]]:
        """Access a whole footprint of line numbers in stream order.

        Returns ``(hits, missed_lines)`` where ``missed_lines`` preserves
        the order misses occurred — exactly the stream the next level of
        the hierarchy must see.  Counter updates are identical to calling
        :meth:`access_line` once per element.
        """
        tags = self._tags
        ages = self._ages
        index = self._index
        num_sets = self._num_sets
        ways = self._ways
        tick = self._tick
        hits = 0
        evictions = 0
        missed: List[int] = []
        for line in lines:
            tick += 1
            slot = index.get(line)
            if slot is not None:
                ages[slot] = tick
                hits += 1
                continue
            missed.append(line)
            base = (line % num_sets) * ways
            victim = base
            victim_age = None
            for i in range(base, base + ways):
                tag = tags[i]
                if tag == -1:
                    victim = i
                    victim_age = None
                    break
                age = ages[i]
                if victim_age is None or age < victim_age:
                    victim_age = age
                    victim = i
            if victim_age is not None:
                evictions += 1
                del index[tags[victim]]
            tags[victim] = line
            ages[victim] = tick
            index[line] = victim
        self._tick = tick
        stats = self.stats
        stats.accesses += len(missed) + hits
        stats.hits += hits
        stats.misses += len(missed)
        stats.evictions += evictions
        return hits, missed

    # -- inlined-loop support --------------------------------------------------

    def acquire_state(self) -> Tuple[Dict[int, int], List[int], List[int], int, int, int]:
        """Expose mutable internals for an inlined hot loop.

        Returns ``(index, ages, tags, num_sets, ways, tick)``.  The
        replay engine's per-quad loop replicates the
        :meth:`access_lines` body over these directly (one Python call
        per quad is too expensive at trace scale); the caller must
        finish with :meth:`release_state` to write back the tick and
        the statistics deltas.  The differential tests pin the inlined
        copy to this class bit-for-bit.
        """
        return (
            self._index,
            self._ages,
            self._tags,
            self._num_sets,
            self._ways,
            self._tick,
        )

    def release_state(
        self, tick: int, hits: int, misses: int, evictions: int
    ) -> None:
        """Write back the tick and statistics after an inlined loop.

        The counter updates are plain sums, so deferring them to one
        bulk update per batch leaves the final statistics identical to
        per-access updates.
        """
        self._tick = tick
        stats = self.stats
        stats.accesses += hits + misses
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        return self.line_of(address) in self._index

    def invalidate(self, address: Optional[int] = None) -> None:
        """Invalidate one line (or the whole cache when ``address`` is None)."""
        if address is None:
            self._tags = [-1] * (self._num_sets * self._ways)
            self._ages = [0] * (self._num_sets * self._ways)
            self._index.clear()
            self._tick = 0
            return
        line = self.line_of(address)
        slot = self._index.pop(line, None)
        if slot is not None:
            self._tags[slot] = -1
            self._ages[slot] = 0

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return len(self._index)

    def resident_line_set(self) -> set:
        """The set of all resident line numbers (for replication analysis)."""
        return set(self._index)

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.invalidate()
        self.stats.reset()


@dataclass
class ReferenceCache:
    """The original ``OrderedDict``-per-set LRU model (specification).

    Each set is an ``OrderedDict`` mapping line-tag -> None, oldest
    first, so a hit is a ``move_to_end`` and a replacement pops the
    front.  :class:`Cache` must match this model counter-for-counter;
    the reference replay engine and the differential tests run on it.
    """

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._line_shift = self.config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != self.config.line_bytes:
            raise ConfigError("line size must be a power of two")
        self._num_sets = self.config.num_sets
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    # -- address helpers ------------------------------------------------------

    def line_of(self, address: int) -> int:
        """Cache-line number containing ``address``."""
        return address >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    # -- operations -----------------------------------------------------------

    def access(self, address: int) -> bool:
        """Access a byte address.  Returns ``True`` on hit.

        On a miss, the line is filled and the LRU line of its set is
        evicted if the set is full.
        """
        return self.access_line(self.line_of(address))

    def access_line(self, line: int) -> bool:
        """Access by precomputed line number."""
        cache_set = self._sets[line % self._num_sets]
        self.stats.accesses += 1
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[line] = None
        return False

    def access_lines(self, lines: Iterable[int]) -> Tuple[int, List[int]]:
        """Batched counterpart of :meth:`access_line` (same contract as
        :meth:`Cache.access_lines`)."""
        hits = 0
        missed: List[int] = []
        for line in lines:
            if self.access_line(line):
                hits += 1
            else:
                missed.append(line)
        return hits, missed

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        line = self.line_of(address)
        return line in self._sets[self._set_index(line)]

    def invalidate(self, address: Optional[int] = None) -> None:
        """Invalidate one line (or the whole cache when ``address`` is None)."""
        if address is None:
            for cache_set in self._sets:
                cache_set.clear()
            return
        line = self.line_of(address)
        self._sets[self._set_index(line)].pop(line, None)

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(s) for s in self._sets)

    def resident_line_set(self) -> set:
        """The set of all resident line numbers (for replication analysis)."""
        lines: set = set()
        for cache_set in self._sets:
            lines.update(cache_set.keys())
        return lines

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.invalidate()
        self.stats.reset()
