"""Main-memory (DRAM) latency model.

Table II models main memory as a 1 GiB store with a 50-100 cycle access
latency.  The paper reports that DTexL does not change L2 misses and hence
does not change DRAM traffic, so a detailed bank/row model is not load-
bearing; we model the latency band deterministically.  Latency within the
[min, max] band is derived from the line address (a cheap stand-in for
row-buffer and bank effects) so repeated runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DRAMConfig


@dataclass
class DRAMStats:
    """Access and traffic counters for main memory."""

    accesses: int = 0
    total_latency: int = 0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.total_latency = 0


@dataclass
class DRAM:
    """Deterministic banded-latency DRAM model."""

    config: DRAMConfig = field(default_factory=DRAMConfig)
    stats: DRAMStats = field(default_factory=DRAMStats)

    def latency_for_line(self, line: int) -> int:
        """Latency in cycles for a fill of cache line ``line``.

        A multiplicative hash spreads lines across the [min, max] latency
        band, emulating bank/row variation without random state.
        """
        band = self.config.max_latency - self.config.min_latency + 1
        # Knuth multiplicative hash keeps neighbouring lines decorrelated.
        jitter = ((line * 2654435761) >> 7) % band
        return self.config.min_latency + jitter

    def access_line(self, line: int) -> int:
        """Record an access and return its latency in cycles."""
        latency = self.latency_for_line(line)
        self.stats.accesses += 1
        self.stats.total_latency += latency
        return latency

    def access_lines(self, lines) -> int:
        """Record a batch of accesses; returns their total latency.

        Counter updates are identical to calling :meth:`access_line`
        once per element (latency is a pure function of the line, so the
        batch total is order-independent).
        """
        total = 0
        for line in lines:
            total += self.latency_for_line(line)
        self.stats.accesses += len(lines)
        self.stats.total_latency += total
        return total

    def reset(self) -> None:
        self.stats.reset()
