"""The memory hierarchy of Figure 5.

Per shader core: a private L1 texture cache.  Shared across the GPU: the
vertex cache (used by the Geometry Pipeline), the tile cache (used by the
Tiling Engine for the Parameter Buffer) and the L2 cache.  The L2 backs
every L1 and is itself backed by DRAM.

The hierarchy exposes one entry point per traffic class
(:meth:`texture_access`, :meth:`vertex_access`, :meth:`tile_access`)
returning an :class:`AccessResult` with the level serviced and total
latency, while maintaining per-level statistics.  ``l2.stats.accesses`` is
the paper's headline "L2 Accesses" metric.

The batched counterparts (:meth:`texture_access_lines`,
:meth:`vertex_access_lines`, :meth:`tile_access_lines`) walk a whole
footprint per call without allocating per-access result records; they
update every counter in the same per-line order as the scalar entry
points and are the replay engine's hot path.  ``backend`` selects the
cache implementation: ``"fast"`` (array-backed, the default) or
``"reference"`` (the OrderedDict specification the differential tests
compare against).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple

from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.memory.cache import Cache, CacheStats, ReferenceCache
from repro.memory.dram import DRAM

#: backend name -> cache class, for :class:`MemoryHierarchy`.
CACHE_BACKENDS = {"fast": Cache, "reference": ReferenceCache}


class ServiceLevel(Enum):
    """Which level of the hierarchy supplied the data."""

    L1 = "l1"
    L2 = "l2"
    DRAM = "dram"


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    level: ServiceLevel
    latency: int

    @property
    def l1_hit(self) -> bool:
        return self.level is ServiceLevel.L1


class MemoryHierarchy:
    """Texture/vertex/tile L1 caches + shared L2 + DRAM.

    One instance is created per simulated configuration; statistics
    accumulate until :meth:`reset`.
    """

    def __init__(self, config: GPUConfig, backend: str = "fast"):
        try:
            cache_cls = CACHE_BACKENDS[backend]
        except KeyError:
            raise ConfigError(
                f"unknown cache backend {backend!r}; "
                f"choose from {', '.join(sorted(CACHE_BACKENDS))}"
            ) from None
        self.config = config
        self.backend = backend
        self.texture_l1s: List[Cache] = [
            cache_cls(config.texture_cache)
            for _ in range(config.num_shader_cores)
        ]
        self.vertex_cache = cache_cls(config.vertex_cache)
        self.tile_cache = cache_cls(config.tile_cache)
        self.l2 = cache_cls(config.l2_cache)
        self.dram = DRAM(config.dram)

    # -- internal -------------------------------------------------------------

    def _through_l2(self, line: int) -> AccessResult:
        """Access the L2 (and DRAM below it) for ``line``; L1 already missed."""
        l2_latency = self.config.l2_cache.hit_latency
        if self.l2.access_line(line):
            return AccessResult(ServiceLevel.L2, l2_latency)
        dram_latency = self.dram.access_line(line)
        return AccessResult(ServiceLevel.DRAM, l2_latency + dram_latency)

    def _access(self, l1: Cache, l1_latency: int, line: int) -> AccessResult:
        if l1.access_line(line):
            return AccessResult(ServiceLevel.L1, l1_latency)
        below = self._through_l2(line)
        return AccessResult(below.level, l1_latency + below.latency)

    # -- traffic classes ------------------------------------------------------

    def texture_access(self, sc_id: int, line: int) -> AccessResult:
        """Texture fetch from shader core ``sc_id`` for cache line ``line``."""
        l1 = self.texture_l1s[sc_id]
        return self._access(l1, self.config.texture_cache.hit_latency, line)

    def vertex_access(self, line: int) -> AccessResult:
        """Vertex fetch from the Geometry Pipeline."""
        return self._access(
            self.vertex_cache, self.config.vertex_cache.hit_latency, line
        )

    def tile_access(self, line: int) -> AccessResult:
        """Parameter Buffer access from the Tiling Engine / Tile Fetcher."""
        return self._access(
            self.tile_cache, self.config.tile_cache.hit_latency, line
        )

    # -- batched traffic (the replay engine's hot path) -----------------------

    def _access_lines(self, l1, lines: Sequence[int]) -> Tuple[int, int]:
        """Drive ``lines`` through ``l1`` and the shared L2/DRAM below it.

        Returns ``(l1_hits, below_latency)`` where ``below_latency`` is
        the summed service latency beneath the L1 for every missing line
        (L2 hit latency per miss, plus the DRAM fill latency for lines
        the L2 missed too).  Every cache and DRAM counter advances
        exactly as if each line had gone through the scalar path.
        """
        hits, missed = l1.access_lines(lines)
        if not missed:
            return hits, 0
        _, to_dram = self.l2.access_lines(missed)
        below = len(missed) * self.config.l2_cache.hit_latency
        if to_dram:
            below += self.dram.access_lines(to_dram)
        return hits, below

    def texture_access_lines(
        self, sc_id: int, lines: Sequence[int], miss_overhead: int = 0
    ) -> Tuple[int, int]:
        """Texture footprint fetch from shader core ``sc_id``.

        Returns ``(l1_hits, stall_cycles)``; each L1 miss stalls for the
        service latency below the L1 plus ``miss_overhead`` (the NoC +
        replay penalty the shader model charges per miss) — the same
        arithmetic the scalar replay path applies per line.
        """
        hits, below = self._access_lines(self.texture_l1s[sc_id], lines)
        misses = len(lines) - hits
        return hits, below + misses * miss_overhead

    def vertex_access_lines(self, lines: Sequence[int]) -> Tuple[int, int]:
        """Batched Geometry Pipeline fetches; returns (hits, below-L1 latency)."""
        return self._access_lines(self.vertex_cache, lines)

    def tile_access_lines(self, lines: Sequence[int]) -> Tuple[int, int]:
        """Batched Parameter Buffer fetches; returns (hits, below-L1 latency)."""
        return self._access_lines(self.tile_cache, lines)

    # -- statistics -----------------------------------------------------------

    @property
    def l2_accesses(self) -> int:
        """The paper's headline metric: total accesses arriving at the L2."""
        return self.l2.stats.accesses

    @property
    def l2_misses(self) -> int:
        return self.l2.stats.misses

    @property
    def dram_accesses(self) -> int:
        return self.dram.stats.accesses

    def texture_l1_stats(self) -> CacheStats:
        """Aggregated statistics over all private L1 texture caches."""
        total = CacheStats()
        for l1 in self.texture_l1s:
            total = total.merge(l1.stats)
        return total

    def replication_factor(self) -> float:
        """Mean number of L1 copies of each line resident in any L1.

        1.0 means no line is replicated; values approach the number of
        shader cores as every line becomes resident everywhere.  This is
        the quantity DTexL's coarse-grained groupings reduce.
        """
        per_cache = [l1.resident_line_set() for l1 in self.texture_l1s]
        union = set().union(*per_cache) if per_cache else set()
        if not union:
            return 1.0
        total_resident = sum(len(lines) for lines in per_cache)
        return total_resident / len(union)

    def reset(self) -> None:
        """Clear all cache contents and statistics."""
        for l1 in self.texture_l1s:
            l1.reset()
        self.vertex_cache.reset()
        self.tile_cache.reset()
        self.l2.reset()
        self.dram.reset()
