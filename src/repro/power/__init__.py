"""GPU energy model (McPAT-substitute)."""

from repro.power.energy_model import EnergyBreakdown, EnergyModel, EnergyParams

__all__ = ["EnergyModel", "EnergyParams", "EnergyBreakdown"]
