"""Event-energy GPU power model.

The paper uses McPAT (32 nm) for power.  We substitute an event-energy
model: every architectural event (cache access at each level, DRAM
access, SC issue cycle) carries a per-event energy, and a constant
leakage-plus-clock-tree power burns for the whole frame time.  The
per-event constants below are CACTI/McPAT-flavoured values for a 32 nm
low-power process; the *structure* (which events dominate, and that a
large share of total GPU energy is time-proportional) is what the
paper's Figure 18 depends on — its energy saving tracks the speedup
("reduction in energy comes mainly from a decrease in L2 accesses and
execution time", §V-C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and static power (W)."""

    l1_access_nj: float = 0.010       # 16 KiB 4-way SRAM read
    l2_access_nj: float = 0.075       # 1 MiB 8-way SRAM read
    dram_access_nj: float = 2.5       # 64 B LPDDR transfer
    #: Frame-buffer writeback (64 B streaming store to DRAM).
    framebuffer_write_nj: float = 2.5
    vertex_cache_access_nj: float = 0.008
    tile_cache_access_nj: float = 0.020
    sc_issue_nj: float = 0.030        # one SIMD issue cycle (4 lanes)
    fixed_function_quad_nj: float = 0.012  # rasterize+EZ+blend per quad
    #: Leakage + clock distribution for the whole GPU at 1 V / 32 nm,
    #: calibrated so the time-proportional share of total GPU energy is
    #: ~35% (the share McPAT reports for this class of mobile GPU, and
    #: the share under which the paper's Figure 17/18 correlation —
    #: energy savings tracking speedup — reproduces).
    static_power_w: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "l1_access_nj", "l2_access_nj", "dram_access_nj",
            "framebuffer_write_nj",
            "vertex_cache_access_nj", "tile_cache_access_nj",
            "sc_issue_nj", "fixed_function_quad_nj", "static_power_w",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in millijoules."""

    components_mj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mj(self) -> float:
        return sum(self.components_mj.values())

    @property
    def dynamic_mj(self) -> float:
        return self.total_mj - self.components_mj.get("static", 0.0)

    def fraction(self, component: str) -> float:
        total = self.total_mj
        return self.components_mj.get(component, 0.0) / total if total else 0.0


class EnergyModel:
    """Accumulates event counts into a frame-energy breakdown."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.params = params

    def frame_energy(
        self,
        l1_accesses: int,
        l2_accesses: int,
        dram_accesses: int,
        vertex_accesses: int,
        tile_accesses: int,
        sc_issue_cycles: int,
        quads_processed: int,
        frame_cycles: int,
        frequency_mhz: int,
        framebuffer_write_lines: int = 0,
    ) -> EnergyBreakdown:
        """Total GPU energy for one frame.

        ``sc_issue_cycles`` is the sum of busy cycles over all SCs;
        ``frame_cycles`` the wall-clock frame length in cycles.
        """
        p = self.params
        frame_seconds = frame_cycles / (frequency_mhz * 1e6)
        components = {
            "l1_texture": l1_accesses * p.l1_access_nj * 1e-6,
            "l2": l2_accesses * p.l2_access_nj * 1e-6,
            "dram": dram_accesses * p.dram_access_nj * 1e-6,
            "framebuffer": (
                framebuffer_write_lines * p.framebuffer_write_nj * 1e-6
            ),
            "vertex_cache": vertex_accesses * p.vertex_cache_access_nj * 1e-6,
            "tile_cache": tile_accesses * p.tile_cache_access_nj * 1e-6,
            "shader_cores": sc_issue_cycles * p.sc_issue_nj * 1e-6,
            "fixed_function": quads_processed * p.fixed_function_quad_nj * 1e-6,
            "static": p.static_power_w * frame_seconds * 1e3,
        }
        return EnergyBreakdown(components_mj=components)
