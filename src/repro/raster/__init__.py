"""The Raster Pipeline: setup, rasterization, Z-test, shading trace,
blending, and the coupled/decoupled timing models.
"""

from repro.raster.setup import ScreenPrimitive, ScreenVertex, setup_primitive
from repro.raster.fragment import Quad, QuadKey
from repro.raster.rasterizer import Rasterizer
from repro.raster.zbuffer import ZBuffer
from repro.raster.color_buffer import ColorBuffer
from repro.raster.blending import BlendingUnit
from repro.raster.pipeline import (
    FrameTiming,
    RasterPipelineModel,
    SubtileWork,
    TileWork,
)

__all__ = [
    "ScreenVertex", "ScreenPrimitive", "setup_primitive",
    "Quad", "QuadKey",
    "Rasterizer", "ZBuffer", "ColorBuffer", "BlendingUnit",
    "RasterPipelineModel", "FrameTiming", "SubtileWork", "TileWork",
]
