"""The Blending Unit.

"This unit computes the final color of pixels depending on the
transparency of each quad, and stores them in the Color Buffer."
Opaque quads replace; transparent quads alpha-blend over the stored
color with a constant source alpha (the synthetic shaders carry no
per-fragment alpha channel).
"""

from __future__ import annotations

from typing import Tuple

from repro.raster.color_buffer import ColorBuffer
from repro.errors import WorkloadError

#: Source alpha used for blended (transparent) draws.
DEFAULT_BLEND_ALPHA = 0.5


class BlendingUnit:
    """Per-pixel color combination into the Color Buffer."""

    def __init__(self, alpha: float = DEFAULT_BLEND_ALPHA):
        if not 0.0 <= alpha <= 1.0:
            raise WorkloadError("alpha must be within [0, 1]")
        self.alpha = alpha
        self.pixels_blended = 0
        self.pixels_written = 0

    def emit(
        self,
        buffer: ColorBuffer,
        px: int,
        py: int,
        color: Tuple[float, float, float],
        blend: bool,
    ) -> None:
        """Write one shaded pixel into the tile's Color Buffer."""
        if blend:
            dst = buffer.read(px, py)
            out = tuple(
                self.alpha * c + (1.0 - self.alpha) * d
                for c, d in zip(color, dst)
            )
            buffer.write(px, py, out)
            self.pixels_blended += 1
        else:
            buffer.write(px, py, color)
            self.pixels_written += 1
