"""The tile-sized, multi-banked Color Buffer and the frame buffer.

The Color Buffer holds one tile's colors on chip and is flushed to the
Frame Buffer in main memory once the tile completes.  It is partitioned
into four banks; the Decoupled-Barrier architecture's first hardware
change is per-bank flushing with a per-bank Tile ID (§III-E), which this
class supports explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.tile_order import TileCoord
from repro.errors import ConfigError


class ColorBuffer:
    """On-chip color storage for one tile, with per-bank flush."""

    def __init__(self, tile_size: int, num_banks: int = 4):
        if tile_size <= 0 or tile_size % 2:
            raise ConfigError("tile_size must be a positive even number")
        self.tile_size = tile_size
        self.num_banks = num_banks
        self.colors = np.zeros((tile_size, tile_size, 3), dtype=np.float64)
        #: Decoupling hook: the tile each bank currently belongs to.
        self.bank_tile_ids: Dict[int, Optional[TileCoord]] = {
            b: None for b in range(num_banks)
        }
        self.flushes = 0
        self.bank_flushes = 0

    def clear(self, background: Tuple[float, float, float] = (0, 0, 0)) -> None:
        self.colors[:] = background

    def write(self, px: int, py: int, color: Tuple[float, float, float]) -> None:
        """Store a final pixel color (within-tile coordinates)."""
        self.colors[py, px] = color

    def read(self, px: int, py: int) -> Tuple[float, float, float]:
        return tuple(self.colors[py, px])

    def flush_tile(
        self, framebuffer: "FrameBuffer", tile: TileCoord
    ) -> None:
        """Baseline behaviour: flush the whole tile (all banks) at once."""
        framebuffer.store_tile(tile, self.colors)
        self.flushes += 1

    def flush_bank(
        self,
        framebuffer: "FrameBuffer",
        tile: TileCoord,
        bank: int,
        bank_mask: np.ndarray,
    ) -> None:
        """Decoupled behaviour: flush one bank's pixels of one tile.

        ``bank_mask`` is a (tile_size, tile_size) boolean array marking
        the pixels owned by ``bank`` — the subtile shape decided by the
        quad grouping.
        """
        framebuffer.store_partial(tile, self.colors, bank_mask)
        self.bank_tile_ids[bank] = tile
        self.bank_flushes += 1


class FrameBuffer:
    """Full-frame color storage in (simulated) main memory."""

    def __init__(self, width: int, height: int, tile_size: int):
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.image = np.zeros((height, width, 3), dtype=np.float64)

    def _tile_region(self, tile: TileCoord) -> Tuple[slice, slice]:
        x0 = tile[0] * self.tile_size
        y0 = tile[1] * self.tile_size
        return (
            slice(y0, min(y0 + self.tile_size, self.height)),
            slice(x0, min(x0 + self.tile_size, self.width)),
        )

    def store_tile(self, tile: TileCoord, colors: np.ndarray) -> None:
        ys, xs = self._tile_region(tile)
        h = ys.stop - ys.start
        w = xs.stop - xs.start
        self.image[ys, xs] = colors[:h, :w]

    def store_partial(
        self, tile: TileCoord, colors: np.ndarray, mask: np.ndarray
    ) -> None:
        ys, xs = self._tile_region(tile)
        h = ys.stop - ys.start
        w = xs.stop - xs.start
        region = self.image[ys, xs]
        clipped = mask[:h, :w]
        region[clipped] = colors[:h, :w][clipped]

    def to_ppm(self) -> bytes:
        """Encode as a binary PPM image (for the examples)."""
        clamped = np.clip(self.image * 255.0, 0, 255).astype(np.uint8)
        header = f"P6 {self.width} {self.height} 255\n".encode()
        return header + clamped.tobytes()
