"""Fragment and quad records — the unit of scheduling and of the trace.

"The fragments of every four adjacent pixels are grouped to form a
*quad*"; quads are the threads/warps the scheduler distributes over the
shader cores.  A :class:`Quad` captures everything the replay passes
need: where it sits (tile + in-tile quad coordinates), what it costs
(shader ALU cycles, texture sample count) and exactly which texture
cache lines it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Tuple

from repro.core.tile_order import TileCoord

#: Pixel offsets within a quad, in (dx, dy) raster order.
QUAD_PIXEL_OFFSETS = ((0, 0), (1, 0), (0, 1), (1, 1))


@dataclass(frozen=True)
class QuadKey:
    """Identity of a quad location on screen."""

    tile: TileCoord
    qx: int
    qy: int

    def pixel_origin(self, tile_size: int) -> Tuple[int, int]:
        """Screen coordinates of the quad's top-left pixel."""
        return (
            self.tile[0] * tile_size + self.qx * 2,
            self.tile[1] * tile_size + self.qy * 2,
        )


class Quad(NamedTuple):
    """One shaded quad of the frame trace.

    ``coverage`` flags which of the four pixels survived rasterization
    and the Early-Z test; a quad only exists if at least one survived.
    ``texture_lines`` is the ordered, de-duplicated tuple of texture
    cache-line numbers its samples touch (all four lanes, including
    helper lanes' contributions, as produced by the sampler).

    A ``NamedTuple`` rather than a dataclass: the render pass creates
    hundreds of thousands per frame, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    tile: TileCoord
    qx: int
    qy: int
    primitive_id: int
    texture_id: int
    coverage: Tuple[bool, bool, bool, bool]
    alu_cycles: int
    texture_lines: Tuple[int, ...]
    lod: float = 0.0
    blend: bool = False

    @property
    def covered_pixels(self) -> int:
        return sum(self.coverage)

    @property
    def key(self) -> QuadKey:
        return QuadKey(self.tile, self.qx, self.qy)

    @property
    def compute_cycles(self) -> int:
        """Total SC issue cycles for this quad (ALU + texture issues)."""
        return self.alu_cycles + len(self.texture_lines)
