"""Barycentric and perspective-correct attribute interpolation."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.raster.setup import ScreenPrimitive


def barycentric_grid(
    ax, ay, bx, by, cx, cy, area2, px: np.ndarray, py: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`barycentric` over pixel grids.

    Vertex coordinates and ``area2`` are broadcastable against the
    pixel-centre grids ``px``/``py`` (the fast rasterizer passes
    ``(P, 1, 1)`` per-primitive columns against ``(1, h, w)`` grids).
    The expressions mirror the scalar weights term for term, so every
    weight is bit-identical.
    """
    w0 = ((bx - px) * (cy - py) - (cx - px) * (by - py)) / area2
    w1 = ((cx - px) * (ay - py) - (ax - px) * (cy - py)) / area2
    w2 = 1.0 - w0 - w1
    return w0, w1, w2


def interpolate_uv_grid(
    w0: np.ndarray, w1: np.ndarray, w2: np.ndarray,
    a_inv_w, b_inv_w, c_inv_w,
    a_uw, b_uw, c_uw, a_vw, b_vw, c_vw,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized perspective-correct UVs, helper lanes included.

    Matches the scalar rasterizer's guarded divide: a zero interpolated
    ``1/w`` divides by 1.0 instead (the lane is outside any valid
    projection and only ever feeds LOD derivatives).
    """
    inv_w = w0 * a_inv_w + w1 * b_inv_w + w2 * c_inv_w
    safe = np.where(inv_w == 0.0, 1.0, inv_w)
    u = (w0 * a_uw + w1 * b_uw + w2 * c_uw) / safe
    v = (w0 * a_vw + w1 * b_vw + w2 * c_vw) / safe
    return u, v


def barycentric(
    primitive: ScreenPrimitive, px: float, py: float
) -> Tuple[float, float, float]:
    """Normalized barycentric weights of point (px, py).

    Weights sum to 1; points outside the triangle get weights outside
    [0, 1] (extrapolation), which is exactly what helper lanes need.
    """
    a, b, c = primitive.vertices
    area2 = primitive.area2
    if area2 == 0.0:
        raise ZeroDivisionError("degenerate primitive")
    w0 = ((b.x - px) * (c.y - py) - (c.x - px) * (b.y - py)) / area2
    w1 = ((c.x - px) * (a.y - py) - (a.x - px) * (c.y - py)) / area2
    w2 = 1.0 - w0 - w1
    return w0, w1, w2


def interpolate_depth(
    primitive: ScreenPrimitive, weights: Tuple[float, float, float]
) -> float:
    """Screen-space (linear) depth interpolation."""
    a, b, c = primitive.vertices
    w0, w1, w2 = weights
    return w0 * a.z + w1 * b.z + w2 * c.z


def interpolate_uv(
    primitive: ScreenPrimitive, weights: Tuple[float, float, float]
) -> Tuple[float, float]:
    """Perspective-correct texture coordinates at the weighted point."""
    a, b, c = primitive.vertices
    w0, w1, w2 = weights
    inv_w = w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w
    if inv_w == 0.0:
        return (0.0, 0.0)
    u = (w0 * a.u_over_w + w1 * b.u_over_w + w2 * c.u_over_w) / inv_w
    v = (w0 * a.v_over_w + w1 * b.v_over_w + w2 * c.v_over_w) / inv_w
    return (u, v)


def interpolate_color(
    primitive: ScreenPrimitive, weights: Tuple[float, float, float]
) -> Tuple[float, float, float]:
    """Perspective-correct vertex-color interpolation."""
    a, b, c = primitive.vertices
    w0, w1, w2 = weights
    inv_w = w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w
    if inv_w == 0.0:
        return (0.0, 0.0, 0.0)
    return tuple(
        (w0 * a.color_over_w[i] + w1 * b.color_over_w[i]
         + w2 * c.color_over_w[i]) / inv_w
        for i in range(3)
    )
