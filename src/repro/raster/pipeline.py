"""Raster-pipeline timing: coupled barriers vs the Decoupled-Barrier
architecture (paper §II-C, §III-E, Figures 4 and 10).

The back end of the Raster Pipeline has three stages — Early-Z, Fragment
and Blending — each with four parallel units (one per Z-/Color-Buffer
bank, i.e. one per subtile slot).  Quads stream between stages through
FIFO queues, so a stage may begin a tile as soon as the previous stage
has started producing it.

*Coupled* (baseline): a barrier per stage forces **all four units** of a
stage to finish tile ``t`` before any of them starts tile ``t+1``.  The
per-tile cost of a stage is therefore the **max** over its units, and
fast units idle ("each SC will have to wait until the last SC finishes
its subtile").

*Decoupled* (DTexL): per-bank Color-Buffer flush and per-unit barriers
let **each unit chain its own subtiles** independently; a unit's cost
accumulates as the **sum** over tiles, and the frame ends when the
slowest chain drains.  The Tile Fetcher still serialises tile starts,
and the per-unit input FIFOs bound the skew: the front end distributes
tile ``t``'s quads only once every unit has started tile
``t - fifo_depth`` (a full FIFO for one bank stalls the rasterizer and
therefore every bank's feed).

The recurrences used (per tile ``t``, stage ``s``, unit ``b``)::

    coupled:    start[t][s]    = max(end[t-1][s],     avail[t][s])
                end[t][s]      = start[t][s] + max_b(work[t][s][b])
    decoupled:  start[t][s][b] = max(end[t-1][s][b],  avail[t][s][b])
                end[t][s][b]   = start[t][s][b] + work[t][s][b]

where ``avail`` is when the upstream stage began producing the tile
(streaming through the FIFO, one-cycle forwarding), and a stage can never
finish before its input has finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.shader.shader_core import ShaderCore, WarpCost


@dataclass
class SubtileWork:
    """Work of one subtile (one unit/SC) for one tile."""

    num_quads: int = 0
    compute_cycles: int = 0
    stall_cycles: int = 0

    def add_quad(self, compute: int, stall: int) -> None:
        self.num_quads += 1
        self.compute_cycles += compute
        self.stall_cycles += stall

    def warp_costs(self) -> List[WarpCost]:
        """Uniform per-warp split (the replay keeps only totals)."""
        if self.num_quads == 0:
            return []
        base_c, extra_c = divmod(self.compute_cycles, self.num_quads)
        base_s, extra_s = divmod(self.stall_cycles, self.num_quads)
        return [
            WarpCost(
                base_c + (1 if i < extra_c else 0),
                base_s + (1 if i < extra_s else 0),
            )
            for i in range(self.num_quads)
        ]


@dataclass
class TileWork:
    """All per-tile inputs to the timing model."""

    tile: TileCoord
    step: int
    fetch_cycles: int
    subtiles: List[SubtileWork]

    @property
    def total_quads(self) -> int:
        return sum(s.num_quads for s in self.subtiles)


@dataclass
class FrameTiming:
    """Timing outcome of one frame under one pipeline configuration."""

    total_cycles: int
    sc_busy_cycles: List[int]
    #: Issue (dynamic-work) cycles per SC — what the energy model charges.
    sc_issue_cycles: List[int]
    #: Per tile, per SC: Fragment-stage cycles (feeds the Fig 14 violins).
    per_tile_sc_cycles: List[List[int]]
    fetch_cycles_total: int = 0
    #: Per tile, per stage (EZ, FRAG, BLEND), per unit: the cycle at
    #: which that unit completed the stage for that tile.  This is the
    #: barrier-ordering evidence the trace sanitizer audits: stage
    #: completions must be non-decreasing along each unit's chain and
    #: ordered EZ <= FRAG <= BLEND within a tile.
    per_tile_stage_ends: List[List[List[int]]] = field(default_factory=list)

    @property
    def sc_idle_cycles(self) -> List[int]:
        return [self.total_cycles - busy for busy in self.sc_busy_cycles]

    def fps(self, frequency_mhz: int) -> float:
        """Frames per second at the given clock."""
        if self.total_cycles == 0:
            return float("inf")
        return frequency_mhz * 1e6 / self.total_cycles


class RasterPipelineModel:
    """Evaluates frame time for coupled or decoupled barrier pipelines."""

    def __init__(self, config: GPUConfig, decoupled: bool):
        self.config = config
        self.decoupled = decoupled
        self.cores = [
            ShaderCore(config.shader) for _ in range(config.num_shader_cores)
        ]

    # -- stage-work helpers -----------------------------------------------------

    def _fragment_cycles(self, subtile: SubtileWork, core: ShaderCore) -> int:
        # execute_totals == execute_subtile(subtile.warp_costs()): the
        # uniform warp split sums back to exactly these totals.
        return core.execute_totals(
            subtile.num_quads,
            subtile.compute_cycles,
            subtile.stall_cycles,
        ).total_cycles

    def _fixed_stage_cycles(self, subtile: SubtileWork) -> int:
        """Early-Z / Blending unit time: fixed throughput per quad."""
        return -(-subtile.num_quads // self.config.stage_unit_quads_per_cycle)

    def _flush_cycles(self, whole_tile: bool) -> int:
        """Color Buffer flush time after Blending finishes a (sub)tile.

        Coupled: the whole tile's Color Buffer flushes before Blending
        may start the next tile.  Decoupled: each bank flushes its
        quarter independently (the per-bank Tile ID change of §III-E).
        """
        config = self.config
        pixels = config.tile_size * config.tile_size
        if not whole_tile:
            pixels //= config.num_shader_cores
        total_bytes = pixels * config.color_bytes_per_pixel
        return -(-total_bytes // config.flush_bytes_per_cycle)

    # -- the model ---------------------------------------------------------------

    def simulate(self, tiles: Sequence[TileWork]) -> FrameTiming:
        """Run the timing recurrence over a frame's tiles."""
        n_units = self.config.num_shader_cores
        for core in self.cores:
            core.reset()

        per_tile_sc: List[List[int]] = []
        per_tile_stage_ends: List[List[List[int]]] = []
        fetch_total = 0

        # Completion times; stage order: EZ(0), FRAG(1), BLEND(2).
        if self.decoupled:
            end = [[0] * n_units for _ in range(3)]
            frag_starts: List[List[int]] = []  # per tile, per unit
        else:
            end_stage = [0, 0, 0]
        fetch_end = 0
        last_end = 0

        # Hot loop: these depend only on the (frozen) config, so resolve
        # them once rather than per tile.
        fifo_depth = self.config.fifo_depth
        if self.decoupled:
            bank_flush = self._flush_cycles(whole_tile=False)
        else:
            tile_flush = self._flush_cycles(whole_tile=True)

        for tile_index, tile_work in enumerate(tiles):
            fetch_end += tile_work.fetch_cycles
            fetch_total += tile_work.fetch_cycles

            ez = [self._fixed_stage_cycles(s) for s in tile_work.subtiles]
            frag = [
                self._fragment_cycles(s, self.cores[b])
                for b, s in enumerate(tile_work.subtiles)
            ]
            blend = [self._fixed_stage_cycles(s) for s in tile_work.subtiles]
            per_tile_sc.append(frag)
            work = [ez, frag, blend]

            if self.decoupled:
                # FIFO skew bound: tile t's quads are distributed only
                # once every unit's Fragment stage has started consuming
                # tile t - fifo_depth (its FIFO slot is then freed).
                gate = 0
                if tile_index >= fifo_depth:
                    gate = max(frag_starts[tile_index - fifo_depth])
                tile_starts = [0] * n_units
                for b in range(n_units):
                    avail = max(fetch_end, gate)
                    for s in range(3):
                        begin = max(end[s][b], avail)
                        if s == 1:
                            tile_starts[b] = begin
                        finish = begin + work[s][b]
                        if s > 0:
                            # Cannot outrun the producing stage's last quad.
                            finish = max(finish, prev_finish + 1)
                        if s == 2:
                            # The bank flushes its own quarter before it
                            # may begin the next subtile.
                            finish += bank_flush
                        end[s][b] = finish
                        avail = begin + 1  # streaming through the FIFO
                        prev_finish = finish
                    last_end = max(last_end, end[2][b])
                frag_starts.append(tile_starts)
                per_tile_stage_ends.append([row[:] for row in end])
            else:
                avail = fetch_end
                for s in range(3):
                    begin = max(end_stage[s], avail)
                    finish = begin + max(work[s]) if work[s] else begin
                    if s > 0:
                        finish = max(finish, prev_finish + 1)
                    if s == 2:
                        # Whole-tile Color Buffer flush before the next
                        # tile may enter Blending.
                        finish += tile_flush
                    end_stage[s] = finish
                    avail = begin + 1
                    prev_finish = finish
                last_end = max(last_end, end_stage[2])
                # Coupled barriers synchronise all units per stage, so
                # every unit shares the stage's completion time.
                per_tile_stage_ends.append(
                    [[end_stage[s]] * n_units for s in range(3)]
                )

        return FrameTiming(
            total_cycles=last_end,
            sc_busy_cycles=[core.busy_cycles for core in self.cores],
            sc_issue_cycles=[core.issue_cycles for core in self.cores],
            per_tile_sc_cycles=per_tile_sc,
            fetch_cycles_total=fetch_total,
            per_tile_stage_ends=per_tile_stage_ends,
        )
