"""The Rasterizer: primitives -> covered quads, through Early-Z.

"The Rasterizer takes each primitive from the FIFO queue and identifies
which pixels of the current tile are overlapped by the primitive...  The
fragments of every four adjacent pixels are grouped to form a quad."

The implementation is vectorized per (primitive, tile): barycentric
weights, coverage, depth and perspective-correct UVs are evaluated with
numpy over the primitive's quad-aligned bounding box inside the tile,
then surviving 2x2 blocks are emitted as :class:`~repro.raster.fragment.Quad`
records carrying their texture cache-line footprints.

UV derivatives are taken across each quad's 2x2 lanes — including helper
lanes outside the triangle — exactly as real GPU quads compute mip LOD.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from itertools import repeat
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer
from repro.raster.fragment import Quad
from repro.raster.interpolation import barycentric_grid, interpolate_uv_grid
from repro.raster.setup import ScreenBatch, ScreenPrimitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.sampler import FilterMode, Sampler, compute_lod
from repro.texture.texture import Texture

#: Coverage tuple for each 4-bit lane code (lane 0 is the high bit), so
#: the quad emission loop looks coverage up instead of building tuples.
COVERAGE_TUPLES = tuple(
    tuple(bool((code >> shift) & 1) for shift in (3, 2, 1, 0))
    for code in range(16)
)

_COVERAGE_WEIGHTS = np.array([8, 4, 2, 1], dtype=np.int64)

#: What ``Quad._make`` does, without its Python-level wrapper frame —
#: the emission loop builds hundreds of thousands of quads per frame.
_NEW_QUAD = partial(tuple.__new__, Quad)


@dataclass
class PendingTileQuads:
    """One tile's rasterized quads awaiting batched footprint assembly.

    Everything the final :class:`Quad` records need except the texture
    footprints, which are computed frame-wide per (texture, samples)
    group by :meth:`Rasterizer.finalize_quads_fast`.
    """

    tile: TileCoord
    qx: np.ndarray
    qy: np.ndarray
    prim_row: np.ndarray
    coverage_code: np.ndarray
    covered: int
    lane_u: np.ndarray
    lane_v: np.ndarray


class Rasterizer:
    """Rasterizes the primitives of one tile at a time."""

    def __init__(
        self,
        config: GPUConfig,
        textures: Dict[int, Texture],
        sampler: Optional[Sampler] = None,
    ):
        self.config = config
        self.textures = textures
        self.sampler = sampler or Sampler()
        self.quads_emitted = 0
        self.pixels_shaded = 0

    # -- public API -------------------------------------------------------------

    def rasterize_tile(
        self,
        tile: TileCoord,
        primitives: List[ScreenPrimitive],
        zbuffer: ZBuffer,
        color_buffer: Optional[ColorBuffer] = None,
        blender: Optional[BlendingUnit] = None,
    ) -> List[Quad]:
        """Produce the tile's shaded-quad stream in primitive order.

        ``zbuffer`` must be cleared by the caller before the first
        primitive of the tile.  When ``color_buffer`` is given, final
        pixel colors are also computed (image output mode).
        """
        quads: List[Quad] = []
        for primitive in primitives:
            quads.extend(
                self._rasterize_primitive(
                    tile, primitive, zbuffer, color_buffer, blender
                )
            )
        return quads

    def rasterize_tile_fast(
        self,
        tile: TileCoord,
        batch: ScreenBatch,
        rows: np.ndarray,
        zbuffer: ZBuffer,
    ) -> Optional[PendingTileQuads]:
        """Whole-tile rasterization of all of a tile's primitives at once.

        Evaluates the three edge functions, depth and perspective UVs of
        every primitive over the full tile pixel grid in one shot, runs
        Early-Z as an exclusive running minimum over the primitive axis
        (depth updates are order-independent ``min`` folds, so the
        sequential per-primitive test collapses exactly), and extracts
        covered 2x2 quads vectorized.  Bit-identical to running
        :meth:`rasterize_tile` over the same primitive list: every
        arithmetic expression reproduces the scalar path's association
        order, the full-grid evaluation only adds pixels the per-region
        masks switch off, and the quad emission order (primitive, then
        block row-major) is ``np.nonzero``'s C order.

        ``zbuffer`` only accumulates the ``tests``/``passes`` counters
        (the depth state lives in the running minimum here).
        """
        config = self.config
        ts = config.tile_size
        tile_x0, tile_y0 = tile[0] * ts, tile[1] * ts
        tile_x1 = min(tile_x0 + ts, config.screen_width)
        tile_y1 = min(tile_y0 + ts, config.screen_height)

        # Quad-aligned clip region per primitive (the scalar
        # _tile_clip_region, vectorized; floats first so huge
        # coordinates cannot overflow the int cast — any such row is
        # empty or clamped to the tile bound before casting).
        vx = batch.x[rows]
        vy = batch.y[rows]
        fx0 = np.maximum(float(tile_x0), np.floor(np.min(vx, axis=1)))
        fy0 = np.maximum(float(tile_y0), np.floor(np.min(vy, axis=1)))
        fx1 = np.minimum(float(tile_x1), np.ceil(np.max(vx, axis=1)) + 1.0)
        fy1 = np.minimum(float(tile_y1), np.ceil(np.max(vy, axis=1)) + 1.0)
        valid = (fx0 < fx1) & (fy0 < fy1) & (batch.area2[rows] != 0.0)
        if not valid.all():
            rows = rows[valid]
            if not len(rows):
                return None
            fx0, fy0 = fx0[valid], fy0[valid]
            fx1, fy1 = fx1[valid], fy1[valid]
        x0 = fx0.astype(np.int64)
        y0 = fy0.astype(np.int64)
        x1 = fx1.astype(np.int64)
        y1 = fy1.astype(np.int64)
        x0 -= (x0 - tile_x0) % 2
        y0 -= (y0 - tile_y0) % 2
        x1 += (x1 - tile_x0) % 2
        y1 += (y1 - tile_y0) % 2
        x1 = np.minimum(x1, tile_x0 + ts)
        y1 = np.minimum(y1, tile_y0 + ts)

        # Pixel-centre grids over the whole tile; the scalar path's
        # region grid is the same values restricted to the region.
        px = (np.arange(tile_x0, tile_x0 + ts, dtype=np.float64) + 0.5)[
            None, None, :
        ]
        py = (np.arange(tile_y0, tile_y0 + ts, dtype=np.float64) + 0.5)[
            None, :, None
        ]
        col = np.arange(tile_x0, tile_x0 + ts, dtype=np.int64)
        row_pix = np.arange(tile_y0, tile_y0 + ts, dtype=np.int64)

        area2 = batch.area2[rows][:, None, None]
        vx = batch.x[rows]
        vy = batch.y[rows]
        ax, bx, cx = (
            vx[:, 0][:, None, None], vx[:, 1][:, None, None],
            vx[:, 2][:, None, None],
        )
        ay, by, cy = (
            vy[:, 0][:, None, None], vy[:, 1][:, None, None],
            vy[:, 2][:, None, None],
        )
        w0, w1, w2 = barycentric_grid(ax, ay, bx, by, cx, cy, area2, px, py)
        inside = (w0 >= 0.0) & (w1 >= 0.0) & (w2 >= 0.0)

        # Region rect + screen clip (the scalar path only applies the
        # screen clip on overhang, but it is a no-op elsewhere).
        colm = (col >= x0[:, None]) & (col < x1[:, None])
        rowm = (row_pix >= y0[:, None]) & (row_pix < y1[:, None])
        colm &= col < config.screen_width
        rowm &= row_pix < config.screen_height
        inside &= rowm[:, :, None]
        inside &= colm[:, None, :]

        vz = batch.z[rows]
        z = (
            w0 * vz[:, 0][:, None, None]
            + w1 * vz[:, 1][:, None, None]
            + w2 * vz[:, 2][:, None, None]
        )
        inside &= (z >= 0.0) & (z <= 1.0)

        # Early-Z.  The scalar depth update is an elementwise min fold
        # over primitives, so "depth before primitive k" is an
        # exclusive running minimum of the depth-write contributions.
        contrib = np.where(
            inside & batch.depth_write[rows][:, None, None], z, np.inf
        )
        running = np.minimum.accumulate(contrib, axis=0)
        before = np.empty_like(running)
        before[0] = np.inf
        before[1:] = running[:-1]
        tested = inside & (z < before)
        zbuffer.tests += int(inside.sum())
        zbuffer.passes += int(tested.sum())
        passed = np.where(batch.late_z[rows][:, None, None], inside, tested)
        if not passed.any():
            return None

        # 2x2 block reduction over every primitive at once; nonzero's
        # C order is the scalar (primitive, by, bx) emission order.
        half = ts // 2
        blocks = passed.reshape(-1, half, 2, half, 2).transpose(0, 1, 3, 2, 4)
        kidx, qy, qx = np.nonzero(blocks.any(axis=(3, 4)))
        if not len(kidx):
            return None
        lanes = blocks[kidx, qy, qx].reshape(-1, 4)
        codes = (lanes * _COVERAGE_WEIGHTS).sum(axis=1)

        # Perspective UVs only at the emitted quads' lanes, in footprint
        # order (0,0),(1,0),(0,1),(1,1): gather the barycentric weights
        # at the 2x2 block (region clamps never bind — regions are
        # even-sized — so the lanes are exactly the block) and apply the
        # scalar interpolation expressions there.  Same inputs, same
        # operations — bit-identical to interpolating the whole grid.
        def block_lanes(grid: np.ndarray) -> np.ndarray:
            view = grid.reshape(-1, half, 2, half, 2)
            return view.transpose(0, 1, 3, 2, 4)[kidx, qy, qx].reshape(-1, 4)

        lw0 = block_lanes(w0)
        lw1 = block_lanes(w1)
        lw2 = block_lanes(w2)
        prim = rows[kidx]
        vw = batch.inv_w[prim]
        uw = batch.u_over_w[prim]
        vvw = batch.v_over_w[prim]
        lane_u, lane_v = interpolate_uv_grid(
            lw0, lw1, lw2,
            vw[:, :1], vw[:, 1:2], vw[:, 2:],
            uw[:, :1], uw[:, 1:2], uw[:, 2:],
            vvw[:, :1], vvw[:, 1:2], vvw[:, 2:],
        )
        return PendingTileQuads(
            tile=tile,
            qx=qx,
            qy=qy,
            prim_row=prim,
            coverage_code=codes,
            covered=int(lanes.sum()),
            lane_u=lane_u,
            lane_v=lane_v,
        )

    def finalize_quads_fast(
        self, batch: ScreenBatch, pending: List[PendingTileQuads]
    ) -> Dict[TileCoord, List[Quad]]:
        """Frame-level footprint batching + quad emission.

        Quads from every tile are grouped by (texture, samples) so the
        mip-LOD and cache-line math runs in a handful of vectorized
        calls per frame; the per-quad cache-line rows are then deduped
        in first-visit order and wrapped into :class:`Quad` records in
        each tile's emission order.
        """
        out: Dict[TileCoord, List[Quad]] = {}
        if not pending:
            return out
        rows_all = np.concatenate([p.prim_row for p in pending])
        lane_u = np.concatenate([p.lane_u for p in pending])
        lane_v = np.concatenate([p.lane_v for p in pending])
        tex_ids = batch.texture_id[rows_all]
        samples = batch.texture_samples[rows_all]
        total = len(rows_all)
        lods = np.zeros(total, dtype=np.float64)
        lines: List[Tuple[int, ...]] = [()] * total
        # One flat loop over (texture, samples) groups: the pairing key
        # is unique because samples lies in [0, stride).
        stride = int(samples.max(initial=0)) + 1
        group_key = tex_ids * stride + samples
        textures_get = self.textures.get
        footprints_batch = self.sampler.quad_footprints_batch
        for key in np.unique(group_key).tolist():
            count = key % stride
            texture = textures_get(key // stride)
            if texture is None or count == 0:
                continue
            idx = np.nonzero(group_key == key)[0]
            group_lods, group_lines = footprints_batch(
                texture, lane_u[idx], lane_v[idx], count
            )
            lods[idx] = group_lods
            # First-visit dedup, vectorized: a column survives when
            # it differs from every earlier column in its row —
            # the order ``dict.fromkeys`` preserves.
            first = np.ones(group_lines.shape, dtype=bool)
            for j in range(1, group_lines.shape[1]):
                first[:, j] = (
                    group_lines[:, :j] != group_lines[:, j:j + 1]
                ).all(axis=1)
            flat = group_lines[first].tolist()
            bounds = np.cumsum(first.sum(axis=1)).tolist()
            start = 0
            for i, end in zip(idx.tolist(), bounds):
                lines[i] = tuple(flat[start:end])
                start = end

        lods_list = lods.tolist()
        cursor = 0
        for p in pending:
            count = len(p.prim_row)
            stop = cursor + count
            tile = p.tile
            out[tile] = list(map(_NEW_QUAD, zip(
                repeat(tile), p.qx.tolist(), p.qy.tolist(),
                batch.pid[p.prim_row].tolist(),
                batch.texture_id[p.prim_row].tolist(),
                map(COVERAGE_TUPLES.__getitem__, p.coverage_code.tolist()),
                batch.alu_cycles[p.prim_row].tolist(),
                lines[cursor:stop], lods_list[cursor:stop],
                batch.blend[p.prim_row].tolist(),
            )))
            self.quads_emitted += count
            self.pixels_shaded += p.covered
            cursor = stop
        return out

    # -- internals --------------------------------------------------------------

    def _tile_clip_region(
        self, tile: TileCoord, primitive: ScreenPrimitive
    ) -> Optional[Tuple[int, int, int, int]]:
        """Quad-aligned pixel rect of the primitive inside the tile.

        Returns (x0, y0, x1, y1) in screen pixels, end-exclusive, snapped
        outward to 2-pixel quad boundaries, or None when empty.
        """
        ts = self.config.tile_size
        tile_x0, tile_y0 = tile[0] * ts, tile[1] * ts
        tile_x1 = min(tile_x0 + ts, self.config.screen_width)
        tile_y1 = min(tile_y0 + ts, self.config.screen_height)
        min_x, min_y, max_x, max_y = primitive.bbox()
        x0 = max(tile_x0, int(np.floor(min_x)))
        y0 = max(tile_y0, int(np.floor(min_y)))
        x1 = min(tile_x1, int(np.ceil(max_x)) + 1)
        y1 = min(tile_y1, int(np.ceil(max_y)) + 1)
        if x0 >= x1 or y0 >= y1:
            return None
        # Snap outward to the quad grid (anchored at the tile origin,
        # which is always even).
        x0 -= (x0 - tile_x0) % 2
        y0 -= (y0 - tile_y0) % 2
        x1 += (x1 - tile_x0) % 2
        y1 += (y1 - tile_y0) % 2
        x1 = min(x1, tile_x0 + ts)
        y1 = min(y1, tile_y0 + ts)
        return x0, y0, x1, y1

    def _rasterize_primitive(
        self,
        tile: TileCoord,
        primitive: ScreenPrimitive,
        zbuffer: ZBuffer,
        color_buffer: Optional[ColorBuffer],
        blender: Optional[BlendingUnit],
    ) -> List[Quad]:
        region = self._tile_clip_region(tile, primitive)
        if region is None or primitive.area2 == 0.0:
            return []
        x0, y0, x1, y1 = region
        ts = self.config.tile_size
        tile_x0, tile_y0 = tile[0] * ts, tile[1] * ts

        # Pixel-centre grids.
        xs = np.arange(x0, x1, dtype=np.float64) + 0.5
        ys = np.arange(y0, y1, dtype=np.float64) + 0.5
        px, py = np.meshgrid(xs, ys)

        a, b, c = primitive.vertices
        area2 = primitive.area2
        w0 = ((b.x - px) * (c.y - py) - (c.x - px) * (b.y - py)) / area2
        w1 = ((c.x - px) * (a.y - py) - (a.x - px) * (c.y - py)) / area2
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0.0) & (w1 >= 0.0) & (w2 >= 0.0)

        # Clip to the actual screen (edge tiles may overhang).
        if x1 > self.config.screen_width or y1 > self.config.screen_height:
            inside &= px < self.config.screen_width
            inside &= py < self.config.screen_height

        if not inside.any():
            return []

        z = w0 * a.z + w1 * b.z + w2 * c.z
        inside &= (z >= 0.0) & (z <= 1.0)
        mode = primitive.primitive
        tested = zbuffer.test_block(
            x0 - tile_x0, y0 - tile_y0, z, inside,
            depth_write=mode.depth_write,
        )
        if mode.late_z:
            # Late-Z: the shader may change depth, so every covered
            # fragment must be shaded; the depth test (already applied
            # to the buffer above) only gates what reaches Blending.
            passed = inside
        else:
            passed = tested
        if not passed.any():
            return []

        # Perspective-correct attributes over the whole block (helper
        # lanes included — they feed the LOD derivatives).
        inv_w = w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w
        safe = np.where(inv_w == 0.0, 1.0, inv_w)
        u = (w0 * a.u_over_w + w1 * b.u_over_w + w2 * c.u_over_w) / safe
        v = (w0 * a.v_over_w + w1 * b.v_over_w + w2 * c.v_over_w) / safe

        texture = self.textures.get(mode.texture_id)
        return self._emit_quads(
            tile, tile_x0, tile_y0, x0, y0, passed, tested, u, v,
            texture, mode, color_buffer, blender, w0, w1,
            primitive,
        )

    def _emit_quads(
        self,
        tile: TileCoord,
        tile_x0: int,
        tile_y0: int,
        x0: int,
        y0: int,
        passed: np.ndarray,
        visible: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        texture: Optional[Texture],
        mode,
        color_buffer: Optional[ColorBuffer],
        blender: Optional[BlendingUnit],
        w0: np.ndarray,
        w1: np.ndarray,
        primitive: ScreenPrimitive,
    ) -> List[Quad]:
        quads: List[Quad] = []
        height, width = passed.shape
        shader = mode.shader
        # 2x2 block reduction over the whole region at once; nonzero's
        # row-major order reproduces the (by, bx) nested-loop order.
        grid = passed
        if height % 2 or width % 2:
            grid = np.zeros(
                (height + height % 2, width + width % 2), dtype=bool
            )
            grid[:height, :width] = passed
        block_view = grid.reshape(
            grid.shape[0] // 2, 2, grid.shape[1] // 2, 2
        ).transpose(0, 2, 1, 3)
        block_any = block_view.any(axis=(2, 3))
        bys, bxs = np.nonzero(block_any)
        covered_blocks = [
            (int(bx) * 2, int(by) * 2) for by, bx in zip(bys, bxs)
        ]
        if not covered_blocks:
            return quads
        # Per-quad 2x2 coverage for every covered block at once; the
        # row-major (dy, dx) flattening reproduces QUAD_PIXEL_OFFSETS
        # order, and the grid's False padding matches the out-of-bounds
        # lanes of the old per-block slice.
        coverages = [
            tuple(row) for row in block_view[bys, bxs]
            .reshape(len(covered_blocks), 4).tolist()
        ]
        footprints = self._batch_footprints(
            u, v, covered_blocks, texture, shader.texture_samples
        )
        for (bx, by), coverage, (lod, lines) in zip(
            covered_blocks, coverages, footprints
        ):
            quad = Quad(
                tile=tile,
                qx=(x0 + bx - tile_x0) // 2,
                qy=(y0 + by - tile_y0) // 2,
                primitive_id=primitive.primitive_id,
                texture_id=mode.texture_id,
                coverage=coverage,
                alu_cycles=shader.alu_cycles,
                texture_lines=lines,
                lod=lod,
                blend=mode.blend,
            )
            quads.append(quad)
            self.quads_emitted += 1
            self.pixels_shaded += quad.covered_pixels
            if color_buffer is not None and blender is not None:
                # Only depth-test survivors reach Blending (matters
                # for Late-Z, where shaded != visible).
                visible_block = visible[by : by + 2, bx : bx + 2]
                self._shade_pixels(
                    tile_x0, tile_y0, x0, y0, bx, by, visible_block,
                    u, v, lod, texture, mode, color_buffer, blender,
                    w0, w1, primitive,
                )
        return quads

    def _batch_footprints(
        self,
        u: np.ndarray,
        v: np.ndarray,
        blocks: List[Tuple[int, int]],
        texture: Optional[Texture],
        texture_samples: int,
    ) -> List[Tuple[float, Tuple[int, ...]]]:
        """Per-quad (lod, cache lines) for all covered blocks at once.

        Bilinear sampling — the overwhelmingly common case — runs fully
        vectorized; other filter modes fall back to the scalar
        per-lane path, which is bit-identical.
        """
        if texture is None or texture_samples == 0:
            return [(0.0, ())] * len(blocks)
        if self.sampler.filter_mode is not FilterMode.BILINEAR:
            return [
                self._quad_texture_footprint(
                    u, v, bx, by, texture, texture_samples
                )
                for bx, by in blocks
            ]

        height, width = u.shape
        bxs = np.array([b[0] for b in blocks])
        bys = np.array([b[1] for b in blocks])
        x1 = np.minimum(bxs + 1, width - 1)
        y1 = np.minimum(bys + 1, height - 1)

        # Quad-level mip LOD from the 2x2 lanes (helper lanes included).
        u00, v00 = u[bys, bxs], v[bys, bxs]
        sx = np.hypot(
            (u[bys, x1] - u00) * texture.width,
            (v[bys, x1] - v00) * texture.height,
        )
        sy = np.hypot(
            (u[y1, bxs] - u00) * texture.width,
            (v[y1, bxs] - v00) * texture.height,
        )
        rho = np.maximum(np.maximum(sx, sy), 1e-12)
        lods = np.maximum(0.0, np.log2(rho))
        # The *sampled* level clamps to the mip chain; the reported LOD
        # stays raw, matching the scalar path.
        levels = np.minimum(lods, float(texture.max_lod)).astype(np.int64)

        # The four lanes of each quad, in the scalar path's order.
        lane_y = np.stack([bys, bys, y1, y1], axis=1)
        lane_x = np.stack([bxs, x1, bxs, x1], axis=1)
        lane_levels = np.broadcast_to(levels[:, None], lane_x.shape)

        # lines[k, lane, sample, neighbour] in scalar visit order.
        lines_batch = self.sampler.bilinear_lines_batch
        per_sample = []
        for sample in range(texture_samples):
            scale = float(sample + 1)
            lane_u = u[lane_y, lane_x] * scale
            lane_v = v[lane_y, lane_x] * scale
            per_sample.append(
                lines_batch(texture, lane_u, lane_v, lane_levels)
            )
        lines = np.stack(per_sample, axis=2)

        # Flattening each block's slice row-major is exactly its
        # ravel(); dict.fromkeys dedups in first-visit order.
        flat = lines.reshape(len(blocks), -1).tolist()
        return [
            (lod, tuple(dict.fromkeys(row)))
            for lod, row in zip(lods.tolist(), flat)
        ]

    def _quad_texture_footprint(
        self,
        u: np.ndarray,
        v: np.ndarray,
        bx: int,
        by: int,
        texture: Optional[Texture],
        texture_samples: int,
    ) -> Tuple[float, Tuple[int, ...]]:
        """LOD and ordered unique cache lines of one quad's samples."""
        if texture is None or texture_samples == 0:
            return 0.0, ()
        height, width = u.shape
        x1 = min(bx + 1, width - 1)
        y1 = min(by + 1, height - 1)
        du_dx = u[by, x1] - u[by, bx]
        dv_dx = v[by, x1] - v[by, bx]
        du_dy = u[y1, bx] - u[by, bx]
        dv_dy = v[y1, bx] - v[by, bx]
        lod = compute_lod(
            du_dx, dv_dx, du_dy, dv_dy, texture.width, texture.height
        )
        lines: List[int] = []
        seen = set()
        for dy in (0, 1):
            for dx in (0, 1):
                iy, ix = min(by + dy, height - 1), min(bx + dx, width - 1)
                for sample in range(texture_samples):
                    scale = float(sample + 1)
                    footprint = self.sampler.footprint(
                        texture, u[iy, ix] * scale, v[iy, ix] * scale, lod
                    )
                    for line in footprint.lines:
                        if line not in seen:
                            seen.add(line)
                            lines.append(line)
        return lod, tuple(lines)

    def _shade_pixels(
        self,
        tile_x0: int,
        tile_y0: int,
        x0: int,
        y0: int,
        bx: int,
        by: int,
        block: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        lod: float,
        texture: Optional[Texture],
        mode,
        color_buffer: ColorBuffer,
        blender: BlendingUnit,
        w0: np.ndarray,
        w1: np.ndarray,
        primitive: ScreenPrimitive,
    ) -> None:
        """Compute and emit final colors for the covered pixels of a quad."""
        a, b, c = primitive.vertices
        for dy in range(block.shape[0]):
            for dx in range(block.shape[1]):
                if not block[dy, dx]:
                    continue
                iy, ix = by + dy, bx + dx
                ww0, ww1 = w0[iy, ix], w1[iy, ix]
                ww2 = 1.0 - ww0 - ww1
                inv_w = ww0 * a.inv_w + ww1 * b.inv_w + ww2 * c.inv_w
                if inv_w == 0.0:
                    continue
                vertex_color = tuple(
                    (ww0 * a.color_over_w[i] + ww1 * b.color_over_w[i]
                     + ww2 * c.color_over_w[i]) / inv_w
                    for i in range(3)
                )
                if texture is not None:
                    tex_color = self.sampler.sample_color(
                        texture, u[iy, ix], v[iy, ix], lod
                    )
                    color = tuple(
                        vertex_color[i] * tex_color[i] for i in range(3)
                    )
                else:
                    color = vertex_color
                px = x0 + ix - tile_x0
                py = y0 + iy - tile_y0
                blender.emit(color_buffer, px, py, color, mode.blend)
