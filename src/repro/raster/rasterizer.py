"""The Rasterizer: primitives -> covered quads, through Early-Z.

"The Rasterizer takes each primitive from the FIFO queue and identifies
which pixels of the current tile are overlapped by the primitive...  The
fragments of every four adjacent pixels are grouped to form a quad."

The implementation is vectorized per (primitive, tile): barycentric
weights, coverage, depth and perspective-correct UVs are evaluated with
numpy over the primitive's quad-aligned bounding box inside the tile,
then surviving 2x2 blocks are emitted as :class:`~repro.raster.fragment.Quad`
records carrying their texture cache-line footprints.

UV derivatives are taken across each quad's 2x2 lanes — including helper
lanes outside the triangle — exactly as real GPU quads compute mip LOD.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer
from repro.raster.fragment import Quad
from repro.raster.setup import ScreenPrimitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.sampler import FilterMode, Sampler, compute_lod
from repro.texture.texture import Texture


class Rasterizer:
    """Rasterizes the primitives of one tile at a time."""

    def __init__(
        self,
        config: GPUConfig,
        textures: Dict[int, Texture],
        sampler: Optional[Sampler] = None,
    ):
        self.config = config
        self.textures = textures
        self.sampler = sampler or Sampler()
        self.quads_emitted = 0
        self.pixels_shaded = 0

    # -- public API -------------------------------------------------------------

    def rasterize_tile(
        self,
        tile: TileCoord,
        primitives: List[ScreenPrimitive],
        zbuffer: ZBuffer,
        color_buffer: Optional[ColorBuffer] = None,
        blender: Optional[BlendingUnit] = None,
    ) -> List[Quad]:
        """Produce the tile's shaded-quad stream in primitive order.

        ``zbuffer`` must be cleared by the caller before the first
        primitive of the tile.  When ``color_buffer`` is given, final
        pixel colors are also computed (image output mode).
        """
        quads: List[Quad] = []
        for primitive in primitives:
            quads.extend(
                self._rasterize_primitive(
                    tile, primitive, zbuffer, color_buffer, blender
                )
            )
        return quads

    # -- internals --------------------------------------------------------------

    def _tile_clip_region(
        self, tile: TileCoord, primitive: ScreenPrimitive
    ) -> Optional[Tuple[int, int, int, int]]:
        """Quad-aligned pixel rect of the primitive inside the tile.

        Returns (x0, y0, x1, y1) in screen pixels, end-exclusive, snapped
        outward to 2-pixel quad boundaries, or None when empty.
        """
        ts = self.config.tile_size
        tile_x0, tile_y0 = tile[0] * ts, tile[1] * ts
        tile_x1 = min(tile_x0 + ts, self.config.screen_width)
        tile_y1 = min(tile_y0 + ts, self.config.screen_height)
        min_x, min_y, max_x, max_y = primitive.bbox()
        x0 = max(tile_x0, int(np.floor(min_x)))
        y0 = max(tile_y0, int(np.floor(min_y)))
        x1 = min(tile_x1, int(np.ceil(max_x)) + 1)
        y1 = min(tile_y1, int(np.ceil(max_y)) + 1)
        if x0 >= x1 or y0 >= y1:
            return None
        # Snap outward to the quad grid (anchored at the tile origin,
        # which is always even).
        x0 -= (x0 - tile_x0) % 2
        y0 -= (y0 - tile_y0) % 2
        x1 += (x1 - tile_x0) % 2
        y1 += (y1 - tile_y0) % 2
        x1 = min(x1, tile_x0 + ts)
        y1 = min(y1, tile_y0 + ts)
        return x0, y0, x1, y1

    def _rasterize_primitive(
        self,
        tile: TileCoord,
        primitive: ScreenPrimitive,
        zbuffer: ZBuffer,
        color_buffer: Optional[ColorBuffer],
        blender: Optional[BlendingUnit],
    ) -> List[Quad]:
        region = self._tile_clip_region(tile, primitive)
        if region is None or primitive.area2 == 0.0:
            return []
        x0, y0, x1, y1 = region
        ts = self.config.tile_size
        tile_x0, tile_y0 = tile[0] * ts, tile[1] * ts

        # Pixel-centre grids.
        xs = np.arange(x0, x1, dtype=np.float64) + 0.5
        ys = np.arange(y0, y1, dtype=np.float64) + 0.5
        px, py = np.meshgrid(xs, ys)

        a, b, c = primitive.vertices
        area2 = primitive.area2
        w0 = ((b.x - px) * (c.y - py) - (c.x - px) * (b.y - py)) / area2
        w1 = ((c.x - px) * (a.y - py) - (a.x - px) * (c.y - py)) / area2
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0.0) & (w1 >= 0.0) & (w2 >= 0.0)

        # Clip to the actual screen (edge tiles may overhang).
        if x1 > self.config.screen_width or y1 > self.config.screen_height:
            inside &= px < self.config.screen_width
            inside &= py < self.config.screen_height

        if not inside.any():
            return []

        z = w0 * a.z + w1 * b.z + w2 * c.z
        inside &= (z >= 0.0) & (z <= 1.0)
        mode = primitive.primitive
        tested = zbuffer.test_block(
            x0 - tile_x0, y0 - tile_y0, z, inside,
            depth_write=mode.depth_write,
        )
        if mode.late_z:
            # Late-Z: the shader may change depth, so every covered
            # fragment must be shaded; the depth test (already applied
            # to the buffer above) only gates what reaches Blending.
            passed = inside
        else:
            passed = tested
        if not passed.any():
            return []

        # Perspective-correct attributes over the whole block (helper
        # lanes included — they feed the LOD derivatives).
        inv_w = w0 * a.inv_w + w1 * b.inv_w + w2 * c.inv_w
        safe = np.where(inv_w == 0.0, 1.0, inv_w)
        u = (w0 * a.u_over_w + w1 * b.u_over_w + w2 * c.u_over_w) / safe
        v = (w0 * a.v_over_w + w1 * b.v_over_w + w2 * c.v_over_w) / safe

        texture = self.textures.get(mode.texture_id)
        return self._emit_quads(
            tile, tile_x0, tile_y0, x0, y0, passed, tested, u, v,
            texture, mode, color_buffer, blender, w0, w1,
            primitive,
        )

    def _emit_quads(
        self,
        tile: TileCoord,
        tile_x0: int,
        tile_y0: int,
        x0: int,
        y0: int,
        passed: np.ndarray,
        visible: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        texture: Optional[Texture],
        mode,
        color_buffer: Optional[ColorBuffer],
        blender: Optional[BlendingUnit],
        w0: np.ndarray,
        w1: np.ndarray,
        primitive: ScreenPrimitive,
    ) -> List[Quad]:
        quads: List[Quad] = []
        height, width = passed.shape
        shader = mode.shader
        # 2x2 block reduction over the whole region at once; nonzero's
        # row-major order reproduces the (by, bx) nested-loop order.
        grid = passed
        if height % 2 or width % 2:
            grid = np.zeros(
                (height + height % 2, width + width % 2), dtype=bool
            )
            grid[:height, :width] = passed
        block_view = grid.reshape(
            grid.shape[0] // 2, 2, grid.shape[1] // 2, 2
        ).transpose(0, 2, 1, 3)
        block_any = block_view.any(axis=(2, 3))
        bys, bxs = np.nonzero(block_any)
        covered_blocks = [
            (int(bx) * 2, int(by) * 2) for by, bx in zip(bys, bxs)
        ]
        if not covered_blocks:
            return quads
        # Per-quad 2x2 coverage for every covered block at once; the
        # row-major (dy, dx) flattening reproduces QUAD_PIXEL_OFFSETS
        # order, and the grid's False padding matches the out-of-bounds
        # lanes of the old per-block slice.
        coverages = [
            tuple(row) for row in block_view[bys, bxs]
            .reshape(len(covered_blocks), 4).tolist()
        ]
        footprints = self._batch_footprints(
            u, v, covered_blocks, texture, shader.texture_samples
        )
        for (bx, by), coverage, (lod, lines) in zip(
            covered_blocks, coverages, footprints
        ):
            quad = Quad(
                tile=tile,
                qx=(x0 + bx - tile_x0) // 2,
                qy=(y0 + by - tile_y0) // 2,
                primitive_id=primitive.primitive_id,
                texture_id=mode.texture_id,
                coverage=coverage,
                alu_cycles=shader.alu_cycles,
                texture_lines=lines,
                lod=lod,
                blend=mode.blend,
            )
            quads.append(quad)
            self.quads_emitted += 1
            self.pixels_shaded += quad.covered_pixels
            if color_buffer is not None and blender is not None:
                # Only depth-test survivors reach Blending (matters
                # for Late-Z, where shaded != visible).
                visible_block = visible[by : by + 2, bx : bx + 2]
                self._shade_pixels(
                    tile_x0, tile_y0, x0, y0, bx, by, visible_block,
                    u, v, lod, texture, mode, color_buffer, blender,
                    w0, w1, primitive,
                )
        return quads

    def _batch_footprints(
        self,
        u: np.ndarray,
        v: np.ndarray,
        blocks: List[Tuple[int, int]],
        texture: Optional[Texture],
        texture_samples: int,
    ) -> List[Tuple[float, Tuple[int, ...]]]:
        """Per-quad (lod, cache lines) for all covered blocks at once.

        Bilinear sampling — the overwhelmingly common case — runs fully
        vectorized; other filter modes fall back to the scalar
        per-lane path, which is bit-identical.
        """
        if texture is None or texture_samples == 0:
            return [(0.0, ())] * len(blocks)
        if self.sampler.filter_mode is not FilterMode.BILINEAR:
            return [
                self._quad_texture_footprint(
                    u, v, bx, by, texture, texture_samples
                )
                for bx, by in blocks
            ]

        height, width = u.shape
        bxs = np.array([b[0] for b in blocks])
        bys = np.array([b[1] for b in blocks])
        x1 = np.minimum(bxs + 1, width - 1)
        y1 = np.minimum(bys + 1, height - 1)

        # Quad-level mip LOD from the 2x2 lanes (helper lanes included).
        u00, v00 = u[bys, bxs], v[bys, bxs]
        sx = np.hypot(
            (u[bys, x1] - u00) * texture.width,
            (v[bys, x1] - v00) * texture.height,
        )
        sy = np.hypot(
            (u[y1, bxs] - u00) * texture.width,
            (v[y1, bxs] - v00) * texture.height,
        )
        rho = np.maximum(np.maximum(sx, sy), 1e-12)
        lods = np.maximum(0.0, np.log2(rho))
        # The *sampled* level clamps to the mip chain; the reported LOD
        # stays raw, matching the scalar path.
        levels = np.minimum(lods, float(texture.max_lod)).astype(np.int64)

        # The four lanes of each quad, in the scalar path's order.
        lane_y = np.stack([bys, bys, y1, y1], axis=1)
        lane_x = np.stack([bxs, x1, bxs, x1], axis=1)
        lane_levels = np.broadcast_to(levels[:, None], lane_x.shape)

        # lines[k, lane, sample, neighbour] in scalar visit order.
        lines_batch = self.sampler.bilinear_lines_batch
        per_sample = []
        for sample in range(texture_samples):
            scale = float(sample + 1)
            lane_u = u[lane_y, lane_x] * scale
            lane_v = v[lane_y, lane_x] * scale
            per_sample.append(
                lines_batch(texture, lane_u, lane_v, lane_levels)
            )
        lines = np.stack(per_sample, axis=2)

        # Flattening each block's slice row-major is exactly its
        # ravel(); dict.fromkeys dedups in first-visit order.
        flat = lines.reshape(len(blocks), -1).tolist()
        return [
            (lod, tuple(dict.fromkeys(row)))
            for lod, row in zip(lods.tolist(), flat)
        ]

    def _quad_texture_footprint(
        self,
        u: np.ndarray,
        v: np.ndarray,
        bx: int,
        by: int,
        texture: Optional[Texture],
        texture_samples: int,
    ) -> Tuple[float, Tuple[int, ...]]:
        """LOD and ordered unique cache lines of one quad's samples."""
        if texture is None or texture_samples == 0:
            return 0.0, ()
        height, width = u.shape
        x1 = min(bx + 1, width - 1)
        y1 = min(by + 1, height - 1)
        du_dx = u[by, x1] - u[by, bx]
        dv_dx = v[by, x1] - v[by, bx]
        du_dy = u[y1, bx] - u[by, bx]
        dv_dy = v[y1, bx] - v[by, bx]
        lod = compute_lod(
            du_dx, dv_dx, du_dy, dv_dy, texture.width, texture.height
        )
        lines: List[int] = []
        seen = set()
        for dy in (0, 1):
            for dx in (0, 1):
                iy, ix = min(by + dy, height - 1), min(bx + dx, width - 1)
                for sample in range(texture_samples):
                    scale = float(sample + 1)
                    footprint = self.sampler.footprint(
                        texture, u[iy, ix] * scale, v[iy, ix] * scale, lod
                    )
                    for line in footprint.lines:
                        if line not in seen:
                            seen.add(line)
                            lines.append(line)
        return lod, tuple(lines)

    def _shade_pixels(
        self,
        tile_x0: int,
        tile_y0: int,
        x0: int,
        y0: int,
        bx: int,
        by: int,
        block: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        lod: float,
        texture: Optional[Texture],
        mode,
        color_buffer: ColorBuffer,
        blender: BlendingUnit,
        w0: np.ndarray,
        w1: np.ndarray,
        primitive: ScreenPrimitive,
    ) -> None:
        """Compute and emit final colors for the covered pixels of a quad."""
        a, b, c = primitive.vertices
        for dy in range(block.shape[0]):
            for dx in range(block.shape[1]):
                if not block[dy, dx]:
                    continue
                iy, ix = by + dy, bx + dx
                ww0, ww1 = w0[iy, ix], w1[iy, ix]
                ww2 = 1.0 - ww0 - ww1
                inv_w = ww0 * a.inv_w + ww1 * b.inv_w + ww2 * c.inv_w
                if inv_w == 0.0:
                    continue
                vertex_color = tuple(
                    (ww0 * a.color_over_w[i] + ww1 * b.color_over_w[i]
                     + ww2 * c.color_over_w[i]) / inv_w
                    for i in range(3)
                )
                if texture is not None:
                    tex_color = self.sampler.sample_color(
                        texture, u[iy, ix], v[iy, ix], lod
                    )
                    color = tuple(
                        vertex_color[i] * tex_color[i] for i in range(3)
                    )
                else:
                    color = vertex_color
                px = x0 + ix - tile_x0
                py = y0 + iy - tile_y0
                blender.emit(color_buffer, px, py, color, mode.blend)
