"""Triangle setup: clip space -> screen space with perspective-ready
attributes.

After clipping, each primitive is converted once into a
:class:`ScreenPrimitive`: screen-space vertex positions, depth in [0, 1],
and attributes pre-divided by w so the rasterizer can interpolate them
linearly in screen space and recover perspective-correct values per pixel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.geometry.clipping import clip_primitive, primitive_from_batch
from repro.geometry.primitive_assembly import Primitive, PrimitiveBatch
from repro.geometry.transform import viewport_transform


@dataclass(frozen=True)
class ScreenVertex:
    """A vertex in screen space with perspective-divided attributes."""

    x: float
    y: float
    z: float          # depth in [0, 1]
    inv_w: float      # 1/w — interpolates linearly in screen space
    u_over_w: float
    v_over_w: float
    color_over_w: Tuple[float, float, float]


@dataclass(frozen=True)
class ScreenPrimitive:
    """A triangle ready for rasterization."""

    primitive: Primitive
    vertices: Tuple[ScreenVertex, ScreenVertex, ScreenVertex]
    area2: float  # twice the signed screen-space area

    @property
    def primitive_id(self) -> int:
        return self.primitive.primitive_id

    def bbox(self) -> Tuple[float, float, float, float]:
        """Screen-space bounding box (min_x, min_y, max_x, max_y)."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    def overlaps_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> bool:
        """Conservative triangle/rectangle overlap test.

        Bounding-box rejection first, then each triangle edge tested
        against the rectangle corners (a rectangle is outside the
        triangle iff it is fully outside one edge half-plane).
        """
        min_x, min_y, max_x, max_y = self.bbox()
        if max_x < x0 or min_x > x1 or max_y < y0 or min_y > y1:
            return False
        corners = ((x0, y0), (x1, y0), (x0, y1), (x1, y1))
        verts = self.vertices
        sign = 1.0 if self.area2 > 0 else -1.0
        for i in range(3):
            ax, ay = verts[i].x, verts[i].y
            bx, by = verts[(i + 1) % 3].x, verts[(i + 1) % 3].y
            ex, ey = bx - ax, by - ay
            if all(
                sign * (ex * (cy - ay) - ey * (cx - ax)) < 0.0
                for cx, cy in corners
            ):
                return False
        return True


def setup_primitive(
    primitive: Primitive, width: int, height: int
) -> ScreenPrimitive:
    """Perspective divide + viewport transform for one clipped primitive.

    The caller must have near-clipped the primitive already (w > 0 for
    all vertices).
    """
    screen_vertices = []
    for vertex in primitive.vertices:
        clip = vertex.clip_position
        ndc = clip.perspective_divide()
        screen = viewport_transform(ndc, width, height)
        inv_w = 1.0 / clip.w
        screen_vertices.append(
            ScreenVertex(
                x=screen.x,
                y=screen.y,
                z=screen.z,
                inv_w=inv_w,
                u_over_w=vertex.uv.x * inv_w,
                v_over_w=vertex.uv.y * inv_w,
                color_over_w=(
                    vertex.color.x * inv_w,
                    vertex.color.y * inv_w,
                    vertex.color.z * inv_w,
                ),
            )
        )
    a, b, c = screen_vertices
    area2 = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
    return ScreenPrimitive(
        primitive=primitive, vertices=(a, b, c), area2=area2
    )


@dataclass
class ScreenBatch:
    """Structure-of-arrays form of a frame's screen-space triangles.

    One row per post-clip triangle, in the exact stream order the
    scalar pipeline appends :class:`ScreenPrimitive` objects.  Vertex
    attributes are ``(n, 3)`` float arrays; render state is expanded
    to per-row arrays so rows from different draws can share the batch.
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    inv_w: np.ndarray
    u_over_w: np.ndarray
    v_over_w: np.ndarray
    area2: np.ndarray
    pid: np.ndarray
    texture_id: np.ndarray
    alu_cycles: np.ndarray
    texture_samples: np.ndarray
    depth_write: np.ndarray
    blend: np.ndarray
    late_z: np.ndarray

    def __len__(self) -> int:
        return len(self.pid)

    @staticmethod
    def concatenate(parts: List["ScreenBatch"]) -> "ScreenBatch":
        """Concatenate per-draw batches into one frame batch."""
        if not parts:
            return _empty_screen_batch()
        return ScreenBatch(
            **{
                name: np.concatenate([getattr(p, name) for p in parts])
                for name in _SCREEN_BATCH_FIELDS
            }
        )


_SCREEN_BATCH_FIELDS = (
    "x", "y", "z", "inv_w", "u_over_w", "v_over_w", "area2", "pid",
    "texture_id", "alu_cycles", "texture_samples",
    "depth_write", "blend", "late_z",
)


def _empty_screen_batch() -> ScreenBatch:
    zero3 = np.zeros((0, 3), dtype=np.float64)
    return ScreenBatch(
        x=zero3, y=zero3, z=zero3, inv_w=zero3,
        u_over_w=zero3, v_over_w=zero3,
        area2=np.zeros(0, dtype=np.float64),
        pid=np.zeros(0, dtype=np.int64),
        texture_id=np.zeros(0, dtype=np.int64),
        alu_cycles=np.zeros(0, dtype=np.int64),
        texture_samples=np.zeros(0, dtype=np.int64),
        depth_write=np.zeros(0, dtype=bool),
        blend=np.zeros(0, dtype=bool),
        late_z=np.zeros(0, dtype=bool),
    )


def _setup_fallback_rows(
    batch: PrimitiveBatch, rows: np.ndarray, width: int, height: int
) -> List[Tuple[int, ScreenPrimitive]]:
    """Scalar clip + setup for the rows the batch clipper cannot prove.

    Returns ``(order_key, screen_primitive)`` pairs where the key slots
    each fanned triangle into the stream order (triangle row * 4 + fan
    position; near-clipping a triangle fans into at most two).
    """
    out: List[Tuple[int, ScreenPrimitive]] = []
    for row in rows.tolist():
        primitive = primitive_from_batch(batch, row)
        for fan, clipped in enumerate(clip_primitive(primitive)):
            out.append(
                (row * 4 + fan, setup_primitive(clipped, width, height))
            )
    return out


def setup_draw_batch(
    batch: PrimitiveBatch,
    keep: np.ndarray,
    fallback: np.ndarray,
    width: int,
    height: int,
) -> ScreenBatch:
    """Vectorized :func:`setup_primitive` over one draw's batch.

    ``keep`` rows (clean, uncullled triangles from
    :func:`~repro.geometry.clipping.clip_batch`) run through the
    batched perspective divide + viewport transform below — the exact
    association order of the scalar functions, elementwise.
    ``fallback`` rows run through the scalar clipper and are merged
    back in stream order (a fanned triangle sits exactly where the
    scalar pipeline would append it).
    """
    kept = np.nonzero(keep)[0]
    cw = batch.cw[kept]
    inv = 1.0 / cw
    nx = batch.cx[kept] * inv
    ny = batch.cy[kept] * inv
    nz = batch.cz[kept] * inv
    sx = ((nx + 1.0) * 0.5) * width
    sy = ((1.0 - ny) * 0.5) * height
    sz = (nz + 1.0) * 0.5
    u_over_w = batch.u[kept] * inv
    v_over_w = batch.v[kept] * inv
    area2 = (
        (sx[:, 1] - sx[:, 0]) * (sy[:, 2] - sy[:, 0])
        - (sx[:, 2] - sx[:, 0]) * (sy[:, 1] - sy[:, 0])
    )
    pid = batch.pid[kept]
    keys = kept * 4

    scalar = _setup_fallback_rows(
        batch, np.nonzero(fallback)[0], width, height
    )
    if scalar:
        sx, sy, sz, inv, u_over_w, v_over_w, area2, pid, keys = (
            _merge_scalar_rows(
                scalar, sx, sy, sz, inv, u_over_w, v_over_w, area2,
                pid, keys,
            )
        )

    count = len(pid)
    return ScreenBatch(
        x=sx, y=sy, z=sz, inv_w=inv,
        u_over_w=u_over_w, v_over_w=v_over_w,
        area2=area2, pid=pid,
        texture_id=np.full(count, batch.texture_id, dtype=np.int64),
        alu_cycles=np.full(count, batch.shader.alu_cycles, dtype=np.int64),
        texture_samples=np.full(
            count, batch.shader.texture_samples, dtype=np.int64
        ),
        depth_write=np.full(count, batch.depth_write, dtype=bool),
        blend=np.full(count, batch.blend, dtype=bool),
        late_z=np.full(count, batch.late_z, dtype=bool),
    )


def _merge_scalar_rows(
    scalar: List[Tuple[int, ScreenPrimitive]],
    sx: np.ndarray, sy: np.ndarray, sz: np.ndarray, inv: np.ndarray,
    u_over_w: np.ndarray, v_over_w: np.ndarray,
    area2: np.ndarray, pid: np.ndarray, keys: np.ndarray,
):
    """Splice scalar-clipped rows into the batched rows, stream-ordered."""
    svx = np.array(
        [[v.x for v in sp.vertices] for _, sp in scalar], dtype=np.float64
    )
    svy = np.array(
        [[v.y for v in sp.vertices] for _, sp in scalar], dtype=np.float64
    )
    svz = np.array(
        [[v.z for v in sp.vertices] for _, sp in scalar], dtype=np.float64
    )
    sinv = np.array(
        [[v.inv_w for v in sp.vertices] for _, sp in scalar],
        dtype=np.float64,
    )
    suw = np.array(
        [[v.u_over_w for v in sp.vertices] for _, sp in scalar],
        dtype=np.float64,
    )
    svw = np.array(
        [[v.v_over_w for v in sp.vertices] for _, sp in scalar],
        dtype=np.float64,
    )
    sarea = np.array([sp.area2 for _, sp in scalar], dtype=np.float64)
    spid = np.array(
        [sp.primitive_id for _, sp in scalar], dtype=np.int64
    )
    skeys = np.array([key for key, _ in scalar], dtype=np.int64)

    order = np.argsort(
        np.concatenate([keys, skeys]), kind="stable"
    )
    return (
        np.concatenate([sx, svx])[order],
        np.concatenate([sy, svy])[order],
        np.concatenate([sz, svz])[order],
        np.concatenate([inv, sinv])[order],
        np.concatenate([u_over_w, suw])[order],
        np.concatenate([v_over_w, svw])[order],
        np.concatenate([area2, sarea])[order],
        np.concatenate([pid, spid])[order],
        np.concatenate([keys, skeys])[order],
    )
