"""Triangle setup: clip space -> screen space with perspective-ready
attributes.

After clipping, each primitive is converted once into a
:class:`ScreenPrimitive`: screen-space vertex positions, depth in [0, 1],
and attributes pre-divided by w so the rasterizer can interpolate them
linearly in screen space and recover perspective-correct values per pixel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geometry.primitive_assembly import Primitive
from repro.geometry.transform import viewport_transform


@dataclass(frozen=True)
class ScreenVertex:
    """A vertex in screen space with perspective-divided attributes."""

    x: float
    y: float
    z: float          # depth in [0, 1]
    inv_w: float      # 1/w — interpolates linearly in screen space
    u_over_w: float
    v_over_w: float
    color_over_w: Tuple[float, float, float]


@dataclass(frozen=True)
class ScreenPrimitive:
    """A triangle ready for rasterization."""

    primitive: Primitive
    vertices: Tuple[ScreenVertex, ScreenVertex, ScreenVertex]
    area2: float  # twice the signed screen-space area

    @property
    def primitive_id(self) -> int:
        return self.primitive.primitive_id

    def bbox(self) -> Tuple[float, float, float, float]:
        """Screen-space bounding box (min_x, min_y, max_x, max_y)."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    def overlaps_rect(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> bool:
        """Conservative triangle/rectangle overlap test.

        Bounding-box rejection first, then each triangle edge tested
        against the rectangle corners (a rectangle is outside the
        triangle iff it is fully outside one edge half-plane).
        """
        min_x, min_y, max_x, max_y = self.bbox()
        if max_x < x0 or min_x > x1 or max_y < y0 or min_y > y1:
            return False
        corners = ((x0, y0), (x1, y0), (x0, y1), (x1, y1))
        verts = self.vertices
        sign = 1.0 if self.area2 > 0 else -1.0
        for i in range(3):
            ax, ay = verts[i].x, verts[i].y
            bx, by = verts[(i + 1) % 3].x, verts[(i + 1) % 3].y
            ex, ey = bx - ax, by - ay
            if all(
                sign * (ex * (cy - ay) - ey * (cx - ax)) < 0.0
                for cx, cy in corners
            ):
                return False
        return True


def setup_primitive(
    primitive: Primitive, width: int, height: int
) -> ScreenPrimitive:
    """Perspective divide + viewport transform for one clipped primitive.

    The caller must have near-clipped the primitive already (w > 0 for
    all vertices).
    """
    screen_vertices = []
    for vertex in primitive.vertices:
        clip = vertex.clip_position
        ndc = clip.perspective_divide()
        screen = viewport_transform(ndc, width, height)
        inv_w = 1.0 / clip.w
        screen_vertices.append(
            ScreenVertex(
                x=screen.x,
                y=screen.y,
                z=screen.z,
                inv_w=inv_w,
                u_over_w=vertex.uv.x * inv_w,
                v_over_w=vertex.uv.y * inv_w,
                color_over_w=(
                    vertex.color.x * inv_w,
                    vertex.color.y * inv_w,
                    vertex.color.z * inv_w,
                ),
            )
        )
    a, b, c = screen_vertices
    area2 = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
    return ScreenPrimitive(
        primitive=primitive, vertices=(a, b, c), area2=area2
    )
