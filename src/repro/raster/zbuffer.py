"""The tile-sized, multi-banked Z-Buffer and the Early-Z test.

"This stage uses a tile-sized buffer called the Z-Buffer to store the
minimum depth of previously processed fragments on each tile's pixel
coordinate in order to eliminate those that lie behind another previously
processed opaque fragment."  The buffer is partitioned into four banks
(one per parallel pipeline); banking is captured here only for statistics
— functionally the test is per pixel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ZBuffer:
    """Depth buffer for one tile."""

    def __init__(self, tile_size: int):
        if tile_size <= 0 or tile_size % 2:
            raise ConfigError("tile_size must be a positive even number")
        self.tile_size = tile_size
        self.depth = np.full((tile_size, tile_size), np.inf, dtype=np.float64)
        self.tests = 0
        self.passes = 0

    def clear(self) -> None:
        """Reset for the next tile (depth to 'infinitely far')."""
        self.depth.fill(np.inf)

    def test_and_update(
        self, px: int, py: int, z: float, depth_write: bool = True
    ) -> bool:
        """Early-Z for one fragment; returns True when it survives.

        ``(px, py)`` are pixel coordinates within the tile.  A passing
        fragment updates the stored depth when ``depth_write`` is set
        (transparent geometry typically tests but does not write).
        """
        self.tests += 1
        if z < self.depth[py, px]:
            self.passes += 1
            if depth_write:
                self.depth[py, px] = z
            return True
        return False

    def test_block(
        self, x0: int, y0: int, z_block: np.ndarray,
        mask: np.ndarray, depth_write: bool = True,
    ) -> np.ndarray:
        """Vectorized Early-Z over a rectangular block of the tile.

        ``z_block`` and ``mask`` share a shape; the returned boolean
        array marks fragments that were covered *and* passed the test.
        """
        h, w = z_block.shape
        region = self.depth[y0 : y0 + h, x0 : x0 + w]
        passed = mask & (z_block < region)
        self.tests += int(mask.sum())
        self.passes += int(passed.sum())
        if depth_write:
            np.minimum(region, np.where(passed, z_block, np.inf), out=region)
        return passed

    @property
    def cull_rate(self) -> float:
        """Fraction of tested fragments killed by Early-Z."""
        return 1.0 - self.passes / self.tests if self.tests else 0.0
