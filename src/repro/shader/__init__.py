"""Shader-core execution model: warps (= quads) and multithreaded timing."""

from repro.shader.shader_core import ShaderCore, SubtileExecution, WarpCost

__all__ = ["ShaderCore", "SubtileExecution", "WarpCost"]
