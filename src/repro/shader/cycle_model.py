"""Cycle-level shader-core model (validation reference).

An event-driven simulation of one SC draining one subtile: up to
``max_warps`` warps resident, a round-robin scheduler issuing one
instruction per cycle from the least-recently-issued ready warp, and
each warp alternating compute phases with memory stalls.

This is far slower than the analytic model of
:mod:`repro.shader.shader_core` but makes no closed-form assumptions, so
the test-suite and the ``ablation_cycle_model`` bench use it to check
that the analytic model tracks a faithful execution within a small
error across occupancy regimes.

Each warp's cost is expanded into an alternating schedule: its compute
cycles are split evenly around its texture stalls (a quad issues some
ALU work, waits on a miss, continues), which mirrors how the rasterizer
accounts quad costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config import ShaderConfig
from repro.shader.shader_core import SubtileExecution, WarpCost


@dataclass
class _Warp:
    """Residency state of one warp during the cycle simulation."""

    segments: List[Tuple[int, int]]  # (compute_cycles, stall_cycles) pairs
    segment_index: int = 0
    compute_left: int = 0
    ready_at: int = 0

    def __post_init__(self) -> None:
        self.compute_left = self.segments[0][0] if self.segments else 0

    @property
    def done(self) -> bool:
        return (
            self.segment_index >= len(self.segments)
            or (
                self.segment_index == len(self.segments) - 1
                and self.compute_left == 0
                and self.segments[self.segment_index][1] == 0
            )
        )


def _expand(cost: WarpCost, pieces: int = 2) -> List[Tuple[int, int]]:
    """Split one warp's (compute, stall) into alternating segments."""
    pieces = max(1, min(pieces, cost.compute_cycles or 1))
    base_c, extra_c = divmod(cost.compute_cycles, pieces)
    base_s, extra_s = divmod(cost.stall_cycles, pieces)
    return [
        (
            base_c + (1 if i < extra_c else 0),
            base_s + (1 if i < extra_s else 0),
        )
        for i in range(pieces)
    ]


class CycleAccurateShaderCore:
    """Event-driven single-SC execution of a subtile's warps."""

    def __init__(self, config: ShaderConfig):
        self.config = config

    def execute_subtile(self, warps: Sequence[WarpCost]) -> SubtileExecution:
        """Simulate cycle by cycle; returns the same record type as the
        analytic model."""
        if not warps:
            return SubtileExecution(0, 0, 0, 0)

        pending: List[WarpCost] = list(warps)
        pending.reverse()  # pop() takes them in submission order
        resident: List[_Warp] = []
        cycle = 0
        issued = 0
        total_compute = sum(w.compute_cycles for w in warps)
        total_stall = sum(w.stall_cycles for w in warps)

        def refill() -> None:
            while len(resident) < self.config.max_warps and pending:
                resident.append(_Warp(_expand(pending.pop())))

        refill()
        rr_index = 0
        while resident:
            # Find a ready warp, round-robin from rr_index.
            issued_this_cycle = 0
            for probe in range(len(resident)):
                warp = resident[(rr_index + probe) % len(resident)]
                if warp.ready_at <= cycle and warp.compute_left > 0:
                    warp.compute_left -= 1
                    issued += 1
                    issued_this_cycle += 1
                    if warp.compute_left == 0:
                        # Segment compute done; enter its stall phase.
                        _, stall = warp.segments[warp.segment_index]
                        warp.segment_index += 1
                        if warp.segment_index < len(warp.segments):
                            warp.ready_at = cycle + 1 + stall
                            warp.compute_left = (
                                warp.segments[warp.segment_index][0]
                            )
                        else:
                            warp.ready_at = cycle + 1 + stall
                            warp.compute_left = -1  # draining final stall
                    rr_index = (rr_index + probe + 1) % len(resident)
                    if issued_this_cycle >= self.config.issue_rate:
                        break
            # Retire warps whose final stall has elapsed.
            still = []
            for warp in resident:
                finished = (
                    warp.compute_left == -1 and warp.ready_at <= cycle + 1
                )
                if not finished:
                    still.append(warp)
            if len(still) != len(resident):
                resident = still
                rr_index = 0
                refill()
            if issued_this_cycle == 0 and resident:
                # Nothing ready: fast-forward to the next wake-up.
                next_ready = min(w.ready_at for w in resident)
                cycle = max(cycle + 1, next_ready)
            else:
                cycle += 1

        return SubtileExecution(
            num_warps=len(warps),
            compute_cycles=-(-total_compute // self.config.issue_rate),
            stall_cycles=total_stall,
            total_cycles=cycle,
        )
