"""Shader core (SC) timing: multithreaded warp execution.

Each quad is one warp.  An SC keeps up to ``max_warps`` warps in flight
and issues one instruction per cycle from any ready warp, so texture-miss
stalls of one warp are hidden by the compute of others — but only while
there are enough ready warps, which is exactly the occupancy effect the
paper leans on ("SC performance in TBR architectures is more susceptible
to memory latency due to periods of low occupancy", §V-C2).

The model is analytic per subtile.  With ``n`` warps of total compute
``C`` (issue cycles) and total stall ``S`` (miss cycles beyond the L1
hit latency), and ``h = min(max_warps, n)`` warps available to overlap
each other's misses::

    total = C + S / h

i.e. every miss cycle is hidden in proportion to the concurrency
actually available, but never below the additive floor — compute does
not overlap residual stall.  This is deliberately **conservative about
latency hiding** compared to an idealized round-robin machine (see
:mod:`repro.shader.cycle_model`, which bounds hiding from the other
side): real in-order mobile SCs lose issue slots to switch bubbles,
texture-unit occupancy and scoreboard stalls, and TBR barriers drain
the core at every (sub)tile boundary ("periods of low occupancy",
paper §V-C2).  An idealized max-form model (``max(C, S/h)``) predicts
*no* performance benefit from the paper's 47% L2-access cut, which
contradicts the cycle-accurate results the paper reports — so the
latency sensitivity retained here is itself part of reproducing TEAPOT.
The ``ablation_cycle_model`` bench quantifies where this model sits
between the idealized and fully-serial bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import ShaderConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class WarpCost:
    """Execution cost of one warp (quad)."""

    compute_cycles: int
    stall_cycles: int

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.stall_cycles < 0:
            raise ConfigError("cycle counts must be non-negative")


@dataclass(frozen=True)
class SubtileExecution:
    """Timing outcome of one subtile on one SC."""

    num_warps: int
    compute_cycles: int
    stall_cycles: int
    total_cycles: int

    @property
    def hidden_stall_cycles(self) -> int:
        """Stall cycles that multithreading managed to hide."""
        exposed = max(0, self.total_cycles - self.compute_cycles)
        return max(0, self.stall_cycles - exposed)


class ShaderCore:
    """Analytic multithreaded-execution model for one SC."""

    def __init__(self, config: ShaderConfig):
        self.config = config
        self.busy_cycles = 0
        self.issue_cycles = 0
        self.warps_executed = 0

    def execute_subtile(self, warps: Sequence[WarpCost]) -> SubtileExecution:
        """Cycles to drain one subtile's warps on this SC."""
        return self.execute_totals(
            len(warps),
            sum(w.compute_cycles for w in warps),
            sum(w.stall_cycles for w in warps),
        )

    def execute_totals(
        self, num_warps: int, compute: int, stall: int
    ) -> SubtileExecution:
        """Closed-form :meth:`execute_subtile` on subtile totals.

        The analytic model depends only on the warp count and the summed
        compute/stall cycles, so callers that already hold totals (the
        replay engine's :class:`~repro.raster.pipeline.SubtileWork`) skip
        materialising per-warp costs entirely.
        """
        if num_warps == 0:
            return SubtileExecution(0, 0, 0, 0)
        issue = -(-compute // self.config.issue_rate)
        overlap = min(self.config.max_warps, num_warps)
        total = issue + -(-stall // overlap)
        self.busy_cycles += total
        self.issue_cycles += issue
        self.warps_executed += num_warps
        return SubtileExecution(
            num_warps=num_warps,
            compute_cycles=issue,
            stall_cycles=stall,
            total_cycles=total,
        )

    def reset(self) -> None:
        self.busy_cycles = 0
        self.issue_cycles = 0
        self.warps_executed = 0
