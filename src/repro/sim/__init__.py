"""Frame simulation: functional render (pass 1) and trace replay (pass 2).

Pass 1 runs the real Graphics Pipeline once per workload and records a
schedule-independent frame trace; pass 2 replays the trace under any
DTexL design point — caches, timing and energy — which makes the
evaluation sweeps cheap.
"""

from repro.sim.driver import FrameRenderer, FrameTrace, RenderStats, TileTraceEntry
from repro.sim.replay import RunResult, TraceReplayer
from repro.sim.stream import (
    STREAM_DRIVERS,
    BatchTileStream,
    FrameSource,
    OverlappedTileStream,
    StreamingTileStream,
    TileWorkUnit,
)
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.sim.checkpoint import (
    TileChunkStore,
    TraceCheckpointStore,
    trace_digest,
    trace_key,
    verify_trace,
)
from repro.sim.resilience import (
    FailureRecord,
    ReplayBudget,
    RetryPolicy,
    RunManifest,
)
from repro.sim.faults import FaultPlan, FaultSpec, fault_point
from repro.sim.chaos import ChaosReport, ChaosTrial, run_chaos

__all__ = [
    "FrameRenderer", "FrameTrace", "RenderStats", "TileTraceEntry",
    "TraceReplayer", "RunResult",
    "STREAM_DRIVERS", "BatchTileStream", "FrameSource",
    "OverlappedTileStream", "StreamingTileStream", "TileWorkUnit",
    "ExperimentRunner", "SuiteResult",
    "TileChunkStore", "TraceCheckpointStore",
    "trace_digest", "trace_key", "verify_trace",
    "FailureRecord", "ReplayBudget", "RetryPolicy", "RunManifest",
    "FaultPlan", "FaultSpec", "fault_point",
    "ChaosReport", "ChaosTrial", "run_chaos",
]
