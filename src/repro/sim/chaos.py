"""Randomized chaos campaigns: inject every failure we claim to survive.

``repro chaos`` runs N seeded trials.  Each trial samples a
:class:`~repro.sim.faults.FaultPlan` from a catalog of *healable*
faults (torn checkpoint writes, corrupted trace loads, transient replay
errors, journal kills mid-append, worker process death, worker hangs),
arms it, and runs a small design-space sweep against a fresh checkpoint
directory.  If the injected campaign dies — an :class:`InjectedKill`
mid-journal or a fatal baseline failure, both stand-ins for a real
power cut — the trial resumes it, re-arming only the checkpoint-*load*
faults (the one class of corruption a restart can still encounter).

The invariant each trial proves is the one long campaigns live on: the
resumed (or healed) sweep must produce rows, failures and a manifest
**identical** to an uninjected reference — modulo ``wall_time_s`` —
whatever was injected and wherever the campaign was killed.  Any
divergence, unhandled exception or hang fails the trial, and
:func:`run_chaos` reports nonzero.

Faults that *legitimately* change the report (a budget blowout is a
real failure, not an infrastructure hiccup) are deliberately not in the
catalog — they are covered by the targeted tests in
``tests/test_faults.py`` instead, where the expected FailureRecord is
asserted explicitly.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.errors import ConfigError, ReplayError, ReproError
from repro.sim import faults
from repro.sim.experiment import ExperimentRunner
from repro.sim.resilience import RetryPolicy, RunManifest
from repro.sim.sweep import DesignSweep, SweepReport

__all__ = [
    "ChaosReport", "ChaosTrial", "DEFAULT_CHAOS_GAMES", "default_sweep",
    "run_chaos", "sample_plan",
]

#: One small, fast game keeps a 20-trial campaign in CI-smoke territory.
DEFAULT_CHAOS_GAMES: Tuple[str, ...] = ("SWa",)

#: Parent-process faults every trial may sample.  The chunk sites only
#: fire when the trial draws the streaming dataflow (batch trials never
#: reach them, which is harmless — the spec just never fires).
_PARENT_FAULTS: Tuple[Tuple[str, str], ...] = (
    (faults.SITE_CHECKPOINT_SAVE, faults.KIND_TORN_WRITE),
    (faults.SITE_CHECKPOINT_LOAD, faults.KIND_TRUNCATE),
    (faults.SITE_CHECKPOINT_LOAD, faults.KIND_CORRUPT),
    (faults.SITE_CHUNK_SAVE, faults.KIND_TORN_WRITE),
    (faults.SITE_CHUNK_LOAD, faults.KIND_TRUNCATE),
    (faults.SITE_CHUNK_LOAD, faults.KIND_CORRUPT),
    (faults.SITE_JOURNAL_RECORD, faults.KIND_PARTIAL_LINE),
    (faults.SITE_JOURNAL_RECORD, faults.KIND_KILL),
    (faults.SITE_REPLAY, faults.KIND_TRANSIENT),
)

#: Stream drivers chaos trials alternate between: the batch spec and
#: the tile-granular streaming path whose chunk checkpoints must heal
#: kills and corruption landing *inside* a frame.  Overlap is covered
#: by the targeted crash/timeout tests instead — its worker adds a
#: second process per replay, too slow for a 20-trial campaign.
_TRIAL_STREAMS: Tuple[str, ...] = ("batch", "streaming")

#: Worker-process faults, only meaningful when the trial runs jobs > 1.
_WORKER_FAULTS: Tuple[Tuple[str, str], ...] = (
    (faults.SITE_WORKER, faults.KIND_EXIT),
    (faults.SITE_WORKER, faults.KIND_HANG),
)


def default_sweep() -> DesignSweep:
    """The 4-point grid chaos trials run (2 groupings x both archs)."""
    return DesignSweep(
        groupings=("FG-xshift2", "CG-square"),
        assignments=("const",),
        orders=("zorder",),
        decoupled=(False, True),
    )


def sample_plan(
    seed: int, jobs: int, hang_seconds: float
) -> faults.FaultPlan:
    """Sample one trial's fault plan from the healable catalog.

    Seeded and self-contained: the same ``seed`` always yields the same
    plan.  Every sampled spec fires only on a task's first attempt
    (``fire_attempts=1``), which is what guarantees retries, respawns
    and resumes converge back to the reference result.
    """
    rng = random.Random(seed)
    catalog = list(_PARENT_FAULTS)
    if jobs > 1:
        catalog += list(_WORKER_FAULTS)
    picks = rng.sample(catalog, rng.randint(1, 3))
    specs = []
    for site, kind in picks:
        specs.append(faults.FaultSpec(
            site=site,
            kind=kind,
            probability=round(rng.uniform(0.4, 1.0), 3),
            seconds=hang_seconds,
        ))
    return faults.FaultPlan(seed=seed, specs=tuple(specs))


@dataclass
class ChaosTrial:
    """One trial's outcome: what was injected, what happened, the diff."""

    index: int
    seed: int
    jobs: int
    plan: str
    stream: str = "batch"
    killed: bool = False
    fires: int = 0
    problems: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "jobs": self.jobs,
            "plan": self.plan,
            "stream": self.stream,
            "killed": self.killed,
            "fires": self.fires,
            "problems": list(self.problems),
            "ok": self.ok,
            "wall_time_s": self.wall_time_s,
        }


@dataclass
class ChaosReport:
    """A whole campaign's outcome."""

    trials: List[ChaosTrial] = field(default_factory=list)
    reference_rows: int = 0
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(trial.ok for trial in self.trials)

    @property
    def failed_trials(self) -> List[ChaosTrial]:
        return [trial for trial in self.trials if not trial.ok]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trials": [trial.as_dict() for trial in self.trials],
            "reference_rows": self.reference_rows,
            "ok": self.ok,
            "wall_time_s": self.wall_time_s,
        }


def _report_diff(
    label: str, report: SweepReport, reference: SweepReport
) -> List[str]:
    """Where ``report`` diverges from the uninjected reference.

    Rows and failures must match bit-for-bit; the manifest must be
    *equivalent*: identical campaign identity and attempted order, and
    the union of succeeded+resumed points equal to the reference's
    succeeded set (a resumed run legitimately reuses journaled rows).
    ``wall_time_s`` is the one sanctioned difference.
    """
    problems: List[str] = []
    rows = [row.as_dict() for row in report.rows]
    ref_rows = [row.as_dict() for row in reference.rows]
    if rows != ref_rows:
        problems.append(f"{label}: rows diverge from reference")
    fails = [failure.as_dict() for failure in report.failures]
    ref_fails = [failure.as_dict() for failure in reference.failures]
    if fails != ref_fails:
        problems.append(
            f"{label}: failures diverge from reference ({fails!r} "
            f"vs {ref_fails!r})"
        )
    manifest: Optional[RunManifest] = report.manifest
    ref_manifest: Optional[RunManifest] = reference.manifest
    if manifest is None or ref_manifest is None:
        problems.append(f"{label}: missing manifest")
        return problems
    if manifest.config_hash != ref_manifest.config_hash:
        problems.append(f"{label}: manifest config hash diverges")
    if manifest.games != ref_manifest.games:
        problems.append(f"{label}: manifest game list diverges")
    if (manifest.design_points_attempted
            != ref_manifest.design_points_attempted):
        problems.append(f"{label}: manifest attempted order diverges")
    finished = sorted(
        manifest.design_points_succeeded + manifest.design_points_resumed
    )
    ref_finished = sorted(
        ref_manifest.design_points_succeeded
        + ref_manifest.design_points_resumed
    )
    if finished != ref_finished:
        problems.append(
            f"{label}: manifest finished set diverges "
            f"({finished!r} vs {ref_finished!r})"
        )
    if (sorted(manifest.design_points_failed)
            != sorted(ref_manifest.design_points_failed)):
        problems.append(f"{label}: manifest failed set diverges")
    return problems


def run_chaos(
    trials: int = 20,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[GPUConfig] = None,
    games: Optional[Sequence[str]] = None,
    sweep: Optional[DesignSweep] = None,
    task_timeout_s: float = 5.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """Run an N-trial randomized chaos campaign.

    Computes one uninjected serial reference, then per trial: sample a
    plan, run the sweep armed (possibly dying mid-campaign), resume it,
    and diff both reports against the reference.  Deterministic in
    ``seed``; a failed trial names every divergence it found.
    """
    if trials < 1:
        raise ConfigError(f"trials must be >= 1, got {trials}")
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    config = config if config is not None else GPUConfig(
        screen_width=128, screen_height=64
    )
    games = list(games) if games is not None else list(DEFAULT_CHAOS_GAMES)
    sweep = sweep if sweep is not None else default_sweep()
    retry_policy = retry_policy if retry_policy is not None else RetryPolicy(
        max_retries=2, seed=seed
    )
    hang_seconds = task_timeout_s * 2.0

    campaign_start = time.monotonic()  # replint: disable=wall-clock -- chaos campaign wall time for reporting, never a simulated quantity
    report = ChaosReport()

    # The uninjected reference every trial is held to.
    reference_dir = tempfile.mkdtemp(prefix="repro-chaos-ref-")
    try:
        reference = sweep.run(
            ExperimentRunner(config, games=games),
            checkpoint_dir=reference_dir,
            retry_policy=retry_policy,
            jobs=1,
        )
    finally:
        shutil.rmtree(reference_dir, ignore_errors=True)
    if reference.failures:
        raise ReplayError(
            "chaos reference campaign failed with no faults armed: "
            + "; ".join(f.message for f in reference.failures)
        )
    report.reference_rows = len(reference.rows)

    master = random.Random(seed)
    for index in range(trials):
        trial_seed = master.randrange(2 ** 31)
        trial_rng = random.Random(trial_seed)
        trial_jobs = trial_rng.choice([1, jobs]) if jobs > 1 else 1
        trial_stream = trial_rng.choice(_TRIAL_STREAMS)
        plan = sample_plan(trial_seed, trial_jobs, hang_seconds)
        trial = ChaosTrial(
            index=index, seed=trial_seed, jobs=trial_jobs,
            plan=plan.describe(), stream=trial_stream,
        )
        trial_start = time.monotonic()  # replint: disable=wall-clock -- chaos trial wall time for reporting, never a simulated quantity
        work_dir = tempfile.mkdtemp(prefix="repro-chaos-trial-")
        try:
            first: Optional[SweepReport] = None
            with faults.armed(plan):
                try:
                    first = sweep.run(
                        ExperimentRunner(
                            config, games=games, stream=trial_stream
                        ),
                        checkpoint_dir=work_dir,
                        retry_policy=retry_policy,
                        jobs=trial_jobs,
                        task_timeout_s=task_timeout_s,
                    )
                except faults.InjectedKill:
                    trial.killed = True
                except ReproError:
                    # A fatal abort (e.g. an injected transient on the
                    # unguarded baseline): the campaign died exactly as
                    # a crashed process would; resume must recover.
                    trial.killed = True
                except Exception as error:
                    trial.killed = True
                    trial.problems.append(
                        f"armed run: unhandled "
                        f"{type(error).__name__}: {error}"
                    )
            # Resume what survived on disk.  Only checkpoint/chunk-load
            # corruption stays armed: those are the faults a restarted
            # campaign can still encounter, and both must self-heal by
            # re-rendering (the whole frame, or the one torn tile).
            resume_plan = plan.for_sites(
                {faults.SITE_CHECKPOINT_LOAD, faults.SITE_CHUNK_LOAD}
            )
            with faults.armed(resume_plan if resume_plan.specs else None):
                resumed = sweep.run(
                    ExperimentRunner(
                        config, games=games, stream=trial_stream
                    ),
                    checkpoint_dir=work_dir,
                    resume=True,
                    retry_policy=retry_policy,
                    jobs=trial_jobs,
                    task_timeout_s=task_timeout_s,
                )
            if first is not None:
                trial.problems.extend(
                    _report_diff("armed run", first, reference)
                )
            trial.problems.extend(
                _report_diff("resumed run", resumed, reference)
            )
            trial.fires = len(plan.fired) + len(resume_plan.fired)
        except Exception as error:
            trial.problems.append(
                f"trial harness: unhandled {type(error).__name__}: {error}"
            )
        finally:
            shutil.rmtree(work_dir, ignore_errors=True)
            trial.wall_time_s = time.monotonic() - trial_start  # replint: disable=wall-clock -- chaos trial wall time for reporting, never a simulated quantity
        report.trials.append(trial)

    report.wall_time_s = time.monotonic() - campaign_start  # replint: disable=wall-clock -- chaos campaign wall time for reporting, never a simulated quantity
    return report
