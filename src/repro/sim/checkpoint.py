"""Durable frame-trace checkpoints and sweep progress.

Pass 1 (the functional render) is the expensive half of the two-pass
economy; a crashed campaign that throws its traces away pays it again.
This module makes pass-1 results durable:

* :func:`trace_key` — a content hash of ``(GPUConfig, workload recipe,
  frame)``, so a checkpoint is only ever reused for the exact workload
  and configuration that produced it.
* :class:`TraceCheckpointStore` — serializes a
  :class:`~repro.sim.driver.FrameTrace` to disk and verifies it on load:
  a payload hash catches bit-level tampering, and structural invariants
  (full tile coverage, quad counts against :class:`RenderStats`) catch
  semantically broken traces that still unpickle.  Any verification
  failure raises :class:`~repro.errors.TraceIntegrityError`.
* :class:`SweepProgress` — an append-only journal of completed sweep
  rows, keyed by a campaign hash, so a re-run with ``--resume`` skips
  every design point that already finished.
* :func:`trace_digest` / :class:`TraceDigestBuilder` — the canonical
  *semantic* content hash of a frame trace, built as a hash chain over
  per-tile digests (sorted tile order) so it can be accumulated one
  tile at a time without ever materializing the frame.
* :class:`TileChunkStore` — the tile-granular checkpoint the streaming
  dataflow uses: one verified chunk per tile coordinate plus a frame
  meta record whose hash chain terminates in the trace digest, so a
  chunk set reassembles (and cross-checks) to exactly the trace the
  batch path would have checkpointed.

Checkpoint file layout (version 1): one ASCII JSON header line holding
the key, payload SHA-256 and summary counts, a newline, then the raw
pickle payload.  Writes are atomic (temp file + ``os.replace``) so a
crash mid-save never leaves a half-written checkpoint that a later
``--resume`` would trust.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.errors import TraceIntegrityError
from repro.sim.driver import FrameTrace, TileTraceEntry
from repro.sim.faults import (
    InjectedKill,
    KIND_CORRUPT,
    KIND_PARTIAL_LINE,
    KIND_TORN_WRITE,
    KIND_TRUNCATE,
    SITE_CHECKPOINT_LOAD,
    SITE_CHECKPOINT_SAVE,
    SITE_CHUNK_LOAD,
    SITE_CHUNK_SAVE,
    SITE_JOURNAL_RECORD,
    fault_point,
)
from repro.workloads.recipe import SceneRecipe

CHECKPOINT_VERSION = 1
_HEADER_LIMIT = 4096  # sane upper bound on the header line


def _truncate_file(path: Path, fraction: float) -> None:
    """Cut ``path`` down to ``fraction`` of its size (torn-write sim)."""
    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(0, int(size * fraction)))
    except OSError:
        pass  # a checkpoint that cannot be damaged cannot be injected


def _flip_last_byte(path: Path) -> None:
    """Invert the final byte of ``path`` (bit-level corruption sim)."""
    try:
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            if byte:
                handle.seek(-1, os.SEEK_END)
                handle.write(bytes([byte[0] ^ 0xFF]))
    except OSError:
        pass


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=list)


def config_fingerprint(config: GPUConfig) -> Dict[str, Any]:
    """The GPU configuration as a plain, hashable dictionary."""
    return dataclasses.asdict(config)


def config_hash(config: GPUConfig) -> str:
    """Stable hex digest identifying one GPU configuration."""
    text = _canonical_json(config_fingerprint(config))
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def workload_fingerprint(recipe: SceneRecipe, frame: int = 0) -> Dict[str, Any]:
    """The workload recipe (plus animation frame) as a plain dictionary."""
    return {"recipe": dataclasses.asdict(recipe), "frame": frame}


def trace_key(config: GPUConfig, recipe: SceneRecipe, frame: int = 0) -> str:
    """Content hash keying one checkpointed trace.

    Any change to the GPU configuration or the scene recipe produces a
    different key, so stale checkpoints are never silently reused.
    """
    text = _canonical_json({
        "version": CHECKPOINT_VERSION,
        "config": config_fingerprint(config),
        "workload": workload_fingerprint(recipe, frame),
    })
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def verify_trace(trace: FrameTrace) -> None:
    """Check a trace's structural invariants; raise on any violation.

    The invariants are exactly the schedule-independent facts pass 1
    guarantees: the tile map covers the full screen grid, every quad
    sits in the tile that recorded it, and the per-tile streams agree
    with the :class:`RenderStats` totals.
    """
    config = trace.config
    expected_tiles = {
        (x, y)
        for x in range(config.tiles_x)
        for y in range(config.tiles_y)
    }
    actual_tiles = set(trace.tiles)
    if actual_tiles != expected_tiles:
        missing = len(expected_tiles - actual_tiles)
        extra = len(actual_tiles - expected_tiles)
        raise TraceIntegrityError(
            f"trace tile map does not cover the {config.tiles_x}x"
            f"{config.tiles_y} grid ({missing} missing, {extra} extra)"
        )
    for tile, entry in trace.tiles.items():
        for quad in entry.quads:
            if quad.tile != tile:
                raise TraceIntegrityError(
                    f"quad recorded under tile {tile} claims tile "
                    f"{quad.tile}"
                )
    if trace.total_quads != trace.stats.num_quads:
        raise TraceIntegrityError(
            f"trace holds {trace.total_quads} quads but RenderStats "
            f"counted {trace.stats.num_quads}"
        )
    covered = sum(
        quad.covered_pixels
        for entry in trace.tiles.values()
        for quad in entry.quads
    )
    if covered != trace.stats.pixels_shaded:
        raise TraceIntegrityError(
            f"trace covers {covered} pixels but RenderStats counted "
            f"{trace.stats.pixels_shaded}"
        )


def tile_digest(tile: TileCoord, entry: TileTraceEntry) -> str:
    """Semantic content hash of one tile's replayable work.

    Covers every replay-relevant field in canonical form (quads in
    stream order, LODs by ``repr`` so float identity is exact), so two
    structurally equal entries hash equally regardless of how — or in
    which process — they were produced.
    """
    payload = {
        "tile": list(tile),
        "fetch_lines": list(entry.fetch_lines),
        "fetch_cycles": entry.fetch_cycles,
        "quads": [
            [
                quad.qx, quad.qy, quad.primitive_id,
                quad.texture_id, list(quad.coverage),
                quad.alu_cycles, list(quad.texture_lines),
                repr(quad.lod), quad.blend,
            ]
            for quad in entry.quads
        ],
    }
    text = _canonical_json(payload)
    return hashlib.sha256(text.encode("ascii")).hexdigest()


class TraceDigestBuilder:
    """Accumulates a trace digest one tile at a time, in any order.

    The digest is a hash chain: a frame prefix (config fingerprint +
    vertex lines), then every tile's :func:`tile_digest` folded in
    *sorted tile order*, then the replay-relevant stats totals.  Because
    per-tile digests are collected unordered and only chained at
    :meth:`finish`, a streaming producer can feed tiles in the replay's
    traversal order while still arriving at the exact digest a
    materialized trace hashes to.
    """

    def __init__(self, config: GPUConfig, vertex_lines: Sequence[int]):
        prefix = _canonical_json({
            "config": config_fingerprint(config),
            "vertex_lines": list(vertex_lines),
        })
        self._prefix = hashlib.sha256(prefix.encode("ascii")).hexdigest()
        self._tiles: Dict[TileCoord, str] = {}

    def add(self, tile: TileCoord, entry: TileTraceEntry) -> str:
        """Fold one tile in; returns (and records) its tile digest."""
        digest = tile_digest(tile, entry)
        self._tiles[tuple(tile)] = digest
        return digest

    def add_digest(self, tile: TileCoord, digest: str) -> None:
        """Fold in a tile whose digest is already known (verified chunk)."""
        self._tiles[tuple(tile)] = digest

    @property
    def tile_digests(self) -> Dict[TileCoord, str]:
        return dict(self._tiles)

    def finish(self, num_quads: int, pixels_shaded: int) -> str:
        """The frame digest: chain over sorted tiles, stats sealed last.

        ``num_quads`` / ``pixels_shaded`` are order-independent sums
        over the per-tile quad streams, so a streaming producer can
        accumulate them while tiles flow past and still seal the same
        digest as :func:`trace_digest` over the materialized trace.
        """
        chain = self._prefix
        for tile in sorted(self._tiles):
            chain = hashlib.sha256(
                (chain + self._tiles[tile]).encode("ascii")
            ).hexdigest()
        stats = _canonical_json({
            "num_quads": num_quads,
            "pixels_shaded": pixels_shaded,
        })
        return hashlib.sha256((chain + stats).encode("ascii")).hexdigest()


def trace_digest(trace: FrameTrace) -> str:
    """Canonical content hash of a frame trace.

    Unlike the pickle-payload hash of :class:`TraceCheckpointStore`,
    this digest is a function of the trace's *semantic* content (tiles
    sorted, quads in stream order, every replay-relevant field), so two
    structurally equal traces hash equally regardless of how they were
    serialized.  Built with :class:`TraceDigestBuilder`, which is what
    lets the streaming dataflow compute the same digest without ever
    holding the whole frame.
    """
    builder = TraceDigestBuilder(trace.config, trace.vertex_lines)
    for tile, entry in trace.tiles.items():
        builder.add(tile, entry)
    return builder.finish(trace.stats.num_quads, trace.stats.pixels_shaded)


class TraceCheckpointStore:
    """Disk-backed, integrity-checked store of frame traces."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.trace"

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def save(self, key: str, trace: FrameTrace) -> Path:
        """Atomically persist ``trace`` under ``key``."""
        payload = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
        header = _canonical_json({
            "version": CHECKPOINT_VERSION,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "num_quads": trace.stats.num_quads,
            "num_tiles": len(trace.tiles),
        })
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".trace"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header.encode("ascii") + b"\n")
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if fault_point(SITE_CHECKPOINT_SAVE, key=key) == KIND_TORN_WRITE:
            # Simulated torn write: the rename survived but the tail of
            # the payload never hit the platter.  load() must detect it.
            _truncate_file(path, 0.5)
        return path

    def load(self, key: str) -> FrameTrace:
        """Load and fully verify the trace stored under ``key``.

        Raises :class:`TraceIntegrityError` (a
        :class:`~repro.errors.CheckpointError`) for anything short of a
        byte-identical, structurally sound checkpoint; callers treat
        that as a cache miss and re-render, never as a fatal error.
        """
        path = self.path_for(key)
        fault = fault_point(SITE_CHECKPOINT_LOAD, key=key)
        if fault == KIND_TRUNCATE:
            _truncate_file(path, 0.5)
        elif fault == KIND_CORRUPT:
            _flip_last_byte(path)
        try:
            with open(path, "rb") as handle:
                header_line = handle.readline(_HEADER_LIMIT)
                payload = handle.read()
        except OSError as error:
            raise TraceIntegrityError(
                f"cannot read checkpoint {path}: {error}"
            ) from error
        try:
            header = json.loads(header_line.decode("ascii"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceIntegrityError(
                f"checkpoint {path} has a corrupt header"
            ) from error
        if header.get("version") != CHECKPOINT_VERSION:
            raise TraceIntegrityError(
                f"checkpoint {path} has unsupported version "
                f"{header.get('version')!r}"
            )
        if header.get("key") != key:
            raise TraceIntegrityError(
                f"checkpoint {path} was written for key "
                f"{header.get('key')!r}, not {key!r}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise TraceIntegrityError(
                f"checkpoint {path} payload hash mismatch "
                "(file corrupted or tampered with)"
            )
        try:
            trace = pickle.loads(payload)
        except Exception as error:
            raise TraceIntegrityError(
                f"checkpoint {path} payload does not unpickle: {error}"
            ) from error
        if not isinstance(trace, FrameTrace):
            raise TraceIntegrityError(
                f"checkpoint {path} holds a {type(trace).__name__}, "
                "not a FrameTrace"
            )
        if len(trace.tiles) != header.get("num_tiles"):
            raise TraceIntegrityError(
                f"checkpoint {path} tile count disagrees with its header"
            )
        verify_trace(trace)
        return trace


class ChunkedFrameDigest:
    """Running digest of one chunked frame, sealed after full traversal.

    Created by :meth:`TileChunkStore.begin_frame`; the streaming driver
    feeds every tile (rendered or chunk-loaded) through :meth:`add`,
    and :meth:`seal` either writes the frame meta — vertex prologue,
    per-tile hash chain, final trace digest — or cross-checks it against
    a meta a previous run already sealed, raising
    :class:`TraceIntegrityError` on divergence.
    """

    def __init__(
        self,
        store: "TileChunkStore",
        config: GPUConfig,
        vertex_lines: Sequence[int],
    ):
        self._store = store
        self._builder = TraceDigestBuilder(config, vertex_lines)
        self._vertex_lines = list(vertex_lines)
        self._num_quads = 0
        self._pixels_shaded = 0

    def add(
        self, tile: TileCoord, entry: TileTraceEntry,
        digest: Optional[str] = None,
    ) -> None:
        """Fold one tile in; ``digest`` skips rehashing a verified chunk."""
        if digest is None:
            self._builder.add(tile, entry)
        else:
            self._builder.add_digest(tile, digest)
        self._num_quads += len(entry.quads)
        self._pixels_shaded += sum(
            quad.covered_pixels for quad in entry.quads
        )

    def seal(self) -> str:
        """Finish the chain; persist or cross-check the frame meta."""
        digest = self._builder.finish(self._num_quads, self._pixels_shaded)
        existing = self._store.frame_meta()
        if existing is not None:
            if existing.get("digest") != digest:
                raise TraceIntegrityError(
                    f"chunked frame under {self._store.directory} "
                    f"reassembled to digest {digest}, but its sealed "
                    f"meta records {existing.get('digest')!r}"
                )
            return digest
        self._store.write_frame_meta(
            digest=digest,
            vertex_lines=self._vertex_lines,
            tile_digests=self._builder.tile_digests,
            num_quads=self._num_quads,
            pixels_shaded=self._pixels_shaded,
        )
        return digest


class TileChunkStore:
    """Tile-granular trace checkpoints, hash-chained to the trace digest.

    The streaming dataflow's durable form of pass 1: one verified chunk
    per tile coordinate (same header-line + pickle layout as
    :class:`TraceCheckpointStore`, same torn-write/corruption fault
    points, same atomic replace) plus a ``frame.json`` meta record
    holding the vertex prologue and the per-tile hash chain whose final
    link is exactly :func:`trace_digest` of the reassembled trace.

    A missing, truncated or corrupt chunk is a *cache miss* — the
    caller re-renders that one tile — never an error, mirroring the
    trace store's self-healing contract at tile granularity.  The first
    design point of a streaming campaign therefore renders each tile
    once and chunks it; every later design point replays the same game
    from chunks, restoring the render-once economy while peak memory
    stays O(tiles-in-flight).
    """

    META_FILENAME = "frame.json"

    def __init__(self, directory: os.PathLike, key: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key = key

    # -- per-tile chunks -------------------------------------------------------

    def chunk_path(self, tile: TileCoord) -> Path:
        return self.directory / f"t{tile[0]:03d}_{tile[1]:03d}.chunk"

    def _fault_key(self, tile: TileCoord) -> str:
        return f"{self.key}:{tile[0]},{tile[1]}"

    def save_tile(self, tile: TileCoord, entry: TileTraceEntry) -> str:
        """Atomically persist one tile's entry; returns its tile digest."""
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        digest = tile_digest(tile, entry)
        header = _canonical_json({
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "tile": list(tile),
            "sha256": hashlib.sha256(payload).hexdigest(),
            "tile_digest": digest,
            "num_quads": len(entry.quads),
        })
        path = self.chunk_path(tile)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".chunk"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header.encode("ascii") + b"\n")
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if fault_point(
            SITE_CHUNK_SAVE, key=self._fault_key(tile)
        ) == KIND_TORN_WRITE:
            # Same simulated torn write as the trace store: the rename
            # survived but the payload tail never hit the platter; the
            # next load must detect it and re-render this one tile.
            _truncate_file(path, 0.5)
        return digest

    def load_tile(
        self, tile: TileCoord
    ) -> Optional[Tuple[TileTraceEntry, str]]:
        """Load one verified chunk, or ``None`` to mean "re-render me".

        Returns ``(entry, tile_digest)`` so the caller's running frame
        digest can reuse the chunk's verified hash instead of rehashing
        the entry on every replay.
        """
        path = self.chunk_path(tile)
        if not path.is_file():
            return None
        fault = fault_point(SITE_CHUNK_LOAD, key=self._fault_key(tile))
        if fault == KIND_TRUNCATE:
            _truncate_file(path, 0.5)
        elif fault == KIND_CORRUPT:
            _flip_last_byte(path)
        try:
            with open(path, "rb") as handle:
                header_line = handle.readline(_HEADER_LIMIT)
                payload = handle.read()
            header = json.loads(header_line.decode("ascii"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            header.get("version") != CHECKPOINT_VERSION
            or header.get("key") != self.key
            or header.get("tile") != list(tile)
        ):
            return None
        if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(entry, TileTraceEntry):
            return None
        digest = header.get("tile_digest")
        if not isinstance(digest, str):
            return None
        return entry, digest

    # -- frame meta ------------------------------------------------------------

    def meta_path(self) -> Path:
        return self.directory / self.META_FILENAME

    def frame_meta(self) -> Optional[Dict[str, Any]]:
        """The sealed frame record, or ``None`` while incomplete/corrupt."""
        path = self.meta_path()
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="ascii") as handle:
                meta = json.load(handle)
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("key") != self.key:
            return None
        return meta

    def vertex_lines(self) -> Optional[List[int]]:
        """The frame's vertex prologue, once a full traversal sealed it."""
        meta = self.frame_meta()
        if meta is None:
            return None
        lines = meta.get("vertex_lines")
        return list(lines) if isinstance(lines, list) else None

    def digest(self) -> Optional[str]:
        """The sealed trace digest, or ``None`` while incomplete."""
        meta = self.frame_meta()
        return meta.get("digest") if meta else None

    def write_frame_meta(
        self,
        digest: str,
        vertex_lines: Sequence[int],
        tile_digests: Dict[TileCoord, str],
        num_quads: int,
        pixels_shaded: int,
    ) -> Path:
        """Atomically seal the frame: chain record + final digest."""
        chain = [
            {"tile": list(tile), "digest": tile_digests[tile]}
            for tile in sorted(tile_digests)
        ]
        meta = _canonical_json({
            "version": CHECKPOINT_VERSION,
            "key": self.key,
            "digest": digest,
            "vertex_lines": list(vertex_lines),
            "num_quads": num_quads,
            "pixels_shaded": pixels_shaded,
            "chain": chain,
        })
        path = self.meta_path()
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="ascii") as handle:
                handle.write(meta + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def begin_frame(
        self, config: GPUConfig, vertex_lines: Sequence[int]
    ) -> ChunkedFrameDigest:
        """Start the running digest for one full tile traversal."""
        return ChunkedFrameDigest(self, config, vertex_lines)


class SweepProgress:
    """Append-only journal of completed sweep rows for one campaign.

    Each line is ``{"campaign": ..., "design": ..., "row": {...}}``;
    rows of other campaigns sharing the file are ignored, and malformed
    lines (e.g. from a crash mid-append) are skipped rather than trusted.
    """

    FILENAME = "sweep_progress.jsonl"

    def __init__(self, directory: os.PathLike, campaign: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.campaign = campaign

    def completed_rows(self) -> Dict[str, Dict[str, Any]]:
        """Design-point name -> recorded row dict, for this campaign.

        A crash mid-append (power cut, SIGKILL) legitimately leaves a
        partial trailing line; it is dropped with a warning — the row
        it would have recorded is simply recomputed.  A malformed line
        *before* the end means something else scribbled on the journal;
        it is skipped with a louder warning, but one bad line never
        costs the rows around it.
        """
        rows: Dict[str, Dict[str, Any]] = {}
        if not self.path.is_file():
            return rows
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    warnings.warn(
                        f"dropping partial trailing line in sweep journal "
                        f"{self.path} (crash mid-append?); its row will "
                        f"be recomputed",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                else:
                    warnings.warn(
                        f"skipping malformed line {index + 1} in sweep "
                        f"journal {self.path}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
            if (
                isinstance(record, dict)
                and record.get("campaign") == self.campaign
                and isinstance(record.get("row"), dict)
                and isinstance(record.get("design"), str)
            ):
                rows[record["design"]] = record["row"]
        return rows

    def record(self, design: str, row: Dict[str, Any]) -> None:
        """Append one completed row; flushed so a crash loses at most it."""
        line = json.dumps(
            {"campaign": self.campaign, "design": design, "row": row},
            sort_keys=True,
        )
        fault = fault_point(SITE_JOURNAL_RECORD)
        if fault == KIND_PARTIAL_LINE:
            # Die mid-append: flush a prefix with no newline, exactly
            # the state a power cut leaves, then kill the campaign.
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedKill(
                f"injected kill mid-append of row {design!r}"
            )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def campaign_key(config: GPUConfig, games, baseline_name: str) -> str:
    """Hash identifying one sweep campaign for resume matching.

    Includes the GPU configuration, the game list and the baseline, but
    *not* the full grid: a resumed run may extend the grid and still
    reuse every previously completed point.
    """
    text = _canonical_json({
        "config": config_fingerprint(config),
        "games": list(games),
        "baseline": baseline_name,
    })
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def read_manifest(path: os.PathLike) -> Optional[Dict[str, Any]]:
    """Load a previously written run manifest, or ``None`` if absent."""
    path = Path(path)
    if not path.is_file():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
