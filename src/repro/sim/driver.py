"""Pass 1: the functional frame render that produces the trace.

Runs the full Graphics Pipeline — Vertex Stage, Primitive Assembly,
clipping, Polygon List Builder, and per-tile rasterization with Early-Z —
and records a :class:`FrameTrace`: the per-tile shaded-quad streams plus
the vertex and Parameter Buffer cache lines.

Everything in the trace is independent of the quad schedule, the subtile
assignment, the tile order and the barrier architecture: tiles are
disjoint (so tile order cannot change Z results), Early-Z depends only on
within-tile primitive order (fixed by the program), and quad-to-SC
mapping does not alter which fragments survive.  That is what makes the
two-pass split exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord, scanline_order
from repro.errors import ConfigError
from repro.geometry.clipping import clip_batch, clip_primitive
from repro.geometry.mesh import VERTEX_STRIDE_BYTES
from repro.geometry.primitive_assembly import PrimitiveAssembler
from repro.geometry.vertex_stage import VertexStage
from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer, FrameBuffer
from repro.raster.fragment import Quad
from repro.raster.rasterizer import PendingTileQuads, Rasterizer
from repro.raster.setup import ScreenBatch, setup_draw_batch, setup_primitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.sampler import FilterMode, Sampler
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import TileFetcher
from repro.workloads.recipe import BuiltWorkload

LINE_BYTES = 64

#: Render engine names accepted by :class:`FrameRenderer`.
ENGINES = ("fast", "reference")


@dataclass
class TileTraceEntry:
    """One tile's replayable work."""

    fetch_lines: List[int] = field(default_factory=list)
    fetch_cycles: int = 1
    quads: List[Quad] = field(default_factory=list)
    #: Lazy cache for :meth:`quad_stream`; derived data, never pickled
    #: or compared.
    _stream: Optional[List[Tuple[int, Tuple[int, ...], int, int]]] = field(
        default=None, repr=False, compare=False
    )
    _stream_side: int = field(default=0, repr=False, compare=False)

    def quad_stream(
        self, side: int
    ) -> List[Tuple[int, Tuple[int, ...], int, int]]:
        """Per quad: ``(qy * side + qx, texture_lines, num_lines,
        compute_cycles)``.

        The flattened form the replay hot loop consumes — quad identity
        reduced to the scheduler-LUT slot, plus the per-quad cost
        inputs.  Computed once per entry and reused across every design
        point and engine replaying the trace (the derivation is pure,
        so sharing cannot couple replays).
        """
        stream = self._stream
        if stream is None or self._stream_side != side:
            stream = [
                (
                    q.qy * side + q.qx,
                    q.texture_lines,
                    len(q.texture_lines),
                    q.alu_cycles + len(q.texture_lines),
                )
                for q in self.quads
            ]
            self._stream = stream
            self._stream_side = side
        return stream

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_stream"] = None  # derived; keep checkpoints lean
        return state


@dataclass
class RenderStats:
    """Summary statistics of the functional render."""

    num_draws: int = 0
    num_primitives: int = 0
    num_clipped_primitives: int = 0
    num_quads: int = 0
    pixels_shaded: int = 0
    z_cull_rate: float = 0.0
    nonempty_tiles: int = 0

    def overdraw_factor(self, config: GPUConfig) -> float:
        """Shaded pixels per screen pixel (the depth-complexity proxy)."""
        screen = config.screen_width * config.screen_height
        return self.pixels_shaded / screen if screen else 0.0


@dataclass
class FrameTrace:
    """Schedule-independent record of one rendered frame."""

    config: GPUConfig
    vertex_lines: List[int]
    tiles: Dict[TileCoord, TileTraceEntry]
    stats: RenderStats

    @property
    def total_quads(self) -> int:
        return sum(len(t.quads) for t in self.tiles.values())

    @property
    def total_texture_lines(self) -> int:
        return sum(
            len(q.texture_lines)
            for t in self.tiles.values() for q in t.quads
        )


class FrameRenderer:
    """Runs pass 1 for one workload.

    Two engines produce bit-identical :class:`FrameTrace` records:

    - ``"fast"`` (default) batches the whole Geometry Pipeline and the
      per-tile rasterization with numpy, falling back to the scalar
      clipper only for triangles straddling the near plane.
    - ``"reference"`` is the original scalar pipeline, kept verbatim as
      the equality oracle (``sanitizer.trace_digest`` matches per game).

    Image output and non-bilinear samplers always take the reference
    path — the fast engine only accelerates trace generation.
    """

    def __init__(
        self,
        config: GPUConfig,
        sampler: Optional[Sampler] = None,
        engine: str = "fast",
    ):
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown render engine {engine!r}; "
                f"choose from {', '.join(ENGINES)}"
            )
        self.config = config
        self.sampler = sampler or Sampler()
        self.engine = engine

    def render(
        self, workload: BuiltWorkload, with_image: bool = False
    ) -> Tuple[FrameTrace, Optional[FrameBuffer]]:
        """Render one frame; returns the trace and (optionally) the image."""
        if (
            self.engine == "fast"
            and not with_image
            and self.sampler.filter_mode is FilterMode.BILINEAR
        ):
            return self._render_fast(workload), None
        return self._render_reference(workload, with_image)

    def _render_fast(self, workload: BuiltWorkload) -> FrameTrace:
        """Batched pass 1: same trace as the reference engine, vectorized."""
        scene = workload.scene
        config = self.config
        stats = RenderStats(num_draws=len(scene.draws))

        # Geometry Pipeline, one batch per draw.
        vertex_stage = VertexStage(hierarchy=None)
        assembler = PrimitiveAssembler()
        vertex_lines: List[int] = []
        parts: List[ScreenBatch] = []
        for draw in scene.draws:
            index = np.asarray(draw.mesh.indices, dtype=np.int64)
            vertex_lines.extend(
                (
                    (draw.mesh.base_address + index * VERTEX_STRIDE_BYTES)
                    // LINE_BYTES
                ).tolist()
            )
            vertex_batch = vertex_stage.run_batch(
                draw, scene.view_matrix, scene.projection_matrix
            )
            primitive_batch = assembler.assemble_batch(draw, vertex_batch)
            stats.num_primitives += len(primitive_batch)
            keep, fallback = clip_batch(primitive_batch)
            parts.append(
                setup_draw_batch(
                    primitive_batch, keep, fallback,
                    config.screen_width, config.screen_height,
                )
            )
        batch = ScreenBatch.concatenate(parts)
        stats.num_clipped_primitives = len(batch)

        # Tiling Engine.
        builder = PolygonListBuilder(config)
        bins = builder.build_fast(batch)

        # Raster Pipeline: whole-tile rasterization, then frame-level
        # footprint batching.
        rasterizer = Rasterizer(config, workload.textures, self.sampler)
        zbuffer = ZBuffer(config.tile_size)
        tiles: Dict[TileCoord, TileTraceEntry] = {}
        pending: List[PendingTileQuads] = []
        for tile in scanline_order(config.tiles_x, config.tiles_y):
            rows = bins.rows_for_tile(tile)
            count = len(rows)
            tiles[tile] = TileTraceEntry(
                fetch_lines=TileFetcher.fetch_lines_fast(
                    bins, tile, batch.pid[rows]
                ),
                fetch_cycles=max(
                    count * config.tile_fetcher_cycles_per_primitive, 1
                ),
            )
            if count:
                tile_quads = rasterizer.rasterize_tile_fast(
                    tile, batch, rows, zbuffer
                )
                if tile_quads is not None:
                    pending.append(tile_quads)

        for tile, quads in rasterizer.finalize_quads_fast(
            batch, pending
        ).items():
            tiles[tile].quads = quads
            if quads:
                stats.nonempty_tiles += 1

        stats.num_quads = rasterizer.quads_emitted
        stats.pixels_shaded = rasterizer.pixels_shaded
        stats.z_cull_rate = zbuffer.cull_rate
        return FrameTrace(
            config=config,
            vertex_lines=vertex_lines,
            tiles=tiles,
            stats=stats,
        )

    def _render_reference(
        self, workload: BuiltWorkload, with_image: bool = False
    ) -> Tuple[FrameTrace, Optional[FrameBuffer]]:
        """The original scalar pass 1 (the fast engine's equality oracle)."""
        scene = workload.scene
        config = self.config
        stats = RenderStats(num_draws=len(scene.draws))

        # Geometry Pipeline.
        vertex_stage = VertexStage(hierarchy=None)
        assembler = PrimitiveAssembler()
        vertex_lines: List[int] = []
        screen_primitives = []
        for draw in scene.draws:
            for index in draw.mesh.indices:
                vertex_lines.append(draw.mesh.vertex_address(index) // LINE_BYTES)
            transformed = vertex_stage.run(
                draw, scene.view_matrix, scene.projection_matrix
            )
            for primitive in assembler.assemble(draw, transformed):
                stats.num_primitives += 1
                for clipped in clip_primitive(primitive):
                    stats.num_clipped_primitives += 1
                    screen_primitives.append(
                        setup_primitive(
                            clipped, config.screen_width, config.screen_height
                        )
                    )

        # Tiling Engine.
        builder = PolygonListBuilder(config)
        parameter_buffer = builder.build(screen_primitives)

        # Raster Pipeline (functional), canonical scanline traversal.
        rasterizer = Rasterizer(config, workload.textures, self.sampler)
        zbuffer = ZBuffer(config.tile_size)
        fetcher = TileFetcher(config, hierarchy=None)
        framebuffer = (
            FrameBuffer(config.screen_width, config.screen_height, config.tile_size)
            if with_image else None
        )
        color_buffer = ColorBuffer(config.tile_size) if with_image else None
        blender = BlendingUnit() if with_image else None

        tiles: Dict[TileCoord, TileTraceEntry] = {}
        for tile in scanline_order(config.tiles_x, config.tiles_y):
            primitives = parameter_buffer.primitives_for_tile(tile)
            entry = TileTraceEntry(
                fetch_lines=TileFetcher.fetch_lines(
                    parameter_buffer, tile, primitives
                ),
                fetch_cycles=fetcher.fetch_cycles(parameter_buffer, tile),
            )
            if primitives:
                zbuffer.clear()
                if color_buffer is not None:
                    color_buffer.clear()
                entry.quads = rasterizer.rasterize_tile(
                    tile, primitives, zbuffer, color_buffer, blender
                )
                if framebuffer is not None and color_buffer is not None:
                    color_buffer.flush_tile(framebuffer, tile)
                if entry.quads:
                    stats.nonempty_tiles += 1
            tiles[tile] = entry

        stats.num_quads = rasterizer.quads_emitted
        stats.pixels_shaded = rasterizer.pixels_shaded
        stats.z_cull_rate = zbuffer.cull_rate
        trace = FrameTrace(
            config=config,
            vertex_lines=vertex_lines,
            tiles=tiles,
            stats=stats,
        )
        return trace, framebuffer
