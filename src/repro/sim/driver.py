"""Pass 1: the functional frame render that produces the trace.

Runs the full Graphics Pipeline — Vertex Stage, Primitive Assembly,
clipping, Polygon List Builder, and per-tile rasterization with Early-Z —
and records a :class:`FrameTrace`: the per-tile shaded-quad streams plus
the vertex and Parameter Buffer cache lines.

Everything in the trace is independent of the quad schedule, the subtile
assignment, the tile order and the barrier architecture: tiles are
disjoint (so tile order cannot change Z results), Early-Z depends only on
within-tile primitive order (fixed by the program), and quad-to-SC
mapping does not alter which fragments survive.  That is what makes the
two-pass split exact rather than approximate — and what makes the
*incremental* API below exact as well: :meth:`FrameRenderer.render_tiles`
emits tiles one at a time, in **any** requested order, and every emitted
:class:`TileTraceEntry` is bit-identical to the one a whole-frame
:meth:`FrameRenderer.render` would have produced.

The incremental split is the producer half of the streaming tile
dataflow (:mod:`repro.sim.stream`): geometry, clipping and binning run
once up front (:meth:`FrameRenderer.begin_tiles`), then tiles are
rasterized on demand so a consumer can replay and drop each tile without
ever materializing the full frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord, scanline_order
from repro.errors import ConfigError
from repro.geometry.clipping import clip_batch, clip_primitive
from repro.geometry.mesh import VERTEX_STRIDE_BYTES
from repro.geometry.primitive_assembly import PrimitiveAssembler
from repro.geometry.vertex_stage import VertexStage
from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer, FrameBuffer
from repro.raster.fragment import Quad
from repro.raster.rasterizer import PendingTileQuads, Rasterizer
from repro.raster.setup import ScreenBatch, setup_draw_batch, setup_primitive
from repro.raster.zbuffer import ZBuffer
from repro.texture.sampler import FilterMode, Sampler
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import TileFetcher
from repro.workloads.recipe import BuiltWorkload

LINE_BYTES = 64

#: Render engine names accepted by :class:`FrameRenderer`.
ENGINES = ("fast", "reference")

#: Tiles buffered per footprint-batching flush of the incremental fast
#: pass.  Large enough that the vectorized LOD/cache-line math in
#: ``finalize_quads_fast`` keeps its batching win, small enough that a
#: streaming consumer holds O(group) tiles rather than the frame.
#: ``group_size=0`` means "one flush for the whole frame", which is the
#: exact allocation pattern (and arithmetic) of the monolithic render.
DEFAULT_GROUP_TILES = 16


@dataclass
class TileTraceEntry:
    """One tile's replayable work."""

    fetch_lines: List[int] = field(default_factory=list)
    fetch_cycles: int = 1
    quads: List[Quad] = field(default_factory=list)
    #: Lazy cache for :meth:`quad_stream`; derived data, never pickled
    #: or compared.
    _stream: Optional[List[Tuple[int, Tuple[int, ...], int, int]]] = field(
        default=None, repr=False, compare=False
    )
    _stream_side: int = field(default=0, repr=False, compare=False)

    def quad_stream(
        self, side: int
    ) -> List[Tuple[int, Tuple[int, ...], int, int]]:
        """Per quad: ``(qy * side + qx, texture_lines, num_lines,
        compute_cycles)``.

        The flattened form the replay hot loop consumes — quad identity
        reduced to the scheduler-LUT slot, plus the per-quad cost
        inputs.  Computed once per entry and reused across every design
        point and engine replaying the trace (the derivation is pure,
        so sharing cannot couple replays).
        """
        stream = self._stream
        if stream is None or self._stream_side != side:
            stream = [
                (
                    q.qy * side + q.qx,
                    q.texture_lines,
                    len(q.texture_lines),
                    q.alu_cycles + len(q.texture_lines),
                )
                for q in self.quads
            ]
            self._stream = stream
            self._stream_side = side
        return stream

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_stream"] = None  # derived; keep checkpoints lean
        return state


@dataclass
class RenderStats:
    """Summary statistics of the functional render."""

    num_draws: int = 0
    num_primitives: int = 0
    num_clipped_primitives: int = 0
    num_quads: int = 0
    pixels_shaded: int = 0
    z_cull_rate: float = 0.0
    nonempty_tiles: int = 0

    def overdraw_factor(self, config: GPUConfig) -> float:
        """Shaded pixels per screen pixel (the depth-complexity proxy)."""
        screen = config.screen_width * config.screen_height
        return self.pixels_shaded / screen if screen else 0.0


@dataclass
class FrameTrace:
    """Schedule-independent record of one rendered frame."""

    config: GPUConfig
    vertex_lines: List[int]
    tiles: Dict[TileCoord, TileTraceEntry]
    stats: RenderStats

    @property
    def total_quads(self) -> int:
        return sum(len(t.quads) for t in self.tiles.values())

    @property
    def total_texture_lines(self) -> int:
        return sum(
            len(q.texture_lines)
            for t in self.tiles.values() for q in t.quads
        )


class _FastTilePass:
    """Incremental fast-engine pass 1: geometry up front, tiles on demand.

    The constructor runs everything that is *frame*-scoped — the batched
    Geometry Pipeline, clipping, and Polygon List binning.  Tiles are
    then rasterized one at a time by :meth:`tile_entry`, with the
    footprint batching of ``finalize_quads_fast`` amortized over groups
    of buffered tiles (:meth:`iter_tiles`) or collapsed to a single tile
    (:meth:`render_tile`, the checkpoint-resume path).  Grouping only
    partitions the footprint math — every per-quad LOD and cache-line
    row depends on that quad's own lanes alone — so any group size
    yields bit-identical entries.
    """

    framebuffer: Optional[FrameBuffer] = None

    def __init__(self, renderer: "FrameRenderer", workload: BuiltWorkload):
        scene = workload.scene
        config = renderer.config
        stats = RenderStats(num_draws=len(scene.draws))

        # Geometry Pipeline, one batch per draw.
        vertex_stage = VertexStage(hierarchy=None)
        assembler = PrimitiveAssembler()
        vertex_lines: List[int] = []
        parts: List[ScreenBatch] = []
        for draw in scene.draws:
            index = np.asarray(draw.mesh.indices, dtype=np.int64)
            vertex_lines.extend(
                (
                    (draw.mesh.base_address + index * VERTEX_STRIDE_BYTES)
                    // LINE_BYTES
                ).tolist()
            )
            vertex_batch = vertex_stage.run_batch(
                draw, scene.view_matrix, scene.projection_matrix
            )
            primitive_batch = assembler.assemble_batch(draw, vertex_batch)
            stats.num_primitives += len(primitive_batch)
            keep, fallback = clip_batch(primitive_batch)
            parts.append(
                setup_draw_batch(
                    primitive_batch, keep, fallback,
                    config.screen_width, config.screen_height,
                )
            )
        batch = ScreenBatch.concatenate(parts)
        stats.num_clipped_primitives = len(batch)

        # Tiling Engine.
        builder = PolygonListBuilder(config)
        self._bins = builder.build_fast(batch)
        self._batch = batch
        self._config = config
        self._rasterizer = Rasterizer(config, workload.textures, renderer.sampler)
        self._zbuffer = ZBuffer(config.tile_size)
        self.vertex_lines = vertex_lines
        self.stats = stats

    def tile_entry(
        self, tile: TileCoord
    ) -> Tuple[TileTraceEntry, Optional[PendingTileQuads]]:
        """Rasterize one tile; quads stay pending until a flush."""
        bins = self._bins
        batch = self._batch
        config = self._config
        rows = bins.rows_for_tile(tile)
        count = len(rows)
        entry = TileTraceEntry(
            fetch_lines=TileFetcher.fetch_lines_fast(
                bins, tile, batch.pid[rows]
            ),
            fetch_cycles=max(
                count * config.tile_fetcher_cycles_per_primitive, 1
            ),
        )
        pending = None
        if count:
            pending = self._rasterizer.rasterize_tile_fast(
                tile, batch, rows, self._zbuffer
            )
        return entry, pending

    def _flush(self, group, pending):
        """Run the footprint batching for one buffered group of tiles."""
        if pending:
            quads_by_tile = self._rasterizer.finalize_quads_fast(
                self._batch, pending
            )
            stats = self.stats
            for tile, entry in group:
                quads = quads_by_tile.get(tile)
                if quads:
                    entry.quads = quads
                    stats.nonempty_tiles += 1
        return group

    def render_tile(self, tile: TileCoord) -> TileTraceEntry:
        """One finished tile, finalized immediately (group of one)."""
        entry, pending = self.tile_entry(tile)
        if pending is not None:
            self._flush(((tile, entry),), (pending,))
        return entry

    def iter_tiles(
        self, order: Iterable[TileCoord], group_size: int = DEFAULT_GROUP_TILES
    ) -> Iterator[Tuple[TileCoord, TileTraceEntry]]:
        """Yield ``(tile, finished entry)`` in ``order``.

        ``group_size`` bounds how many tiles are in flight between
        footprint flushes; ``0`` defers to one whole-frame flush — the
        monolithic render's exact behaviour.
        """
        group: List[Tuple[TileCoord, TileTraceEntry]] = []
        pending: List[PendingTileQuads] = []
        for tile in order:
            entry, tile_pending = self.tile_entry(tile)
            group.append((tile, entry))
            if tile_pending is not None:
                pending.append(tile_pending)
            if group_size and len(group) >= group_size:
                yield from self._flush(group, pending)
                group = []
                pending = []
        yield from self._flush(group, pending)

    def finish(self) -> RenderStats:
        """Complete the frame-level counters; valid after full iteration."""
        stats = self.stats
        rasterizer = self._rasterizer
        stats.num_quads = rasterizer.quads_emitted
        stats.pixels_shaded = rasterizer.pixels_shaded
        stats.z_cull_rate = self._zbuffer.cull_rate
        return stats


class _ReferenceTilePass:
    """Incremental scalar pass 1 (the fast pass's equality oracle).

    Per-tile state (Z-buffer, Color Buffer) is cleared on entry to each
    tile, so tiles can be produced in any order — the same disjointness
    argument the module docstring makes for the whole trace.
    """

    def __init__(
        self,
        renderer: "FrameRenderer",
        workload: BuiltWorkload,
        with_image: bool = False,
    ):
        scene = workload.scene
        config = renderer.config
        stats = RenderStats(num_draws=len(scene.draws))

        # Geometry Pipeline.
        vertex_stage = VertexStage(hierarchy=None)
        assembler = PrimitiveAssembler()
        vertex_lines: List[int] = []
        screen_primitives = []
        for draw in scene.draws:
            for index in draw.mesh.indices:
                vertex_lines.append(draw.mesh.vertex_address(index) // LINE_BYTES)
            transformed = vertex_stage.run(
                draw, scene.view_matrix, scene.projection_matrix
            )
            for primitive in assembler.assemble(draw, transformed):
                stats.num_primitives += 1
                for clipped in clip_primitive(primitive):
                    stats.num_clipped_primitives += 1
                    screen_primitives.append(
                        setup_primitive(
                            clipped, config.screen_width, config.screen_height
                        )
                    )

        # Tiling Engine.
        builder = PolygonListBuilder(config)
        self._parameter_buffer = builder.build(screen_primitives)
        self._rasterizer = Rasterizer(config, workload.textures, renderer.sampler)
        self._zbuffer = ZBuffer(config.tile_size)
        self._fetcher = TileFetcher(config, hierarchy=None)
        self.framebuffer = (
            FrameBuffer(config.screen_width, config.screen_height, config.tile_size)
            if with_image else None
        )
        self._color_buffer = ColorBuffer(config.tile_size) if with_image else None
        self._blender = BlendingUnit() if with_image else None
        self.vertex_lines = vertex_lines
        self.stats = stats

    def render_tile(self, tile: TileCoord) -> TileTraceEntry:
        """One finished tile (canonical scalar rasterization)."""
        parameter_buffer = self._parameter_buffer
        primitives = parameter_buffer.primitives_for_tile(tile)
        entry = TileTraceEntry(
            fetch_lines=TileFetcher.fetch_lines(
                parameter_buffer, tile, primitives
            ),
            fetch_cycles=self._fetcher.fetch_cycles(parameter_buffer, tile),
        )
        if primitives:
            color_buffer = self._color_buffer
            self._zbuffer.clear()
            if color_buffer is not None:
                color_buffer.clear()
            entry.quads = self._rasterizer.rasterize_tile(
                tile, primitives, self._zbuffer, color_buffer, self._blender
            )
            if self.framebuffer is not None and color_buffer is not None:
                color_buffer.flush_tile(self.framebuffer, tile)
            if entry.quads:
                self.stats.nonempty_tiles += 1
        return entry

    def iter_tiles(
        self, order: Iterable[TileCoord], group_size: int = 0
    ) -> Iterator[Tuple[TileCoord, TileTraceEntry]]:
        """Yield ``(tile, entry)`` in ``order``; grouping is a no-op here."""
        for tile in order:
            yield tile, self.render_tile(tile)

    def finish(self) -> RenderStats:
        """Complete the frame-level counters; valid after full iteration."""
        stats = self.stats
        rasterizer = self._rasterizer
        stats.num_quads = rasterizer.quads_emitted
        stats.pixels_shaded = rasterizer.pixels_shaded
        stats.z_cull_rate = self._zbuffer.cull_rate
        return stats


class FrameRenderer:
    """Runs pass 1 for one workload.

    Two engines produce bit-identical :class:`FrameTrace` records:

    - ``"fast"`` (default) batches the whole Geometry Pipeline and the
      per-tile rasterization with numpy, falling back to the scalar
      clipper only for triangles straddling the near plane.
    - ``"reference"`` is the original scalar pipeline, kept verbatim as
      the equality oracle (``sanitizer.trace_digest`` matches per game).

    Image output and non-bilinear samplers always take the reference
    path — the fast engine only accelerates trace generation.

    Both engines expose the same two shapes of pass 1:

    - :meth:`render` — the whole frame at once, returning a
      :class:`FrameTrace`;
    - :meth:`begin_tiles` / :meth:`render_tiles` — the incremental form:
      frame-scoped geometry first, then per-tile emission in any order,
      which is what the streaming dataflow drivers consume.
    """

    def __init__(
        self,
        config: GPUConfig,
        sampler: Optional[Sampler] = None,
        engine: str = "fast",
    ):
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown render engine {engine!r}; "
                f"choose from {', '.join(ENGINES)}"
            )
        self.config = config
        self.sampler = sampler or Sampler()
        self.engine = engine

    def begin_tiles(self, workload: BuiltWorkload, with_image: bool = False):
        """Run the frame-scoped half of pass 1; returns a tile pass.

        The returned pass exposes ``vertex_lines`` (the Geometry
        Pipeline's cache lines, known before any tile is rasterized),
        ``iter_tiles(order, group_size)``, ``render_tile(tile)`` for
        selective re-render (checkpoint resume), and ``finish()`` for
        the frame-level :class:`RenderStats`.
        """
        if (
            self.engine == "fast"
            and not with_image
            and self.sampler.filter_mode is FilterMode.BILINEAR
        ):
            return _FastTilePass(self, workload)
        return _ReferenceTilePass(self, workload, with_image)

    def render_tiles(
        self,
        workload: BuiltWorkload,
        order: Optional[Iterable[TileCoord]] = None,
        group_size: int = DEFAULT_GROUP_TILES,
    ) -> Iterator[Tuple[TileCoord, TileTraceEntry]]:
        """Incremental pass 1: yield ``(tile, entry)`` pairs in ``order``.

        ``order`` defaults to scanline; a streaming replay passes the
        design point's traversal instead, so tiles are produced exactly
        when consumed.  Entries are bit-identical to :meth:`render`'s
        for any order and any ``group_size`` (tiles are disjoint; see
        the module docstring).
        """
        if order is None:
            order = scanline_order(self.config.tiles_x, self.config.tiles_y)
        return self.begin_tiles(workload).iter_tiles(order, group_size)

    def render(
        self, workload: BuiltWorkload, with_image: bool = False
    ) -> Tuple[FrameTrace, Optional[FrameBuffer]]:
        """Render one frame; returns the trace and (optionally) the image.

        Implemented on the incremental pass with ``group_size=0`` (one
        whole-frame footprint flush), which is the monolithic render's
        exact arithmetic and allocation pattern.
        """
        tile_pass = self.begin_tiles(workload, with_image)
        tiles: Dict[TileCoord, TileTraceEntry] = {}
        for tile, entry in tile_pass.iter_tiles(
            scanline_order(self.config.tiles_x, self.config.tiles_y),
            group_size=0,
        ):
            tiles[tile] = entry
        trace = FrameTrace(
            config=self.config,
            vertex_lines=tile_pass.vertex_lines,
            tiles=tiles,
            stats=tile_pass.finish(),
        )
        return trace, tile_pass.framebuffer
