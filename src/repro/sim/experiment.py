"""Experiment orchestration: run design points over the benchmark suite.

The expensive functional render (pass 1) is cached per game, so sweeping
a dozen design points costs one render plus a dozen cheap replays per
game — the same economy the paper gets from trace-driven simulation.
Attaching a :class:`~repro.sim.checkpoint.TraceCheckpointStore` makes
that cache durable: a re-run (or a crashed campaign's resume) loads
verified traces from disk instead of rendering again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.stats import geometric_mean
from repro.config import GPUConfig, TEST_CONFIG
from repro.core.dtexl import BASELINE, DTexLConfig
from repro.errors import CheckpointError, ReplayError
from repro.sim.checkpoint import TileChunkStore, TraceCheckpointStore, trace_key
from repro.sim.driver import FrameRenderer, FrameTrace
from repro.sim.faults import SITE_REPLAY, fault_point
from repro.sim.replay import RunResult, TraceReplayer
from repro.sim.stream import (
    FrameSource,
    OverlappedTileStream,
    StreamingTileStream,
    check_driver,
)
from repro.sim.resilience import (
    FailureRecord,
    ReplayBudget,
    RetryPolicy,
    run_guarded,
)
from repro.texture.sampler import Sampler
from repro.workloads.games import GAMES, build_game

#: Subdirectory of a trace checkpoint store holding per-tile chunks.
CHUNK_SUBDIR = "chunks"


@dataclass
class SuiteResult:
    """One design point's results over the whole suite.

    ``failures`` is populated only by fault-isolated runs
    (:meth:`ExperimentRunner.run_suite` with ``isolate_faults=True``):
    each entry is a game that crashed and was skipped.
    """

    design_point: str
    per_game: Dict[str, RunResult] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def total_l2_accesses(self) -> int:
        return sum(r.l2_accesses for r in self.per_game.values())

    def _baseline_run(self, baseline: "SuiteResult", game: str) -> RunResult:
        try:
            return baseline.per_game[game]
        except KeyError:
            raise ReplayError(
                f"cannot compare {self.design_point!r} against "
                f"{baseline.design_point!r}: baseline was not run over "
                f"game {game!r} (baseline games: "
                f"{sorted(baseline.per_game)})"
            ) from None

    def mean_speedup_vs(self, baseline: "SuiteResult") -> float:
        """Geometric-mean speedup over the suite against ``baseline``."""
        ratios = []
        for game, run in self.per_game.items():
            base = self._baseline_run(baseline, game)
            if run.frame_cycles == 0:
                raise ReplayError(
                    f"{self.design_point!r} reported zero frame cycles "
                    f"for game {game!r}; speedup is undefined"
                )
            ratios.append(base.frame_cycles / run.frame_cycles)
        if not ratios:
            raise ReplayError(
                f"{self.design_point!r} has no per-game results to "
                "compute a mean speedup from"
            )
        return geometric_mean(ratios)

    def mean_l2_decrease_vs(self, baseline: "SuiteResult") -> float:
        """Average percent decrease in L2 accesses vs ``baseline``."""
        decreases = []
        for game, run in self.per_game.items():
            base = self._baseline_run(baseline, game)
            if base.l2_accesses:
                decreases.append(
                    (base.l2_accesses - run.l2_accesses)
                    / base.l2_accesses * 100.0
                )
        return sum(decreases) / len(decreases) if decreases else 0.0

    def mean_energy_decrease_vs(self, baseline: "SuiteResult") -> float:
        """Average percent decrease in total GPU energy vs ``baseline``."""
        decreases = []
        for game, run in self.per_game.items():
            base = self._baseline_run(baseline, game)
            if base.energy.total_mj:
                decreases.append(
                    (base.energy.total_mj - run.energy.total_mj)
                    / base.energy.total_mj * 100.0
                )
        return sum(decreases) / len(decreases) if decreases else 0.0


class ExperimentRunner:
    """Caches traces and replays design points over the suite.

    ``stream`` picks the render→replay dataflow: ``"batch"`` (default)
    materializes each game's :class:`FrameTrace` once and replays it
    per design point; ``"streaming"`` renders tiles on the fly and
    drops them after replay, caching per-tile chunks in the checkpoint
    store (when attached) so later design points still pay one render;
    ``"overlap"`` renders in a worker process feeding a bounded queue
    while this process replays.  All three produce bit-identical
    :class:`RunResult`\\ s — the drivers change *when* memory and time
    are spent, never what is computed.
    """

    def __init__(
        self,
        config: GPUConfig = TEST_CONFIG,
        sampler: Optional[Sampler] = None,
        games: Optional[Iterable[str]] = None,
        checkpoint_store: Optional[TraceCheckpointStore] = None,
        budget: Optional[ReplayBudget] = None,
        stream: str = "batch",
    ):
        self.config = config
        self.renderer = FrameRenderer(config, sampler)
        self.replayer = TraceReplayer(config, budget=budget)
        self.games: List[str] = list(games) if games is not None else list(GAMES)
        self.checkpoint_store = checkpoint_store
        self.stream = check_driver(stream)
        self._traces: Dict[str, FrameTrace] = {}
        #: Functional renders actually performed (checkpoint hits skip it);
        #: the probe the resume tests use to prove no trace was re-rendered.
        #: On the streaming path a run that rendered *any* tile (instead
        #: of loading every chunk) counts as one render.
        self.renders_performed = 0
        #: Wall seconds per dataflow phase, accumulated across runs; the
        #: sweep folds these into the manifest's ``phase_seconds``.
        self.phase_seconds: Dict[str, float] = {}

    # -- pass 1 cache -----------------------------------------------------------

    def trace_for(self, alias: str) -> FrameTrace:
        """Return one game's frame trace, rendering only when needed.

        Lookup order: in-memory cache, then the checkpoint store (any
        :class:`CheckpointError` — truncated, corrupt, unreadable — is
        a cache miss: the checkpoint is discarded and re-rendered),
        then a fresh render whose result is checkpointed for the next
        run.
        """
        if alias in self._traces:
            return self._traces[alias]
        key = None
        if self.checkpoint_store is not None and alias in GAMES:
            key = trace_key(self.config, GAMES[alias].recipe)
            if self.checkpoint_store.contains(key):
                try:
                    trace = self.checkpoint_store.load(key)
                except CheckpointError:
                    pass  # fall through and re-render the real thing
                else:
                    self._traces[alias] = trace
                    return trace
        workload = build_game(alias, self.config)
        trace, _ = self.renderer.render(workload)
        self.renders_performed += 1
        self._traces[alias] = trace
        if key is not None:
            self.checkpoint_store.save(key, trace)
        return trace

    def prepare_traces(
        self, store: Optional[TraceCheckpointStore] = None
    ) -> Dict[str, str]:
        """Materialise every game's pass-1 trace into a checkpoint store.

        Returns ``{alias: trace_key}``.  The parallel sweep calls this
        in the parent process so each trace is rendered exactly once;
        workers then load them from ``store`` (or inherit them via
        fork).  ``store`` defaults to the runner's own checkpoint store
        and must be given when none is attached.
        """
        store = store if store is not None else self.checkpoint_store
        if store is None:
            raise ReplayError(
                "prepare_traces needs a TraceCheckpointStore: the runner "
                "has none attached and no store was passed"
            )
        keys: Dict[str, str] = {}
        for alias in self.games:
            trace = self.trace_for(alias)
            key = trace_key(self.config, GAMES[alias].recipe)
            if not store.contains(key):
                store.save(key, trace)
            keys[alias] = key
        return keys

    # -- streaming dataflow ------------------------------------------------------

    def chunk_store_for(self, alias: str) -> Optional[TileChunkStore]:
        """The game's per-tile chunk store, when checkpointing is on.

        Chunks live under ``<trace store>/chunks/<trace key>/`` so a
        campaign directory carries both granularities side by side and
        ``trace_key`` keeps chunked frames from colliding across
        configs or recipes.
        """
        if self.checkpoint_store is None or alias not in GAMES:
            return None
        key = trace_key(self.config, GAMES[alias].recipe)
        return TileChunkStore(
            self.checkpoint_store.directory / CHUNK_SUBDIR / key, key
        )

    def stream_for(
        self, alias: str
    ) -> Union[StreamingTileStream, OverlappedTileStream]:
        """Build this runner's configured tile stream for one game."""
        if self.stream == "overlap":
            if alias not in GAMES:
                build_game(alias, self.config)  # raises UnknownWorkloadError
            return OverlappedTileStream(
                FrameSource(config=self.config, recipe=GAMES[alias].recipe)
            )
        workload = build_game(alias, self.config)
        return StreamingTileStream(
            self.renderer, workload, chunk_store=self.chunk_store_for(alias)
        )

    # -- pass 2 -----------------------------------------------------------------

    def run(self, alias: str, design: DTexLConfig) -> RunResult:
        """Replay one game under one design point.

        The fault point keys on ``design/game`` and matches the one the
        sweep's parallel worker task evaluates, so serial and parallel
        campaigns see the same injected failures whichever stream
        driver executes the replay.
        """
        if self.stream == "batch":
            trace = self.trace_for(alias)
            fault_point(SITE_REPLAY, key=f"{design.name}/{alias}")
            return self.replayer.run(trace, design)
        start = time.monotonic()  # replint: disable=wall-clock -- dataflow phase attribution for the manifest, never a simulated quantity
        fault_point(SITE_REPLAY, key=f"{design.name}/{alias}")
        stream = self.stream_for(alias)
        result = self.replayer.run_stream(stream, design)
        if isinstance(stream, OverlappedTileStream) or stream.tiles_rendered:
            self.renders_performed += 1
        elapsed = time.monotonic() - start  # replint: disable=wall-clock -- dataflow phase attribution for the manifest, never a simulated quantity
        self.phase_seconds["streamed"] = (
            self.phase_seconds.get("streamed", 0.0) + elapsed
        )
        return result

    def run_suite(
        self,
        design: DTexLConfig,
        isolate_faults: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        fail_fast: bool = False,
    ) -> SuiteResult:
        """Replay every game of the suite under one design point.

        With ``isolate_faults`` a crashing game becomes a
        :class:`FailureRecord` on the result instead of aborting the
        suite; failures flagged transient are retried per
        ``retry_policy`` first.  ``fail_fast`` stops at the first failed
        game — the sweep uses it because a design point missing any game
        cannot produce an aggregate row, so its remaining replays are
        wasted work.
        """
        result = SuiteResult(design_point=design.name)
        for alias in self.games:
            if not isolate_faults:
                result.per_game[alias] = self.run(alias, design)
                continue
            run, failure = run_guarded(
                lambda: self.run(alias, design),
                design_point=design.name,
                game=alias,
                policy=retry_policy,
            )
            if failure is not None:
                result.failures.append(failure)
                if fail_fast:
                    break
            else:
                result.per_game[alias] = run
        return result

    def run_baseline(self) -> SuiteResult:
        """The paper's baseline: FG-xshift2, Z-order, coupled barriers."""
        return self.run_suite(BASELINE)
