"""Experiment orchestration: run design points over the benchmark suite.

The expensive functional render (pass 1) is cached per game, so sweeping
a dozen design points costs one render plus a dozen cheap replays per
game — the same economy the paper gets from trace-driven simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import geometric_mean
from repro.config import GPUConfig, TEST_CONFIG
from repro.core.dtexl import BASELINE, DTexLConfig
from repro.sim.driver import FrameRenderer, FrameTrace
from repro.sim.replay import RunResult, TraceReplayer
from repro.texture.sampler import Sampler
from repro.workloads.games import GAMES, build_game


@dataclass
class SuiteResult:
    """One design point's results over the whole suite."""

    design_point: str
    per_game: Dict[str, RunResult] = field(default_factory=dict)

    @property
    def total_l2_accesses(self) -> int:
        return sum(r.l2_accesses for r in self.per_game.values())

    def mean_speedup_vs(self, baseline: "SuiteResult") -> float:
        """Geometric-mean speedup over the suite against ``baseline``."""
        ratios = [
            baseline.per_game[g].frame_cycles / r.frame_cycles
            for g, r in self.per_game.items()
        ]
        return geometric_mean(ratios)

    def mean_l2_decrease_vs(self, baseline: "SuiteResult") -> float:
        """Average percent decrease in L2 accesses vs ``baseline``."""
        decreases = [
            (baseline.per_game[g].l2_accesses - r.l2_accesses)
            / baseline.per_game[g].l2_accesses * 100.0
            for g, r in self.per_game.items()
            if baseline.per_game[g].l2_accesses
        ]
        return sum(decreases) / len(decreases) if decreases else 0.0

    def mean_energy_decrease_vs(self, baseline: "SuiteResult") -> float:
        """Average percent decrease in total GPU energy vs ``baseline``."""
        decreases = [
            (baseline.per_game[g].energy.total_mj - r.energy.total_mj)
            / baseline.per_game[g].energy.total_mj * 100.0
            for g, r in self.per_game.items()
            if baseline.per_game[g].energy.total_mj
        ]
        return sum(decreases) / len(decreases) if decreases else 0.0


class ExperimentRunner:
    """Caches traces and replays design points over the suite."""

    def __init__(
        self,
        config: GPUConfig = TEST_CONFIG,
        sampler: Optional[Sampler] = None,
        games: Optional[Iterable[str]] = None,
    ):
        self.config = config
        self.renderer = FrameRenderer(config, sampler)
        self.replayer = TraceReplayer(config)
        self.games: List[str] = list(games) if games is not None else list(GAMES)
        self._traces: Dict[str, FrameTrace] = {}

    # -- pass 1 cache -----------------------------------------------------------

    def trace_for(self, alias: str) -> FrameTrace:
        """Render (once) and return the frame trace of one game."""
        if alias not in self._traces:
            workload = build_game(alias, self.config)
            trace, _ = self.renderer.render(workload)
            self._traces[alias] = trace
        return self._traces[alias]

    # -- pass 2 -----------------------------------------------------------------

    def run(self, alias: str, design: DTexLConfig) -> RunResult:
        """Replay one game under one design point."""
        return self.replayer.run(self.trace_for(alias), design)

    def run_suite(self, design: DTexLConfig) -> SuiteResult:
        """Replay every game of the suite under one design point."""
        result = SuiteResult(design_point=design.name)
        for alias in self.games:
            result.per_game[alias] = self.run(alias, design)
        return result

    def run_baseline(self) -> SuiteResult:
        """The paper's baseline: FG-xshift2, Z-order, coupled barriers."""
        return self.run_suite(BASELINE)
