"""Structured export of simulation results (dicts / JSON).

Turns :class:`~repro.sim.replay.RunResult` and
:class:`~repro.sim.experiment.SuiteResult` into plain dictionaries so
results can be archived, diffed between runs, or consumed by plotting
tools, without those classes having to know about serialization.

This lives in ``sim`` — not ``analysis`` — because the sweep writes
run manifests as part of campaign execution, and ``sim`` importing the
analysis layer is a forbidden edge under ``archcontract.toml``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from repro.sim.experiment import SuiteResult
from repro.sim.replay import RunResult
from repro.sim.resilience import RunManifest


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten one replay's results (omitting bulky per-tile arrays)."""
    return {
        "design_point": result.design_point,
        "l2_accesses": result.l2_accesses,
        "l2_misses": result.l2_misses,
        "dram_accesses": result.dram_accesses,
        "l1_accesses": result.l1_accesses,
        "l1_misses": result.l1_misses,
        "l1_miss_rate": result.l1_miss_rate,
        "l1_replication_factor": result.l1_replication_factor,
        "vertex_accesses": result.vertex_accesses,
        "tile_accesses": result.tile_accesses,
        "total_quads": result.total_quads,
        "framebuffer_write_lines": result.framebuffer_write_lines,
        "frame_cycles": result.frame_cycles,
        "sc_busy_cycles": list(result.timing.sc_busy_cycles),
        "sc_issue_cycles": list(result.timing.sc_issue_cycles),
        "fetch_cycles_total": result.timing.fetch_cycles_total,
        "energy_mj": {
            name: value
            for name, value in result.energy.components_mj.items()
        },
        "energy_total_mj": result.energy.total_mj,
    }


def suite_result_to_dict(suite: SuiteResult) -> Dict[str, Any]:
    """Flatten a whole suite run, keyed by game alias."""
    return {
        "design_point": suite.design_point,
        "total_l2_accesses": suite.total_l2_accesses,
        "games": {
            game: run_result_to_dict(result)
            for game, result in suite.per_game.items()
        },
    }


def manifest_to_dict(manifest: RunManifest) -> Dict[str, Any]:
    """Flatten a campaign manifest (config hash, outcomes, failures)."""
    return manifest.as_dict()


def write_run_manifest(path: os.PathLike, manifest: RunManifest) -> Path:
    """Archive a campaign manifest as JSON; returns the written path.

    The write is atomic (temp file + rename) so a crash while archiving
    never leaves a truncated manifest for the next resume to read.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(manifest_to_dict(manifest), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return path


def to_json(result, indent: int = 2) -> str:
    """JSON for either result type."""
    if isinstance(result, SuiteResult):
        payload = suite_result_to_dict(result)
    elif isinstance(result, RunResult):
        payload = run_result_to_dict(result)
    else:
        raise TypeError(f"cannot export {type(result).__name__}")
    return json.dumps(payload, indent=indent, sort_keys=True)
