"""Deterministic, declarative fault injection for the sweep stack.

Long campaigns claim to survive crashed workers, torn checkpoint
writes, corrupted traces and processes killed mid-journal — this module
makes every one of those failures *injectable on demand* so the claims
are tested instead of assumed.  A :class:`FaultPlan` is a seeded,
declarative list of :class:`FaultSpec` entries; arming it (via
:func:`arm` / :func:`armed`) activates named injection sites threaded
through the hot paths:

======================  ======================================================
site                    instrumented in
======================  ======================================================
``checkpoint.save``     :meth:`~repro.sim.checkpoint.TraceCheckpointStore.
                        save` — torn write (the file is truncated after the
                        atomic rename, as if the disk died mid-flush)
``checkpoint.load``     :meth:`~repro.sim.checkpoint.TraceCheckpointStore.
                        load` — the file is truncated or a payload byte is
                        flipped before reading (hash-mismatch corruption)
``journal.record``      :meth:`~repro.sim.checkpoint.SweepProgress.record`
                        — the process dies before the append (``kill``) or
                        mid-append, leaving a partial trailing line
``replay.run``          the (design point, game) replay boundary in
                        :class:`~repro.sim.experiment.ExperimentRunner` and
                        the sweep's worker task — a transient error or a
                        budget blowout
``sweep.worker``        the worker-process task entry in
                        :mod:`repro.sim.sweep` — sudden process death
                        (``os._exit``) or a hang past the task deadline
======================  ======================================================

Injection decisions are pure functions of ``(plan seed, site, kind,
key, attempt)`` via a SHA-256 draw — no global RNG, no ordering
sensitivity — so a chaos trial replays bit-identically from its seed,
across processes, whatever the worker interleaving.  Each spec fires
only inside its attempt window (``first_attempt`` .. ``first_attempt +
fire_attempts``), which is what makes every injected failure *healable*:
a retried task or a respawned worker re-runs with the next attempt
number and draws clean.

With no plan armed, :func:`fault_point` is a module-global ``None``
check — the sites are free in production runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import BudgetExceededError, ConfigError, InjectedFaultError

__all__ = [
    "FaultPlan", "FaultSpec", "FireEvent", "InjectedKill",
    "SITE_CHECKPOINT_LOAD", "SITE_CHECKPOINT_SAVE", "SITE_CHUNK_LOAD",
    "SITE_CHUNK_SAVE", "SITE_JOURNAL_RECORD",
    "SITE_REPLAY", "SITE_WORKER", "SITES",
    "KIND_BUDGET", "KIND_CORRUPT", "KIND_EXIT", "KIND_HANG", "KIND_KILL",
    "KIND_PARTIAL_LINE", "KIND_TORN_WRITE", "KIND_TRANSIENT",
    "KIND_TRUNCATE", "KINDS_BY_SITE",
    "active_plan", "arm", "armed", "deterministic_fraction", "disarm",
    "fault_point",
]

# -- injection sites ----------------------------------------------------------

SITE_CHECKPOINT_SAVE = "checkpoint.save"
SITE_CHECKPOINT_LOAD = "checkpoint.load"
SITE_CHUNK_SAVE = "chunk.save"
SITE_CHUNK_LOAD = "chunk.load"
SITE_JOURNAL_RECORD = "journal.record"
SITE_REPLAY = "replay.run"
SITE_WORKER = "sweep.worker"

# -- fault kinds --------------------------------------------------------------

#: Raise a retryable :class:`~repro.errors.InjectedFaultError`.
KIND_TRANSIENT = "transient-error"
#: Raise a (deterministic) :class:`~repro.errors.BudgetExceededError`.
KIND_BUDGET = "budget-blowout"
#: Truncate the just-written checkpoint file (crash mid-flush).
KIND_TORN_WRITE = "torn-write"
#: Truncate the checkpoint file before it is read.
KIND_TRUNCATE = "truncate"
#: Flip one payload byte before the file is read (hash mismatch).
KIND_CORRUPT = "corrupt-byte"
#: Append only a prefix of the journal line, then die (:class:`InjectedKill`).
KIND_PARTIAL_LINE = "partial-line"
#: Die (:class:`InjectedKill`) before the journal line is written.
KIND_KILL = "kill"
#: Kill the worker process outright via ``os._exit``.
KIND_EXIT = "process-exit"
#: Sleep past the sweep's per-task deadline.
KIND_HANG = "hang"

#: Which kinds are meaningful at which site.
KINDS_BY_SITE: Dict[str, Tuple[str, ...]] = {
    SITE_CHECKPOINT_SAVE: (KIND_TORN_WRITE,),
    SITE_CHECKPOINT_LOAD: (KIND_TRUNCATE, KIND_CORRUPT),
    SITE_CHUNK_SAVE: (KIND_TORN_WRITE,),
    SITE_CHUNK_LOAD: (KIND_TRUNCATE, KIND_CORRUPT),
    SITE_JOURNAL_RECORD: (KIND_PARTIAL_LINE, KIND_KILL),
    SITE_REPLAY: (KIND_TRANSIENT, KIND_BUDGET),
    SITE_WORKER: (KIND_EXIT, KIND_HANG),
}

SITES: Tuple[str, ...] = tuple(KINDS_BY_SITE)

#: Kinds whose effect the *call site* implements (the trigger returns
#: the kind instead of raising); everything else acts inside trigger().
_DATA_KINDS = frozenset({
    KIND_TORN_WRITE, KIND_TRUNCATE, KIND_CORRUPT, KIND_PARTIAL_LINE,
})


class InjectedKill(BaseException):
    """An injected process death (simulated SIGKILL).

    Deliberately *not* a :class:`~repro.errors.ReproError` — and not
    even an ``Exception`` — so no error boundary (``run_guarded``, the
    sweep's fault isolation, the CLI's friendly handler) can absorb it:
    a kill must end the campaign exactly as a real power cut would,
    leaving only what was durably journaled.  The chaos harness catches
    it, then proves the resumed campaign reproduces the reference.
    """


def deterministic_fraction(*parts: object) -> float:
    """A uniform [0, 1) draw that is a pure function of ``parts``.

    Used instead of ``random.Random`` so injection (and retry jitter)
    decisions are independent of call ordering and of the process they
    are made in — two workers evaluating the same (seed, site, key,
    attempt) agree without sharing state.
    """
    material = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative injection: where, what, how often, for how long.

    ``probability`` is evaluated per call of the site via a
    deterministic draw.  ``first_attempt``/``fire_attempts`` bound the
    attempt window the spec may fire in: the default (1, 1) fires only
    on a task's first attempt, so a retry or a respawned worker always
    heals.  ``fire_attempts=None`` removes the upper bound (a
    *deterministic* fault that survives every retry).  ``match``
    restricts the spec to site keys containing the substring (e.g. one
    design point's name); the empty default matches every key.
    """

    site: str
    kind: str
    probability: float = 1.0
    first_attempt: int = 1
    fire_attempts: Optional[int] = 1
    match: str = ""
    #: Sleep duration for ``hang`` faults.
    seconds: float = 0.25
    #: Process exit status for ``process-exit`` faults.
    exit_code: int = 13

    def __post_init__(self):
        if self.site not in KINDS_BY_SITE:
            raise ConfigError(
                f"unknown fault site {self.site!r}; "
                f"choose from {', '.join(SITES)}"
            )
        if self.kind not in KINDS_BY_SITE[self.site]:
            raise ConfigError(
                f"fault kind {self.kind!r} is not valid at site "
                f"{self.site!r}; choose from "
                f"{', '.join(KINDS_BY_SITE[self.site])}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.first_attempt < 1:
            raise ConfigError(
                f"first_attempt must be >= 1, got {self.first_attempt}"
            )
        if self.fire_attempts is not None and self.fire_attempts < 1:
            raise ConfigError(
                f"fire_attempts must be >= 1 or None, "
                f"got {self.fire_attempts}"
            )

    def window_contains(self, attempt: int) -> bool:
        """Whether ``attempt`` falls inside this spec's firing window."""
        if attempt < self.first_attempt:
            return False
        if self.fire_attempts is None:
            return True
        return attempt < self.first_attempt + self.fire_attempts

    def describe(self) -> str:
        text = f"{self.site}:{self.kind}"
        if self.probability < 1.0:
            text += f"@p={self.probability:g}"
        if self.match:
            text += f"~{self.match}"
        if self.first_attempt != 1 or self.fire_attempts != 1:
            upper = ("inf" if self.fire_attempts is None
                     else self.first_attempt + self.fire_attempts - 1)
            text += f"[{self.first_attempt}..{upper}]"
        return text


@dataclass(frozen=True)
class FireEvent:
    """One fault that actually fired (for reporting and tests)."""

    site: str
    kind: str
    key: str
    attempt: int


@dataclass
class FaultPlan:
    """A seeded set of fault specs, armable as one unit.

    The plan is picklable: the sweep ships it to worker processes,
    which arm their own copy per task.  ``fired`` and the per-key
    attempt counters are process-local observation state — the
    *decisions* never depend on them when an explicit ``attempt`` is
    supplied, and depend only on the per-(site, key) call count
    otherwise.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()
    fired: List[FireEvent] = field(default_factory=list)
    _counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self):
        self.specs = tuple(self.specs)

    def for_sites(self, sites: Set[str]) -> "FaultPlan":
        """A fresh plan holding only the specs at ``sites``."""
        kept = tuple(spec for spec in self.specs if spec.site in sites)
        return FaultPlan(seed=self.seed, specs=kept)

    def describe(self) -> str:
        if not self.specs:
            return "<empty plan>"
        return " + ".join(spec.describe() for spec in self.specs)

    def trigger(
        self, site: str, key: Optional[str] = None,
        attempt: Optional[int] = None,
    ) -> Optional[str]:
        """Evaluate every spec at ``site``; act on those that fire.

        Raising kinds raise from here; ``hang`` sleeps; ``process-exit``
        exits.  Data kinds (file corruption, partial line) are returned
        for the call site to implement — the first fired one wins.
        """
        key = key or ""
        if attempt is None:
            attempt = self._counts.get((site, key), 0) + 1
            self._counts[(site, key)] = attempt
        data_kind: Optional[str] = None
        record_fire = self.fired.append
        for spec in self.specs:
            if spec.site != site or not spec.window_contains(attempt):
                continue
            if spec.match and spec.match not in key:
                continue
            draw = deterministic_fraction(
                self.seed, site, spec.kind, key, attempt
            )
            if draw >= spec.probability:
                continue
            record_fire(FireEvent(site, spec.kind, key, attempt))
            self._execute(spec, site)
            if data_kind is None and spec.kind in _DATA_KINDS:
                data_kind = spec.kind
        return data_kind

    @staticmethod
    def _execute(spec: FaultSpec, site: str) -> None:
        if spec.kind == KIND_TRANSIENT:
            raise InjectedFaultError(
                f"injected transient fault at {site}", transient=True
            )
        if spec.kind == KIND_BUDGET:
            raise BudgetExceededError(
                f"injected budget blowout at {site}"
            )
        if spec.kind == KIND_KILL:
            raise InjectedKill(f"injected kill at {site}")
        if spec.kind == KIND_HANG:
            time.sleep(spec.seconds)
        elif spec.kind == KIND_EXIT:
            # A real crash: no atexit handlers, no finally blocks, no
            # exception the pool could catch — the parent sees only a
            # dead worker (BrokenProcessPool).
            os._exit(spec.exit_code)


# -- module-level arming ------------------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _ACTIVE_PLAN


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan``: every instrumented site starts consulting it."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    return plan


def disarm() -> None:
    """Disarm injection; all sites return to zero-cost no-ops."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = None


@contextmanager
def armed(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the duration of the block (``None`` = no-op)."""
    if plan is None:
        yield None
        return
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def fault_point(
    site: str, key: Optional[str] = None, attempt: Optional[int] = None,
) -> Optional[str]:
    """The hook the instrumented hot paths call.

    Disarmed (the production default) this is one global load and a
    ``None`` check.  Armed, it delegates to the plan and returns the
    fired *data* kind (file corruption the call site must apply) or
    ``None``; raising kinds raise from inside.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return None
    return plan.trigger(site, key=key, attempt=attempt)
