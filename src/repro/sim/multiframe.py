"""Multi-frame (animation) simulation with warm caches.

Renders each frame of an :class:`~repro.workloads.animation.Animation`
through pass 1 and replays them back to back against **one persistent
memory hierarchy**, so frame *k+1* starts with whatever texture lines
frame *k* left resident.  Per-frame results are counter deltas, so the
sequence exposes the cold-start penalty of frame 0 and the steady-state
behaviour afterwards.

The simulator speaks every tile-stream dataflow: ``stream="batch"``
(default) materializes each frame's trace, ``"streaming"`` renders and
replays one tile group at a time so a long animation never holds a
whole frame, and ``"overlap"`` renders frame *k*'s later tiles in a
worker while this process replays its earlier ones.  Warm-cache frame
deltas are unaffected — the drivers deliver identical tile sequences,
so the hierarchy sees identical accesses in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import GPUConfig
from repro.core.dtexl import DTexLConfig
from repro.errors import TraceIntegrityError
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.checkpoint import TraceCheckpointStore, trace_key
from repro.sim.driver import FrameRenderer, FrameTrace
from repro.sim.replay import RunResult, TraceReplayer
from repro.sim.stream import (
    FrameSource,
    OverlappedTileStream,
    StreamingTileStream,
    check_driver,
)
from repro.texture.sampler import Sampler
from repro.workloads.animation import Animation


@dataclass
class AnimationResult:
    """Per-frame results of one animated run."""

    design_point: str
    frames: List[RunResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(f.frame_cycles for f in self.frames)

    @property
    def total_l2_accesses(self) -> int:
        return sum(f.l2_accesses for f in self.frames)

    def fps(self, frequency_mhz: int) -> float:
        """Average frames per second over the sequence."""
        if not self.frames or self.total_cycles == 0:
            return float("inf")
        return len(self.frames) * frequency_mhz * 1e6 / self.total_cycles

    def warmup_ratio(self) -> float:
        """First frame's L2 accesses over the mean of the later frames.

        > 1 means warm caches across frames are paying off.
        """
        if len(self.frames) < 2:
            return 1.0
        later = self.frames[1:]
        steady = sum(f.l2_accesses for f in later) / len(later)
        if steady == 0:
            return 1.0
        return self.frames[0].l2_accesses / steady


class AnimationSimulator:
    """Runs an animation under one design point with persistent caches."""

    def __init__(
        self,
        config: GPUConfig,
        sampler: Optional[Sampler] = None,
        checkpoint_store: Optional[TraceCheckpointStore] = None,
        stream: str = "batch",
    ):
        self.config = config
        self.renderer = FrameRenderer(config, sampler)
        self.replayer = TraceReplayer(config)
        self.checkpoint_store = checkpoint_store
        self.stream = check_driver(stream)
        #: Functional renders actually performed (checkpoint hits skip it).
        self.renders_performed = 0

    def _frame_trace(self, animation: Animation, frame: int) -> FrameTrace:
        """One frame's trace, via the checkpoint store when attached.

        A corrupted checkpoint is discarded and the frame re-rendered;
        resuming a killed multi-frame campaign therefore re-renders only
        frames that never finished pass 1.
        """
        key = None
        if self.checkpoint_store is not None:
            key = trace_key(self.config, animation.recipe, frame=frame)
            if self.checkpoint_store.contains(key):
                try:
                    return self.checkpoint_store.load(key)
                except TraceIntegrityError:
                    pass
        workload = animation.recipe.build(self.config, frame=frame)
        trace, _ = self.renderer.render(workload)
        self.renders_performed += 1
        if key is not None:
            self.checkpoint_store.save(key, trace)
        return trace

    def _frame_stream(self, animation: Animation, frame: int):
        """One frame's streamed dataflow (never materializes the trace)."""
        if self.stream == "overlap":
            return OverlappedTileStream(FrameSource(
                config=self.config, recipe=animation.recipe, frame=frame,
            ))
        workload = animation.recipe.build(self.config, frame=frame)
        return StreamingTileStream(self.renderer, workload)

    def run(
        self,
        animation: Animation,
        design: DTexLConfig,
        cold_caches_each_frame: bool = False,
    ) -> AnimationResult:
        """Simulate every frame; caches persist unless asked otherwise."""
        gpu = design.effective_gpu_config(self.config)
        hierarchy = MemoryHierarchy(gpu)
        result = AnimationResult(design_point=design.name)
        for frame in range(animation.num_frames):
            if cold_caches_each_frame:
                hierarchy.reset()
            if self.stream == "batch":
                trace = self._frame_trace(animation, frame)
                run = self.replayer.run(trace, design, hierarchy=hierarchy)
            else:
                stream = self._frame_stream(animation, frame)
                run = self.replayer.run_stream(
                    stream, design, hierarchy=hierarchy
                )
                self.renders_performed += 1
            result.frames.append(run)
        return result
