"""Pass 2: replay a frame trace under one DTexL design point.

The replay walks the tiles in the design point's tile order, maps every
quad to a shader core through the quad scheduler, drives the texture
accesses through the private-L1/shared-L2 hierarchy, and feeds the
resulting per-subtile costs to the coupled or decoupled pipeline timing
model and the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import GPUConfig
from repro.core.dtexl import DTexLConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.power.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.raster.pipeline import (
    FrameTiming,
    RasterPipelineModel,
    SubtileWork,
    TileWork,
)
from repro.sim.driver import FrameTrace, TileTraceEntry
from repro.sim.resilience import ReplayBudget


@dataclass
class RunResult:
    """Everything the experiments read out of one replay."""

    design_point: str
    l2_accesses: int
    l2_misses: int
    dram_accesses: int
    l1_accesses: int
    l1_misses: int
    vertex_accesses: int
    tile_accesses: int
    total_quads: int
    timing: FrameTiming
    energy: EnergyBreakdown
    #: Per traversal step, quads executed per SC (Figs 1, 12, 15).
    per_tile_quad_counts: List[List[int]]
    l1_replication_factor: float = 1.0
    #: 64-byte lines streamed to the Frame Buffer by Color-Buffer flushes.
    framebuffer_write_lines: int = 0

    @property
    def frame_cycles(self) -> int:
        return self.timing.total_cycles

    def fps(self, frequency_mhz: int) -> float:
        return self.timing.fps(frequency_mhz)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0


@dataclass(frozen=True)
class _CounterSnapshot:
    """Hierarchy counters at one instant, for per-frame deltas."""

    l2_accesses: int
    l2_misses: int
    dram_accesses: int
    l1_accesses: int
    l1_misses: int
    vertex_accesses: int
    tile_accesses: int

    @staticmethod
    def of(hierarchy: MemoryHierarchy) -> "_CounterSnapshot":
        l1 = hierarchy.texture_l1_stats()
        return _CounterSnapshot(
            l2_accesses=hierarchy.l2_accesses,
            l2_misses=hierarchy.l2_misses,
            dram_accesses=hierarchy.dram_accesses,
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            vertex_accesses=hierarchy.vertex_cache.stats.accesses,
            tile_accesses=hierarchy.tile_cache.stats.accesses,
        )


class TraceReplayer:
    """Replays traces under arbitrary design points."""

    def __init__(
        self,
        config: GPUConfig,
        energy_params: Optional[EnergyParams] = None,
        budget: Optional[ReplayBudget] = None,
    ):
        self.config = config
        self.energy_model = EnergyModel(energy_params or EnergyParams())
        #: Optional work ceiling; a replay that exceeds it raises
        #: :class:`~repro.errors.BudgetExceededError` instead of running on.
        self.budget = budget or ReplayBudget()

    def run(
        self,
        trace: FrameTrace,
        design: DTexLConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> RunResult:
        """Replay ``trace`` under ``design``; returns the full result.

        Passing an existing ``hierarchy`` replays the frame against warm
        caches (multi-frame animation); all reported counters are deltas
        for this frame only.
        """
        gpu = design.effective_gpu_config(self.config)
        if hierarchy is None:
            hierarchy = MemoryHierarchy(gpu)
        before = _CounterSnapshot.of(hierarchy)
        # The scheduler always reasons over 4 subtile slots; the
        # upper-bound run folds them onto its single SC below.
        scheduler = design.build_scheduler(self.config)
        n_cores = gpu.num_shader_cores
        l1_hit_latency = gpu.texture_cache.hit_latency
        miss_overhead = gpu.shader.miss_overhead_cycles

        for line in trace.vertex_lines:
            hierarchy.vertex_access(line)

        tile_works: List[TileWork] = []
        per_tile_counts: List[List[int]] = []
        total_quads = 0
        for step, tile in enumerate(scheduler.tiles):
            entry = trace.tiles.get(tile) or TileTraceEntry()
            for line in entry.fetch_lines:
                hierarchy.tile_access(line)
            subtiles = [SubtileWork() for _ in range(n_cores)]
            perm = scheduler.permutation_at(step)
            slot_of = scheduler.slot_of
            for quad in entry.quads:
                core = perm[slot_of(quad.qx, quad.qy)] % n_cores
                stall = 0
                for line in quad.texture_lines:
                    result = hierarchy.texture_access(core, line)
                    if not result.l1_hit:
                        stall += (
                            result.latency - l1_hit_latency + miss_overhead
                        )
                subtiles[core].add_quad(quad.compute_cycles, stall)
                total_quads += 1
            tile_works.append(
                TileWork(
                    tile=tile,
                    step=step,
                    fetch_cycles=entry.fetch_cycles,
                    subtiles=subtiles,
                )
            )
            per_tile_counts.append([s.num_quads for s in subtiles])
            self.budget.check_quads(total_quads, design.name)

        replication = hierarchy.replication_factor()
        pipeline = RasterPipelineModel(gpu, design.decoupled)
        timing = pipeline.simulate(tile_works)
        self.budget.check_cycles(timing.total_cycles, design.name)

        # Every tile's Color Buffer streams to the Frame Buffer once per
        # frame (64 B lines, schedule-independent write traffic).
        tile_bytes = (
            self.config.tile_size ** 2 * self.config.color_bytes_per_pixel
        )
        fb_lines = len(tile_works) * -(-tile_bytes // 64)

        after = _CounterSnapshot.of(hierarchy)
        energy = self.energy_model.frame_energy(
            l1_accesses=after.l1_accesses - before.l1_accesses,
            l2_accesses=after.l2_accesses - before.l2_accesses,
            dram_accesses=after.dram_accesses - before.dram_accesses,
            vertex_accesses=after.vertex_accesses - before.vertex_accesses,
            tile_accesses=after.tile_accesses - before.tile_accesses,
            sc_issue_cycles=sum(timing.sc_issue_cycles),
            quads_processed=total_quads,
            frame_cycles=timing.total_cycles,
            frequency_mhz=gpu.frequency_mhz,
            framebuffer_write_lines=fb_lines,
        )
        return RunResult(
            design_point=design.name,
            l2_accesses=after.l2_accesses - before.l2_accesses,
            l2_misses=after.l2_misses - before.l2_misses,
            dram_accesses=after.dram_accesses - before.dram_accesses,
            l1_accesses=after.l1_accesses - before.l1_accesses,
            l1_misses=after.l1_misses - before.l1_misses,
            vertex_accesses=after.vertex_accesses - before.vertex_accesses,
            tile_accesses=after.tile_accesses - before.tile_accesses,
            total_quads=total_quads,
            timing=timing,
            energy=energy,
            per_tile_quad_counts=per_tile_counts,
            l1_replication_factor=replication,
            framebuffer_write_lines=fb_lines,
        )
