"""Pass 2: replay a frame trace under one DTexL design point.

The replay walks the tiles in the design point's tile order, maps every
quad to a shader core through the quad scheduler, drives the texture
accesses through the private-L1/shared-L2 hierarchy, and feeds the
resulting per-subtile costs to the coupled or decoupled pipeline timing
model and the energy model.

Two engines produce bit-identical :class:`RunResult` records:

* ``"fast"`` (default) — batched: each quad's whole texture footprint
  goes through :meth:`~repro.memory.hierarchy.MemoryHierarchy.
  texture_access_lines` in one call, the per-tile quad -> core schedule
  is a precomputed :meth:`~repro.core.scheduler.QuadScheduler.core_lut`
  table, and per-subtile cycles accumulate in flat per-core arrays.
* ``"reference"`` — the original per-line loop over scalar
  ``texture_access`` calls on the ``OrderedDict`` cache backend, kept
  as the executable specification for differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import GPUConfig
from repro.core.dtexl import DTexLConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryHierarchy

#: Replay engine names accepted by :class:`TraceReplayer`.
ENGINES = ("fast", "reference")
from repro.power.energy_model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.raster.pipeline import (
    FrameTiming,
    RasterPipelineModel,
    SubtileWork,
    TileWork,
)
from repro.sim.driver import FrameTrace
from repro.sim.resilience import ReplayBudget
from repro.sim.stream import BatchTileStream, TileWorkUnit  # noqa: F401 — re-exported for replay callers


@dataclass
class RunResult:
    """Everything the experiments read out of one replay."""

    design_point: str
    l2_accesses: int
    l2_misses: int
    dram_accesses: int
    l1_accesses: int
    l1_misses: int
    vertex_accesses: int
    tile_accesses: int
    total_quads: int
    timing: FrameTiming
    energy: EnergyBreakdown
    #: Per traversal step, quads executed per SC (Figs 1, 12, 15).
    per_tile_quad_counts: List[List[int]]
    l1_replication_factor: float = 1.0
    #: 64-byte lines streamed to the Frame Buffer by Color-Buffer flushes.
    framebuffer_write_lines: int = 0

    @property
    def frame_cycles(self) -> int:
        return self.timing.total_cycles

    def fps(self, frequency_mhz: int) -> float:
        return self.timing.fps(frequency_mhz)

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.l1_accesses if self.l1_accesses else 0.0


@dataclass(frozen=True)
class _CounterSnapshot:
    """Hierarchy counters at one instant, for per-frame deltas."""

    l2_accesses: int
    l2_misses: int
    dram_accesses: int
    l1_accesses: int
    l1_misses: int
    vertex_accesses: int
    tile_accesses: int

    @staticmethod
    def of(hierarchy: MemoryHierarchy) -> "_CounterSnapshot":
        l1 = hierarchy.texture_l1_stats()
        return _CounterSnapshot(
            l2_accesses=hierarchy.l2_accesses,
            l2_misses=hierarchy.l2_misses,
            dram_accesses=hierarchy.dram_accesses,
            l1_accesses=l1.accesses,
            l1_misses=l1.misses,
            vertex_accesses=hierarchy.vertex_cache.stats.accesses,
            tile_accesses=hierarchy.tile_cache.stats.accesses,
        )


class TraceReplayer:
    """Replays traces under arbitrary design points."""

    def __init__(
        self,
        config: GPUConfig,
        energy_params: Optional[EnergyParams] = None,
        budget: Optional[ReplayBudget] = None,
        engine: str = "fast",
    ):
        if engine not in ENGINES:
            raise ConfigError(
                f"unknown replay engine {engine!r}; "
                f"choose from {', '.join(ENGINES)}"
            )
        self.config = config
        self.energy_model = EnergyModel(energy_params or EnergyParams())
        #: Optional work ceiling; a replay that exceeds it raises
        #: :class:`~repro.errors.BudgetExceededError` instead of running on.
        self.budget = budget or ReplayBudget()
        self.engine = engine

    def run(
        self,
        trace: FrameTrace,
        design: DTexLConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> RunResult:
        """Replay ``trace`` under ``design``; returns the full result.

        Passing an existing ``hierarchy`` replays the frame against warm
        caches (multi-frame animation); all reported counters are deltas
        for this frame only.

        A thin wrapper over :meth:`run_stream` with the batch driver —
        the materialized trace is just one way of feeding the tile
        stream, kept as the executable specification the streaming
        drivers are differential-tested against.
        """
        return self.run_stream(
            BatchTileStream(trace), design, hierarchy=hierarchy
        )

    def run_stream(
        self,
        stream,
        design: DTexLConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> RunResult:
        """Replay a tile stream under ``design``; returns the full result.

        ``stream`` is any :mod:`repro.sim.stream` driver; it is opened
        with the design point's tile traversal, so producer and consumer
        walk the same order and the frame counters accumulate per tile
        exactly as the batch walk accumulated them.  The vertex/PB
        prologue rides the first unit, preserving the batch replayer's
        access order bit for bit.
        """
        gpu = design.effective_gpu_config(self.config)
        fast = self.engine == "fast"
        if hierarchy is None:
            hierarchy = MemoryHierarchy(
                gpu, backend="fast" if fast else "reference"
            )
        before = _CounterSnapshot.of(hierarchy)
        # The scheduler always reasons over 4 subtile slots; the
        # upper-bound run folds them onto its single SC below.
        scheduler = design.build_scheduler(self.config)
        n_cores = gpu.num_shader_cores

        tile_works: List[TileWork] = []
        per_tile_counts: List[List[int]] = []
        total_quads = 0
        process = self._tile_quads_fast if fast else self._tile_quads_reference
        # Hot loop: resolve attribute chains once, not per tile.
        check_quads = self.budget.check_quads
        with stream.open(scheduler.tiles) as units:
            for unit in units:
                entry = unit.entry
                vertex_lines = unit.vertex_lines
                if fast:
                    if vertex_lines:
                        hierarchy.vertex_access_lines(vertex_lines)
                    hierarchy.tile_access_lines(entry.fetch_lines)
                else:
                    for line in vertex_lines:
                        hierarchy.vertex_access(line)
                    for line in entry.fetch_lines:
                        hierarchy.tile_access(line)
                step = unit.step
                subtiles, counts = process(
                    entry, scheduler, step, hierarchy, gpu, n_cores
                )
                total_quads += len(entry.quads)
                tile_works.append(
                    TileWork(
                        tile=unit.tile,
                        step=step,
                        fetch_cycles=entry.fetch_cycles,
                        subtiles=subtiles,
                    )
                )
                per_tile_counts.append(counts)
                check_quads(total_quads, design.name)

        replication = hierarchy.replication_factor()
        pipeline = RasterPipelineModel(gpu, design.decoupled)
        timing = pipeline.simulate(tile_works)
        self.budget.check_cycles(timing.total_cycles, design.name)

        # Every tile's Color Buffer streams to the Frame Buffer once per
        # frame (64 B lines, schedule-independent write traffic).
        tile_bytes = (
            self.config.tile_size ** 2 * self.config.color_bytes_per_pixel
        )
        fb_lines = len(tile_works) * -(-tile_bytes // 64)

        after = _CounterSnapshot.of(hierarchy)
        energy = self.energy_model.frame_energy(
            l1_accesses=after.l1_accesses - before.l1_accesses,
            l2_accesses=after.l2_accesses - before.l2_accesses,
            dram_accesses=after.dram_accesses - before.dram_accesses,
            vertex_accesses=after.vertex_accesses - before.vertex_accesses,
            tile_accesses=after.tile_accesses - before.tile_accesses,
            sc_issue_cycles=sum(timing.sc_issue_cycles),
            quads_processed=total_quads,
            frame_cycles=timing.total_cycles,
            frequency_mhz=gpu.frequency_mhz,
            framebuffer_write_lines=fb_lines,
        )
        return RunResult(
            design_point=design.name,
            l2_accesses=after.l2_accesses - before.l2_accesses,
            l2_misses=after.l2_misses - before.l2_misses,
            dram_accesses=after.dram_accesses - before.dram_accesses,
            l1_accesses=after.l1_accesses - before.l1_accesses,
            l1_misses=after.l1_misses - before.l1_misses,
            vertex_accesses=after.vertex_accesses - before.vertex_accesses,
            tile_accesses=after.tile_accesses - before.tile_accesses,
            total_quads=total_quads,
            timing=timing,
            energy=energy,
            per_tile_quad_counts=per_tile_counts,
            l1_replication_factor=replication,
            framebuffer_write_lines=fb_lines,
        )

    # -- per-tile quad processing ---------------------------------------------

    @staticmethod
    def _tile_quads_fast(entry, scheduler, step, hierarchy, gpu, n_cores):
        """Batched quad stream of one tile: returns (subtiles, counts).

        One ``texture_access_lines`` call per quad, a precomputed
        quad -> core table, and flat per-core accumulators instead of
        per-quad ``SubtileWork`` attribute updates.  Arithmetic is
        line-for-line the reference path's.
        """
        lut = scheduler.core_lut(step, n_cores)
        side = scheduler.config.quads_per_tile_side
        # Every L1 miss costs the L2 hit latency plus the NoC/replay
        # overhead; an L2 miss adds the DRAM fill on top.
        miss_cost = gpu.l2_cache.hit_latency + gpu.shader.miss_overhead_cycles

        # Inlined Cache.access_lines over exported per-L1 (and shared
        # L2) state: one Python call per quad is too expensive at trace
        # scale, so the LRU body is replicated here (pinned bit-for-bit
        # by the differential tests) and the statistics flush once per
        # tile.
        l1s = hierarchy.texture_l1s
        state = [l1.acquire_state() for l1 in l1s]
        l1_index = [s[0] for s in state]
        l1_ages = [s[1] for s in state]
        l1_tags = [s[2] for s in state]
        num_sets = state[0][3]
        ways = state[0][4]
        l1_tick = [s[5] for s in state]
        l1_hits = [0] * n_cores
        l1_misses = [0] * n_cores
        l1_evictions = [0] * n_cores

        l2 = hierarchy.l2
        l2_index, l2_ages, l2_tags, l2_sets, l2_ways, l2_tick = (
            l2.acquire_state()
        )
        l2_hits = l2_miss = l2_evictions = 0
        dram = hierarchy.dram
        dram_min = dram.config.min_latency
        dram_band = dram.config.max_latency - dram_min + 1
        dram_n = dram_latency = 0

        num_quads = [0] * n_cores
        compute = [0] * n_cores
        stalls = [0] * n_cores
        for slot, lines, n_lines, issue in entry.quad_stream(side):
            core = lut[slot]
            num_quads[core] += 1
            compute[core] += issue
            if not lines:
                continue
            index = l1_index[core]
            ages = l1_ages[core]
            tick = l1_tick[core]
            n_miss = 0
            stall = 0
            for line in lines:
                tick += 1
                slot = index.get(line)
                if slot is not None:
                    ages[slot] = tick
                    continue
                n_miss += 1
                tags = l1_tags[core]
                base = (line % num_sets) * ways
                victim = base
                victim_age = None
                for i in range(base, base + ways):
                    tag = tags[i]
                    if tag == -1:
                        victim = i
                        victim_age = None
                        break
                    age = ages[i]
                    if victim_age is None or age < victim_age:
                        victim_age = age
                        victim = i
                if victim_age is not None:
                    l1_evictions[core] += 1
                    del index[tags[victim]]
                tags[victim] = line
                ages[victim] = tick
                index[line] = victim
                # Below the L1: the shared L2 (same inlined LRU body),
                # then DRAM's deterministic banded latency — the Knuth
                # multiplicative hash from DRAM.latency_for_line, same
                # arithmetic as texture_access_lines.
                l2_tick += 1
                slot2 = l2_index.get(line)
                if slot2 is not None:
                    l2_ages[slot2] = l2_tick
                    l2_hits += 1
                    stall += miss_cost
                    continue
                l2_miss += 1
                base = (line % l2_sets) * l2_ways
                victim = base
                victim_age = None
                for i in range(base, base + l2_ways):
                    tag = l2_tags[i]
                    if tag == -1:
                        victim = i
                        victim_age = None
                        break
                    age = l2_ages[i]
                    if victim_age is None or age < victim_age:
                        victim_age = age
                        victim = i
                if victim_age is not None:
                    l2_evictions += 1
                    del l2_index[l2_tags[victim]]
                l2_tags[victim] = line
                l2_ages[victim] = l2_tick
                l2_index[line] = victim
                dram_n += 1
                fill = dram_min + ((line * 2654435761) >> 7) % dram_band
                dram_latency += fill
                stall += miss_cost + fill
            l1_tick[core] = tick
            if n_miss:
                l1_hits[core] += n_lines - n_miss
                l1_misses[core] += n_miss
                stalls[core] += stall
            else:
                l1_hits[core] += n_lines

        for b in range(n_cores):
            l1s[b].release_state(
                l1_tick[b], l1_hits[b], l1_misses[b], l1_evictions[b]
            )
        l2.release_state(l2_tick, l2_hits, l2_miss, l2_evictions)
        dram.stats.accesses += dram_n
        dram.stats.total_latency += dram_latency
        subtiles = [
            SubtileWork(num_quads[b], compute[b], stalls[b])
            for b in range(n_cores)
        ]
        return subtiles, num_quads

    @staticmethod
    def _tile_quads_reference(entry, scheduler, step, hierarchy, gpu, n_cores):
        """The original scalar per-line loop (executable specification)."""
        l1_hit_latency = gpu.texture_cache.hit_latency
        miss_overhead = gpu.shader.miss_overhead_cycles
        subtiles = [SubtileWork() for _ in range(n_cores)]
        perm = scheduler.permutation_at(step)
        slot_of = scheduler.slot_of
        for quad in entry.quads:
            core = perm[slot_of(quad.qx, quad.qy)] % n_cores
            stall = 0
            for line in quad.texture_lines:
                result = hierarchy.texture_access(core, line)
                if not result.l1_hit:
                    stall += result.latency - l1_hit_latency + miss_overhead
            subtiles[core].add_quad(quad.compute_cycles, stall)
        return subtiles, [s.num_quads for s in subtiles]
