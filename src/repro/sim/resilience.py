"""Fault isolation for long sweep campaigns.

A design-space campaign over ten games and dozens of design points runs
unattended for a long time; one bad design point (or one flaky layer
underneath it) must cost exactly that point, not the whole run.  This
module provides the pieces the sweep and suite runners share:

* :class:`FailureRecord` — the structured row a caught failure turns
  into (design point, game, exception type, message, attempts).
* :class:`RetryPolicy` — bounded retry of failures whose error is
  flagged ``transient`` (see :mod:`repro.errors`); deterministic
  failures are never retried.
* :class:`ReplayBudget` — a quad/cycle ceiling that converts a runaway
  replay into a :class:`~repro.errors.BudgetExceededError` instead of an
  unbounded hang.
* :class:`RunManifest` — the per-campaign summary (config hash, points
  attempted/succeeded/failed, wall time, outcome) archived as JSON next
  to the checkpoints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.errors import BudgetExceededError, is_transient
from repro.sim.faults import deterministic_fraction

T = TypeVar("T")

#: Campaign outcomes recorded in the manifest / mapped to exit codes.
OUTCOME_SUCCESS = "success"
OUTCOME_PARTIAL = "partial"
OUTCOME_FATAL = "fatal"


@dataclass
class FailureRecord:
    """One isolated failure, as recorded in sweep reports and manifests."""

    design_point: str
    game: str  # "" when the failure is not attributable to one game
    error_type: str
    message: str
    attempts: int = 1

    @staticmethod
    def of(
        error: BaseException,
        design_point: str,
        game: str = "",
        attempts: int = 1,
    ) -> "FailureRecord":
        return FailureRecord(
            design_point=design_point,
            game=game,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "design_point": self.design_point,
            "game": self.game,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry of transient failures, with deterministic backoff.

    ``max_retries`` is the number of *re*-attempts after the first try;
    the default of 0 means fail on first error.  Only errors flagged
    transient (``error.transient``) are retried — retrying a
    deterministic crash wastes a campaign's wall time.

    Between attempts the policy sleeps an exponential backoff
    (``backoff_base_s * backoff_factor**(attempt-1)``, capped at
    ``backoff_max_s``) shortened by *seeded* jitter: the jitter draw is
    a pure function of ``(seed, key, attempt)``, so two runs of the
    same campaign wait the exact same schedule — a chaos trial replays
    bit-identically — while two design points retrying concurrently
    still de-synchronize.  The default ``backoff_base_s`` of 0 keeps
    retries immediate, exactly the pre-backoff behavior.
    """

    max_retries: int = 0
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    #: Fraction of each delay subject to jitter (0 = fixed schedule).
    jitter: float = 0.5
    seed: int = 0

    def attempts_for(self, error: BaseException) -> int:
        """Total attempts allowed once ``error`` has been observed."""
        return 1 + (self.max_retries if is_transient(error) else 0)

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt number ``attempt``.

        Deterministic: the same ``(policy, attempt, key)`` always
        produces the same delay, in [delay*(1-jitter), delay].
        """
        if self.backoff_base_s <= 0.0:
            return 0.0
        delay = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        delay = min(delay, self.backoff_max_s)
        if self.jitter <= 0.0:
            return delay
        draw = deterministic_fraction(
            self.seed, "retry-backoff", key, attempt
        )
        return delay * (1.0 - self.jitter * draw)


def run_guarded(
    fn: Callable[[], T],
    *,
    design_point: str,
    game: str = "",
    policy: Optional[RetryPolicy] = None,
) -> Tuple[Optional[T], Optional[FailureRecord]]:
    """Run ``fn`` inside an error boundary.

    Returns ``(result, None)`` on success or ``(None, failure)`` once
    the retry budget is exhausted.  Retries wait the policy's
    deterministic backoff (keyed by design point and game, so the
    schedule is reproducible).  ``KeyboardInterrupt``/``SystemExit``
    propagate — a campaign must still be killable.
    """
    policy = policy or RetryPolicy()
    backoff_key = f"{design_point}/{game}"
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(), None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            if attempt < policy.attempts_for(error):
                delay = policy.delay_for(attempt, key=backoff_key)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            return None, FailureRecord.of(
                error, design_point, game, attempts=attempt
            )


@dataclass(frozen=True)
class ReplayBudget:
    """Hard ceiling on one replay's work.

    ``None`` disables a dimension.  The quad ceiling is checked while
    the replay walks the trace (so a pathological trace dies early);
    the cycle ceiling is checked against the timing model's result.
    """

    max_quads: Optional[int] = None
    max_cycles: Optional[int] = None

    def check_quads(self, quads: int, design_point: str) -> None:
        if self.max_quads is not None and quads > self.max_quads:
            raise BudgetExceededError(
                f"replay of {design_point!r} exceeded the quad budget: "
                f"{quads} > {self.max_quads}"
            )

    def check_cycles(self, cycles: int, design_point: str) -> None:
        if self.max_cycles is not None and cycles > self.max_cycles:
            raise BudgetExceededError(
                f"replay of {design_point!r} exceeded the cycle budget: "
                f"{cycles} > {self.max_cycles}"
            )


@dataclass
class RunManifest:
    """Per-campaign summary, archived as JSON by the sweep driver."""

    config_hash: str
    games: List[str] = field(default_factory=list)
    design_points_attempted: List[str] = field(default_factory=list)
    design_points_succeeded: List[str] = field(default_factory=list)
    design_points_failed: List[str] = field(default_factory=list)
    design_points_resumed: List[str] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: Wall seconds per campaign phase (parallel runs stamp ``render``,
    #: ``pool_startup`` and ``replay``), so a slow campaign can be
    #: attributed to pass-1 rendering, executor spin-up or the replays
    #: themselves straight from the archived manifest.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def outcome(self) -> str:
        if not self.design_points_failed:
            return OUTCOME_SUCCESS
        if self.design_points_succeeded or self.design_points_resumed:
            return OUTCOME_PARTIAL
        return OUTCOME_FATAL

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config_hash": self.config_hash,
            "games": list(self.games),
            "design_points_attempted": list(self.design_points_attempted),
            "design_points_succeeded": list(self.design_points_succeeded),
            "design_points_failed": list(self.design_points_failed),
            "design_points_resumed": list(self.design_points_resumed),
            "failures": [f.as_dict() for f in self.failures],
            "wall_time_s": self.wall_time_s,
            "phase_seconds": dict(self.phase_seconds),
            "outcome": self.outcome,
        }
