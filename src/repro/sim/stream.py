"""The streaming tile dataflow: per-tile producer/consumer protocol.

The two-pass harness used to be coupled at frame granularity: pass 2
(:class:`~repro.sim.replay.TraceReplayer`) could not start until pass 1
(:class:`~repro.sim.driver.FrameRenderer`) had materialized the entire
:class:`~repro.sim.driver.FrameTrace`, so peak memory scaled with the
whole frame and render/replay never overlapped.  Because tiles are
disjoint and the trace is schedule-independent (see ``driver``'s module
docstring), a tile-granular split is *exact*: this module defines the
seam.

A **tile stream** delivers :class:`TileWorkUnit` records — one per tile,
in the replay's traversal order, the frame's vertex/Parameter-Buffer
prologue riding the first unit — through three interchangeable drivers:

* :class:`BatchTileStream` — walks a fully materialized trace.  Current
  behaviour, kept as the executable specification; ``TraceReplayer.run``
  is a thin wrapper over it.
* :class:`StreamingTileStream` — a generator: each tile is rendered,
  handed to the consumer, and dropped, bounding peak memory to
  O(tiles-in-flight) (one footprint-batching group).  With a
  :class:`~repro.sim.checkpoint.TileChunkStore` attached, rendered tiles
  are persisted (and reloaded) one chunk at a time, restoring the
  render-once economy of the batch path without ever holding the frame.
* :class:`OverlappedTileStream` — pass 1 runs in a worker process
  feeding a bounded queue while the consumer replays earlier tiles,
  hiding render latency behind replay.  It reuses the sweep pool's
  process-safety plumbing: a dead worker raises the same
  transient-flagged :class:`~repro.errors.WorkerCrashError`, a stalled
  one the same :class:`~repro.errors.TaskTimeoutError`, and teardown
  uses the same bounded join-then-terminate.

All three drivers yield bit-identical unit sequences for the same frame
and order, which is what makes ``RunResult`` equality across
``--stream batch|streaming|overlap`` a testable invariant rather than an
aspiration.

Usage::

    stream = StreamingTileStream(renderer, workload)
    with stream.open(scheduler.tiles) as units:
        for unit in units:
            ...  # replay unit.entry, then drop it
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.errors import ConfigError, ReplayError, TaskTimeoutError, WorkerCrashError
from repro.sim.driver import (
    DEFAULT_GROUP_TILES,
    FrameRenderer,
    FrameTrace,
    RenderStats,
    TileTraceEntry,
)
from repro.workloads.recipe import BuiltWorkload, SceneRecipe

#: Stream driver names accepted by ``--stream`` and the orchestration
#: layers.  Order matters only for help text.
STREAM_DRIVERS = ("batch", "streaming", "overlap")

#: Shared empty prologue for every unit after the first (module-level so
#: the hot generators never allocate a tuple per tile).
_NO_LINES: Tuple[int, ...] = ()

#: Bounded depth of the overlap driver's tile queue: the producer blocks
#: once this many finished tiles are waiting, so peak memory stays
#: O(queue depth + one footprint group) no matter how far render runs
#: ahead of replay.
DEFAULT_QUEUE_DEPTH = 32

#: Seconds the overlap consumer waits between liveness checks on the
#: render worker while the queue is empty.
_POLL_INTERVAL_S = 0.2


class TileWorkUnit(NamedTuple):
    """One tile's worth of replayable work, as the stream delivers it.

    ``vertex_lines`` is non-empty only on the first unit of a frame:
    the Geometry Pipeline's cache-line prologue precedes all tile work
    in the replay, exactly as the batch replayer always ordered it, so
    it rides the first unit rather than a separate message type.
    """

    tile: TileCoord
    step: int
    entry: TileTraceEntry
    vertex_lines: Sequence[int] = _NO_LINES


def check_driver(driver: str) -> str:
    """Validate a stream driver name (shared by CLI and orchestration)."""
    if driver not in STREAM_DRIVERS:
        raise ConfigError(
            f"unknown stream driver {driver!r}; "
            f"choose from {', '.join(STREAM_DRIVERS)}"
        )
    return driver


@dataclass(frozen=True)
class FrameSource:
    """Picklable recipe for re-rendering one frame in another process.

    The overlap driver ships this (not the built workload) to its render
    worker: scene construction is deterministic from the recipe, so the
    worker rebuilds an identical frame from a few hundred bytes instead
    of pickling meshes and textures across the process boundary.
    """

    config: GPUConfig
    recipe: SceneRecipe
    frame: int = 0
    engine: str = "fast"

    def build(self) -> BuiltWorkload:
        return self.recipe.build(self.config, frame=self.frame)

    def renderer(self) -> FrameRenderer:
        return FrameRenderer(self.config, engine=self.engine)


class BatchTileStream:
    """The executable specification: stream a materialized trace.

    Peak memory is the whole frame (that is the point of the batch
    path — render once, replay many); the stream protocol just re-frames
    the replayer's original ``for tile in scheduler.tiles`` walk.
    """

    driver = "batch"

    def __init__(self, trace: FrameTrace):
        self.trace = trace
        self._order: Sequence[TileCoord] = ()

    def open(self, order: Sequence[TileCoord]) -> "BatchTileStream":
        """Bind the traversal order; returns ``self`` (a context manager)."""
        self._order = order
        return self

    def __enter__(self) -> "BatchTileStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Nothing to release: the trace outlives the stream."""

    def __iter__(self) -> Iterator[TileWorkUnit]:
        trace = self.trace
        entries = trace.tiles
        vertex_lines = trace.vertex_lines
        for step, tile in enumerate(self._order):
            entry = entries.get(tile) or TileTraceEntry()
            if step:
                yield TileWorkUnit(tile, step, entry, _NO_LINES)
            else:
                yield TileWorkUnit(tile, step, entry, vertex_lines)


class StreamingTileStream:
    """Render-as-you-replay: each tile is produced, consumed, dropped.

    Peak memory is O(one footprint group) instead of O(frame).  The
    price is that every replay re-renders the frame — unless a
    :class:`~repro.sim.checkpoint.TileChunkStore` is attached, in which
    case tiles rendered once are persisted as verified per-tile chunks
    and later replays load them back one at a time (corrupt or missing
    chunks are transparently re-rendered, mirroring the trace store's
    cache-miss semantics).
    """

    driver = "streaming"

    def __init__(
        self,
        renderer: FrameRenderer,
        workload: BuiltWorkload,
        group_size: int = DEFAULT_GROUP_TILES,
        chunk_store=None,
    ):
        self.renderer = renderer
        self.workload = workload
        self.group_size = group_size
        self.chunk_store = chunk_store
        self._order: Sequence[TileCoord] = ()
        self._pass = None
        #: Frame-level stats, available after full iteration (pure
        #: streaming only; on the chunk-load path stats stay ``None``).
        self.stats: Optional[RenderStats] = None
        #: Tiles actually rendered (vs loaded from the chunk store).
        self.tiles_rendered = 0

    def open(self, order: Sequence[TileCoord]) -> "StreamingTileStream":
        """Bind the traversal order; returns ``self`` (a context manager)."""
        self._order = order
        return self

    def __enter__(self) -> "StreamingTileStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._pass = None

    def _tile_pass(self):
        """The incremental render pass, created on first need.

        Lazy so a fully chunk-cached frame never pays geometry again —
        except for the vertex prologue, which lives in the chunk store's
        frame meta once a first pass completed.
        """
        tile_pass = self._pass
        if tile_pass is None:
            tile_pass = self.renderer.begin_tiles(self.workload)
            self._pass = tile_pass
        return tile_pass

    def _prologue(self) -> Sequence[int]:
        store = self.chunk_store
        if store is not None:
            lines = store.vertex_lines()
            if lines is not None:
                return lines
        return self._tile_pass().vertex_lines

    def __iter__(self) -> Iterator[TileWorkUnit]:
        if self.chunk_store is not None:
            yield from self._chunked_units()
            return
        tile_pass = self._tile_pass()
        vertex_lines = tile_pass.vertex_lines
        step = 0
        for tile, entry in tile_pass.iter_tiles(self._order, self.group_size):
            if step:
                yield TileWorkUnit(tile, step, entry, _NO_LINES)
            else:
                yield TileWorkUnit(tile, step, entry, vertex_lines)
            step += 1
        self.tiles_rendered = step
        self.stats = tile_pass.finish()

    def _chunked_units(self) -> Iterator[TileWorkUnit]:
        """Tile-granular checkpointing: load chunks, render the misses.

        Every tile flows through the store's running digest, so after
        the full traversal the store can seal (or re-verify) the frame
        meta whose hash chain terminates in the trace digest.
        """
        store = self.chunk_store
        vertex_lines = self._prologue()
        frame = store.begin_frame(self.renderer.config, vertex_lines)
        step = 0
        for tile in self._order:
            loaded = store.load_tile(tile)
            if loaded is None:
                entry = self._tile_pass().render_tile(tile)
                digest = store.save_tile(tile, entry)
                self.tiles_rendered += 1
            else:
                entry, digest = loaded
            frame.add(tile, entry, digest)
            if step:
                yield TileWorkUnit(tile, step, entry, _NO_LINES)
            else:
                yield TileWorkUnit(tile, step, entry, vertex_lines)
            step += 1
        frame.seal()


def _render_to_queue(source: FrameSource, order, group_size, out_queue) -> None:
    """Overlap driver's producer: render tiles into the bounded queue.

    Runs in a worker process.  Any failure — including an injected kill
    arriving through a fork-inherited fault plan — is reported as a
    final ``("error", repr)`` message rather than a silent death, so the
    consumer can distinguish a render bug from a crashed worker.
    """
    try:
        tile_pass = source.renderer().begin_tiles(source.build())
        out_queue.put(("vertex", tile_pass.vertex_lines))
        for tile, entry in tile_pass.iter_tiles(order, group_size):
            out_queue.put(("tile", tile, entry))
        out_queue.put(("done", tile_pass.finish()))
    except BaseException as error:  # noqa: BLE001 — must cross the process boundary
        try:
            out_queue.put(("error", f"{type(error).__name__}: {error}"))
        except Exception:
            pass  # queue torn down underneath us; the exit code tells the story
        raise


class OverlappedTileStream:
    """Bounded-queue overlap: render ahead in a worker, replay behind.

    The consumer replays tile *k* while the producer process renders
    tiles *k+1 .. k+depth*; the queue bound keeps memory O(depth) and
    provides backpressure when replay is the slower side.  Worker death
    and hangs surface as the sweep pool's transient-flagged
    :class:`WorkerCrashError` / :class:`TaskTimeoutError`, and teardown
    mirrors ``_TaskPool.close``: bounded join, then terminate.
    """

    driver = "overlap"

    def __init__(
        self,
        source: FrameSource,
        group_size: int = DEFAULT_GROUP_TILES,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        timeout_s: Optional[float] = None,
    ):
        if queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self.source = source
        self.group_size = group_size
        self.queue_depth = queue_depth
        self.timeout_s = timeout_s
        self._order: Sequence[TileCoord] = ()
        self._process: Optional[multiprocessing.Process] = None
        self._queue = None
        self._vertex_lines: Sequence[int] = _NO_LINES
        #: Frame-level stats, delivered by the producer's final message.
        self.stats: Optional[RenderStats] = None

    def open(self, order: Sequence[TileCoord]) -> "OverlappedTileStream":
        """Spawn the render worker; returns ``self`` (a context manager)."""
        self._order = list(order)
        self._queue = multiprocessing.Queue(maxsize=self.queue_depth)
        self._process = multiprocessing.Process(
            target=_render_to_queue,
            args=(self.source, self._order, self.group_size, self._queue),
            daemon=True,
        )
        self._process.start()
        message = self._next_message()
        if message[0] != "vertex":
            raise ReplayError(
                f"overlap render worker opened with {message[0]!r}, "
                "expected the vertex prologue"
            )
        self._vertex_lines = message[1]
        return self

    def __enter__(self) -> "OverlappedTileStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _next_message(self):
        """One message off the queue, with liveness and deadline checks."""
        process = self._process
        waited = 0.0
        while True:
            try:
                message = self._queue.get(timeout=_POLL_INTERVAL_S)
            except queue_module.Empty:
                waited += _POLL_INTERVAL_S
                if self.timeout_s is not None and waited >= self.timeout_s:
                    raise TaskTimeoutError(
                        f"overlap render worker produced nothing for "
                        f"{self.timeout_s:.6g} s"
                    ) from None
                if not process.is_alive():
                    raise WorkerCrashError(
                        "overlap render worker died without reporting "
                        f"an error (exit code {process.exitcode})"
                    ) from None
                continue
            if message[0] == "error":
                raise ReplayError(
                    f"overlap render worker failed: {message[1]}"
                )
            return message

    def __iter__(self) -> Iterator[TileWorkUnit]:
        if self._process is None:
            raise ReplayError(
                "OverlappedTileStream must be open()ed before iteration"
            )
        vertex_lines = self._vertex_lines
        expected = len(self._order)
        step = 0
        while step < expected:
            message = self._next_message()
            kind = message[0]
            if kind == "done":
                raise ReplayError(
                    f"overlap render worker finished after "
                    f"{step}/{expected} tiles"
                )
            tile = message[1]
            entry = message[2]
            if step:
                yield TileWorkUnit(tile, step, entry, _NO_LINES)
            else:
                yield TileWorkUnit(tile, step, entry, vertex_lines)
            step += 1
        message = self._next_message()
        if message[0] == "done":
            self.stats = message[1]

    def close(self) -> None:
        """Bounded join, then terminate — a wedged worker never pins us."""
        process = self._process
        if process is None:
            return
        self._process = None
        if process.is_alive():
            process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)
        queue = self._queue
        self._queue = None
        if queue is not None:
            queue.cancel_join_thread()
            queue.close()
