"""Design-space sweeps: evaluate a grid of DTexL design points.

The paper's methodology is a sequence of sweeps (groupings, then orders,
then assignments); :class:`DesignSweep` generalizes that: give it lists
of knob values and it evaluates the cross product over the suite through
a shared :class:`~repro.sim.experiment.ExperimentRunner`, producing flat
result rows that can be printed or written to CSV.

Execution is fault-isolated: a design point that crashes becomes a
structured :class:`~repro.sim.resilience.FailureRecord` in the returned
:class:`SweepReport` while the rest of the grid keeps running.  With a
checkpoint directory, completed rows are journaled as they finish and
pass-1 traces are persisted, so a killed campaign resumes from where it
died without re-rendering anything; a JSON manifest summarising the run
is written alongside.

With ``jobs > 1`` the (design point x game) replays fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The parent renders
pass-1 exactly once and ships traces to workers through a
:class:`~repro.sim.checkpoint.TraceCheckpointStore` (plus a fork-
inherited in-memory cache, so forked workers never reload from disk);
results are reassembled in grid-and-games order, so a parallel campaign
produces bit-identical rows, failures and manifest contents to a serial
one — only ``wall_time_s`` differs.
"""

from __future__ import annotations

import csv
import io
import os
import shutil
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dtexl import DTexLConfig
from repro.errors import ConfigError
from repro.sim.export import write_run_manifest
from repro.sim.checkpoint import (
    SweepProgress,
    TraceCheckpointStore,
    campaign_key,
    config_hash,
)
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.sim.replay import TraceReplayer
from repro.sim.resilience import (
    FailureRecord,
    OUTCOME_FATAL,
    OUTCOME_PARTIAL,
    OUTCOME_SUCCESS,
    RetryPolicy,
    RunManifest,
    run_guarded,
)
from repro.stats import per_tile_imbalance

#: Column order of sweep rows.
ROW_FIELDS = [
    "grouping", "assignment", "order", "decoupled",
    "l2_accesses", "l2_normalized", "speedup",
    "quad_imbalance", "energy_mj", "energy_decrease_pct",
]

#: Subdirectory of the checkpoint dir holding pass-1 trace checkpoints.
TRACE_SUBDIR = "traces"
#: Manifest filename inside the checkpoint dir.
MANIFEST_FILENAME = "manifest.json"


# -- parallel-executor plumbing (module level: must pickle to workers) --------

#: Per-process trace cache keyed by ``(store_dir, trace_key)``.  The
#: parent seeds it before creating the pool, so fork-started workers
#: inherit every trace by memory sharing; spawn-started workers fall
#: back to one integrity-checked store load per trace.
_WORKER_TRACES: Dict[Tuple[str, str], object] = {}


def _worker_trace(store_dir: str, key: str):
    cache_key = (store_dir, key)
    trace = _WORKER_TRACES.get(cache_key)
    if trace is None:
        trace = TraceCheckpointStore(store_dir).load(key)
        _WORKER_TRACES[cache_key] = trace
    return trace


def _replay_task(
    store_dir: str,
    key: str,
    config,
    design: DTexLConfig,
    energy_params,
    budget,
    engine: str,
    design_name: str,
    game: str,
    policy: Optional[RetryPolicy],
    guarded: bool,
):
    """One (design point, game) replay inside a worker process.

    Unguarded tasks (the baseline) let exceptions propagate through the
    future — a baseline failure is fatal, exactly as in a serial run.
    Guarded tasks return the same ``(result, failure)`` pair
    :func:`run_guarded` produces serially, so retry accounting and
    failure records match bit-for-bit.
    """
    trace = _worker_trace(store_dir, key)
    replayer = TraceReplayer(
        config, energy_params=energy_params, budget=budget, engine=engine
    )
    if not guarded:
        return replayer.run(trace, design), None
    return run_guarded(
        lambda: replayer.run(trace, design),
        design_point=design_name,
        game=game,
        policy=policy,
    )


@dataclass
class SweepRow:
    """One design point's aggregate results over the suite."""

    grouping: str
    assignment: str
    order: str
    decoupled: bool
    l2_accesses: int
    l2_normalized: float
    speedup: float
    quad_imbalance: float
    energy_mj: float
    energy_decrease_pct: float

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in ROW_FIELDS}

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SweepRow":
        """Rebuild a row journaled by a previous run."""
        return SweepRow(**{name: payload[name] for name in ROW_FIELDS})


@dataclass
class SweepReport:
    """Everything one sweep campaign produced."""

    rows: List[SweepRow] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    #: Design-point names whose rows were loaded from a previous run.
    resumed: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    manifest: Optional[RunManifest] = None

    @property
    def outcome(self) -> str:
        if not self.failures:
            return OUTCOME_SUCCESS
        return OUTCOME_PARTIAL if self.rows else OUTCOME_FATAL


@dataclass
class DesignSweep:
    """A grid over the DTexL design space."""

    groupings: Sequence[str] = ("FG-xshift2", "CG-square")
    assignments: Sequence[str] = ("const",)
    orders: Sequence[str] = ("zorder",)
    decoupled: Sequence[bool] = (False, True)
    baseline: DTexLConfig = field(default_factory=lambda: DTexLConfig("baseline"))

    def design_points(self) -> List[DTexLConfig]:
        """The cross product, as named design points."""
        points = []
        for grouping, assignment, order, dec in product(
            self.groupings, self.assignments, self.orders, self.decoupled
        ):
            arch = "dec" if dec else "cpl"
            points.append(
                DTexLConfig(
                    name=f"{grouping}/{assignment}/{order}/{arch}",
                    grouping=grouping,
                    assignment=assignment,
                    order=order,
                    decoupled=dec,
                )
            )
        return points

    def run(
        self,
        runner: ExperimentRunner,
        checkpoint_dir: Optional[os.PathLike] = None,
        resume: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
    ) -> SweepReport:
        """Evaluate every point; rows are ordered as the grid iterates.

        Per-design-point failures are isolated into
        ``report.failures``; only a baseline that cannot run at all is
        fatal (it propagates, since nothing can be normalized without
        it).  With ``checkpoint_dir``, traces and completed rows are
        persisted there and a manifest is written; with ``resume``,
        rows journaled by a previous run of the same campaign are
        reused instead of recomputed.  ``jobs > 1`` fans the replays
        over worker processes; the report is bit-identical to a serial
        run except for ``wall_time_s``.
        """
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        start = time.monotonic()  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        progress: Optional[SweepProgress] = None
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            if runner.checkpoint_store is None:
                runner.checkpoint_store = TraceCheckpointStore(
                    checkpoint_dir / TRACE_SUBDIR
                )
            progress = SweepProgress(
                checkpoint_dir,
                campaign_key(runner.config, runner.games, self.baseline.name),
            )
        completed = progress.completed_rows() if (progress and resume) else {}

        report = SweepReport()
        manifest = RunManifest(
            config_hash=config_hash(runner.config),
            games=list(runner.games),
        )
        if jobs == 1:
            self._run_serial(
                runner, retry_policy, completed, progress, report, manifest
            )
        else:
            self._run_parallel(
                runner, retry_policy, completed, progress, report, manifest,
                jobs,
            )

        manifest.failures = list(report.failures)
        manifest.wall_time_s = time.monotonic() - start  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        report.wall_time_s = manifest.wall_time_s
        report.manifest = manifest
        if checkpoint_dir is not None:
            write_run_manifest(
                Path(checkpoint_dir) / MANIFEST_FILENAME, manifest
            )
        return report

    def _run_serial(
        self, runner, retry_policy, completed, progress, report, manifest
    ) -> None:
        """The in-process grid walk (one replay at a time)."""
        base: Optional[SuiteResult] = None
        for design in self.design_points():
            manifest.design_points_attempted.append(design.name)
            if design.name in completed:
                report.rows.append(SweepRow.from_dict(completed[design.name]))
                report.resumed.append(design.name)
                manifest.design_points_resumed.append(design.name)
                continue
            if base is None:
                # Lazy: a fully resumed campaign never re-runs the
                # baseline.  A baseline failure is fatal by design.
                base = runner.run_suite(self.baseline)
            suite = runner.run_suite(
                design,
                isolate_faults=True,
                retry_policy=retry_policy,
                fail_fast=True,
            )
            self._assemble(
                design, suite, base, runner, retry_policy, progress, report,
                manifest,
            )

    def _run_parallel(
        self, runner, retry_policy, completed, progress, report, manifest,
        jobs: int,
    ) -> None:
        """Fan (design point x game) over a process pool.

        The parent renders (or loads) every trace once, persists them
        into a checkpoint store the workers read, and reassembles
        results strictly in grid-and-games order, so rows, failures,
        journal entries and manifest lists come out exactly as the
        serial walk produces them.  ``fail_fast`` is emulated at
        assembly: only the first failing game of a design point (in
        games order) is kept, matching the serial early exit.
        """
        pending = [
            design for design in self.design_points()
            if design.name not in completed
        ]
        base: Optional[SuiteResult] = None
        suites: Dict[str, SuiteResult] = {}
        if pending:
            store = runner.checkpoint_store
            temp_dir: Optional[str] = None
            if store is None:
                temp_dir = tempfile.mkdtemp(prefix="repro-sweep-traces-")
                store = TraceCheckpointStore(temp_dir)
            store_dir = str(store.directory)
            seeded: List[Tuple[str, str]] = []
            try:
                keys = runner.prepare_traces(store)
                for alias, key in keys.items():
                    cache_key = (store_dir, key)
                    _WORKER_TRACES[cache_key] = runner.trace_for(alias)
                    seeded.append(cache_key)
                replayer = runner.replayer
                common = (
                    runner.config,
                    replayer.energy_model.params,
                    replayer.budget,
                    replayer.engine,
                )
                with ProcessPoolExecutor(max_workers=jobs) as pool:

                    def submit(design, alias, guarded) -> Future:
                        config, params, budget, engine = common
                        return pool.submit(
                            _replay_task,
                            store_dir, keys[alias], config, design, params,
                            budget, engine, design.name, alias, retry_policy,
                            guarded,
                        )

                    base_futures = {
                        alias: submit(self.baseline, alias, False)
                        for alias in runner.games
                    }
                    design_futures = {
                        (design.name, alias): submit(design, alias, True)
                        for design in pending
                        for alias in runner.games
                    }
                    # Baseline first, in games order: the first failing
                    # game's exception propagates fatally, as serially.
                    base = SuiteResult(design_point=self.baseline.name)
                    for alias in runner.games:
                        run, _ = base_futures[alias].result()
                        base.per_game[alias] = run
                    for design in pending:
                        suite = SuiteResult(design_point=design.name)
                        for alias in runner.games:
                            run, failure = design_futures[
                                (design.name, alias)
                            ].result()
                            if failure is not None:
                                suite.failures.append(failure)
                                break  # fail_fast: keep only the first
                            suite.per_game[alias] = run
                        suites[design.name] = suite
            finally:
                for cache_key in seeded:
                    _WORKER_TRACES.pop(cache_key, None)
                if temp_dir is not None:
                    shutil.rmtree(temp_dir, ignore_errors=True)

        for design in self.design_points():
            manifest.design_points_attempted.append(design.name)
            if design.name in completed:
                report.rows.append(SweepRow.from_dict(completed[design.name]))
                report.resumed.append(design.name)
                manifest.design_points_resumed.append(design.name)
                continue
            self._assemble(
                design, suites[design.name], base, runner, retry_policy,
                progress, report, manifest,
            )

    def _assemble(
        self, design, suite, base, runner, retry_policy, progress, report,
        manifest,
    ) -> None:
        """Turn one design point's suite result into a row or failures."""
        if suite.failures:
            report.failures.extend(suite.failures)
            manifest.design_points_failed.append(design.name)
            return
        row, failure = run_guarded(
            lambda: self._row(design, suite, base, runner.games),
            design_point=design.name,
            policy=retry_policy,
        )
        if failure is not None:
            report.failures.append(failure)
            manifest.design_points_failed.append(design.name)
            return
        report.rows.append(row)
        manifest.design_points_succeeded.append(design.name)
        if progress is not None:
            progress.record(design.name, row.as_dict())

    @staticmethod
    def _row(
        design: DTexLConfig,
        suite: SuiteResult,
        base: SuiteResult,
        games: Iterable[str],
    ) -> SweepRow:
        imbalances = [
            per_tile_imbalance(suite.per_game[g].per_tile_quad_counts)
            for g in games
        ]
        energy = sum(r.energy.total_mj for r in suite.per_game.values())
        return SweepRow(
            grouping=design.grouping,
            assignment=design.assignment,
            order=design.order,
            decoupled=design.decoupled,
            l2_accesses=suite.total_l2_accesses,
            l2_normalized=(
                suite.total_l2_accesses / base.total_l2_accesses
                if base.total_l2_accesses else 0.0
            ),
            speedup=(
                suite.mean_speedup_vs(base) if suite.per_game else 0.0
            ),
            quad_imbalance=(
                sum(imbalances) / len(imbalances) if imbalances else 0.0
            ),
            energy_mj=energy,
            energy_decrease_pct=suite.mean_energy_decrease_vs(base),
        )


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as CSV (header + one line per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=ROW_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row.as_dict())
    return buffer.getvalue()


def failures_to_csv(failures: Sequence[FailureRecord]) -> str:
    """Serialize failure records as CSV, mirroring :func:`rows_to_csv`."""
    fields = ["design_point", "game", "error_type", "message", "attempts"]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for failure in failures:
        writer.writerow(failure.as_dict())
    return buffer.getvalue()


def best_row(
    rows: Sequence[SweepRow], objective: str = "speedup"
) -> Optional[SweepRow]:
    """The Pareto-naive winner by a single objective column."""
    if not rows:
        return None
    if objective in ("l2_accesses", "l2_normalized", "quad_imbalance",
                     "energy_mj"):
        return min(rows, key=lambda r: getattr(r, objective))
    return max(rows, key=lambda r: getattr(r, objective))
