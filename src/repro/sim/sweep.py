"""Design-space sweeps: evaluate a grid of DTexL design points.

The paper's methodology is a sequence of sweeps (groupings, then orders,
then assignments); :class:`DesignSweep` generalizes that: give it lists
of knob values and it evaluates the cross product over the suite through
a shared :class:`~repro.sim.experiment.ExperimentRunner`, producing flat
result rows that can be printed or written to CSV.

Execution is fault-isolated: a design point that crashes becomes a
structured :class:`~repro.sim.resilience.FailureRecord` in the returned
:class:`SweepReport` while the rest of the grid keeps running.  With a
checkpoint directory, completed rows are journaled as they finish and
pass-1 traces are persisted, so a killed campaign resumes from where it
died without re-rendering anything; a JSON manifest summarising the run
is written alongside.
"""

from __future__ import annotations

import csv
import io
import os
import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.dtexl import DTexLConfig
from repro.sim.export import write_run_manifest
from repro.sim.checkpoint import (
    SweepProgress,
    TraceCheckpointStore,
    campaign_key,
    config_hash,
)
from repro.sim.experiment import ExperimentRunner, SuiteResult
from repro.sim.resilience import (
    FailureRecord,
    OUTCOME_FATAL,
    OUTCOME_PARTIAL,
    OUTCOME_SUCCESS,
    RetryPolicy,
    RunManifest,
    run_guarded,
)
from repro.stats import per_tile_imbalance

#: Column order of sweep rows.
ROW_FIELDS = [
    "grouping", "assignment", "order", "decoupled",
    "l2_accesses", "l2_normalized", "speedup",
    "quad_imbalance", "energy_mj", "energy_decrease_pct",
]

#: Subdirectory of the checkpoint dir holding pass-1 trace checkpoints.
TRACE_SUBDIR = "traces"
#: Manifest filename inside the checkpoint dir.
MANIFEST_FILENAME = "manifest.json"


@dataclass
class SweepRow:
    """One design point's aggregate results over the suite."""

    grouping: str
    assignment: str
    order: str
    decoupled: bool
    l2_accesses: int
    l2_normalized: float
    speedup: float
    quad_imbalance: float
    energy_mj: float
    energy_decrease_pct: float

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in ROW_FIELDS}

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SweepRow":
        """Rebuild a row journaled by a previous run."""
        return SweepRow(**{name: payload[name] for name in ROW_FIELDS})


@dataclass
class SweepReport:
    """Everything one sweep campaign produced."""

    rows: List[SweepRow] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    #: Design-point names whose rows were loaded from a previous run.
    resumed: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    manifest: Optional[RunManifest] = None

    @property
    def outcome(self) -> str:
        if not self.failures:
            return OUTCOME_SUCCESS
        return OUTCOME_PARTIAL if self.rows else OUTCOME_FATAL


@dataclass
class DesignSweep:
    """A grid over the DTexL design space."""

    groupings: Sequence[str] = ("FG-xshift2", "CG-square")
    assignments: Sequence[str] = ("const",)
    orders: Sequence[str] = ("zorder",)
    decoupled: Sequence[bool] = (False, True)
    baseline: DTexLConfig = field(default_factory=lambda: DTexLConfig("baseline"))

    def design_points(self) -> List[DTexLConfig]:
        """The cross product, as named design points."""
        points = []
        for grouping, assignment, order, dec in product(
            self.groupings, self.assignments, self.orders, self.decoupled
        ):
            arch = "dec" if dec else "cpl"
            points.append(
                DTexLConfig(
                    name=f"{grouping}/{assignment}/{order}/{arch}",
                    grouping=grouping,
                    assignment=assignment,
                    order=order,
                    decoupled=dec,
                )
            )
        return points

    def run(
        self,
        runner: ExperimentRunner,
        checkpoint_dir: Optional[os.PathLike] = None,
        resume: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> SweepReport:
        """Evaluate every point; rows are ordered as the grid iterates.

        Per-design-point failures are isolated into
        ``report.failures``; only a baseline that cannot run at all is
        fatal (it propagates, since nothing can be normalized without
        it).  With ``checkpoint_dir``, traces and completed rows are
        persisted there and a manifest is written; with ``resume``,
        rows journaled by a previous run of the same campaign are
        reused instead of recomputed.
        """
        start = time.monotonic()  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        progress: Optional[SweepProgress] = None
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            if runner.checkpoint_store is None:
                runner.checkpoint_store = TraceCheckpointStore(
                    checkpoint_dir / TRACE_SUBDIR
                )
            progress = SweepProgress(
                checkpoint_dir,
                campaign_key(runner.config, runner.games, self.baseline.name),
            )
        completed = progress.completed_rows() if (progress and resume) else {}

        report = SweepReport()
        manifest = RunManifest(
            config_hash=config_hash(runner.config),
            games=list(runner.games),
        )
        base: Optional[SuiteResult] = None
        for design in self.design_points():
            manifest.design_points_attempted.append(design.name)
            if design.name in completed:
                report.rows.append(SweepRow.from_dict(completed[design.name]))
                report.resumed.append(design.name)
                manifest.design_points_resumed.append(design.name)
                continue
            if base is None:
                # Lazy: a fully resumed campaign never re-runs the
                # baseline.  A baseline failure is fatal by design.
                base = runner.run_suite(self.baseline)
            suite = runner.run_suite(
                design,
                isolate_faults=True,
                retry_policy=retry_policy,
                fail_fast=True,
            )
            if suite.failures:
                report.failures.extend(suite.failures)
                manifest.design_points_failed.append(design.name)
                continue
            row, failure = run_guarded(
                lambda: self._row(design, suite, base, runner.games),
                design_point=design.name,
                policy=retry_policy,
            )
            if failure is not None:
                report.failures.append(failure)
                manifest.design_points_failed.append(design.name)
                continue
            report.rows.append(row)
            manifest.design_points_succeeded.append(design.name)
            if progress is not None:
                progress.record(design.name, row.as_dict())

        manifest.failures = list(report.failures)
        manifest.wall_time_s = time.monotonic() - start  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        report.wall_time_s = manifest.wall_time_s
        report.manifest = manifest
        if checkpoint_dir is not None:
            write_run_manifest(
                Path(checkpoint_dir) / MANIFEST_FILENAME, manifest
            )
        return report

    @staticmethod
    def _row(
        design: DTexLConfig,
        suite: SuiteResult,
        base: SuiteResult,
        games: Iterable[str],
    ) -> SweepRow:
        imbalances = [
            per_tile_imbalance(suite.per_game[g].per_tile_quad_counts)
            for g in games
        ]
        energy = sum(r.energy.total_mj for r in suite.per_game.values())
        return SweepRow(
            grouping=design.grouping,
            assignment=design.assignment,
            order=design.order,
            decoupled=design.decoupled,
            l2_accesses=suite.total_l2_accesses,
            l2_normalized=(
                suite.total_l2_accesses / base.total_l2_accesses
                if base.total_l2_accesses else 0.0
            ),
            speedup=(
                suite.mean_speedup_vs(base) if suite.per_game else 0.0
            ),
            quad_imbalance=(
                sum(imbalances) / len(imbalances) if imbalances else 0.0
            ),
            energy_mj=energy,
            energy_decrease_pct=suite.mean_energy_decrease_vs(base),
        )


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as CSV (header + one line per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=ROW_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row.as_dict())
    return buffer.getvalue()


def failures_to_csv(failures: Sequence[FailureRecord]) -> str:
    """Serialize failure records as CSV, mirroring :func:`rows_to_csv`."""
    fields = ["design_point", "game", "error_type", "message", "attempts"]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for failure in failures:
        writer.writerow(failure.as_dict())
    return buffer.getvalue()


def best_row(
    rows: Sequence[SweepRow], objective: str = "speedup"
) -> Optional[SweepRow]:
    """The Pareto-naive winner by a single objective column."""
    if not rows:
        return None
    if objective in ("l2_accesses", "l2_normalized", "quad_imbalance",
                     "energy_mj"):
        return min(rows, key=lambda r: getattr(r, objective))
    return max(rows, key=lambda r: getattr(r, objective))
