"""Design-space sweeps: evaluate a grid of DTexL design points.

The paper's methodology is a sequence of sweeps (groupings, then orders,
then assignments); :class:`DesignSweep` generalizes that: give it lists
of knob values and it evaluates the cross product over the suite through
a shared :class:`~repro.sim.experiment.ExperimentRunner`, producing flat
result rows that can be printed or written to CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.metrics import per_tile_imbalance
from repro.core.dtexl import DTexLConfig
from repro.sim.experiment import ExperimentRunner, SuiteResult

#: Column order of sweep rows.
ROW_FIELDS = [
    "grouping", "assignment", "order", "decoupled",
    "l2_accesses", "l2_normalized", "speedup",
    "quad_imbalance", "energy_mj", "energy_decrease_pct",
]


@dataclass
class SweepRow:
    """One design point's aggregate results over the suite."""

    grouping: str
    assignment: str
    order: str
    decoupled: bool
    l2_accesses: int
    l2_normalized: float
    speedup: float
    quad_imbalance: float
    energy_mj: float
    energy_decrease_pct: float

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in ROW_FIELDS}


@dataclass
class DesignSweep:
    """A grid over the DTexL design space."""

    groupings: Sequence[str] = ("FG-xshift2", "CG-square")
    assignments: Sequence[str] = ("const",)
    orders: Sequence[str] = ("zorder",)
    decoupled: Sequence[bool] = (False, True)
    baseline: DTexLConfig = field(default_factory=lambda: DTexLConfig("baseline"))

    def design_points(self) -> List[DTexLConfig]:
        """The cross product, as named design points."""
        points = []
        for grouping, assignment, order, dec in product(
            self.groupings, self.assignments, self.orders, self.decoupled
        ):
            arch = "dec" if dec else "cpl"
            points.append(
                DTexLConfig(
                    name=f"{grouping}/{assignment}/{order}/{arch}",
                    grouping=grouping,
                    assignment=assignment,
                    order=order,
                    decoupled=dec,
                )
            )
        return points

    def run(self, runner: ExperimentRunner) -> List[SweepRow]:
        """Evaluate every point; rows are ordered as the grid iterates."""
        base = runner.run_suite(self.baseline)
        rows: List[SweepRow] = []
        for design in self.design_points():
            suite = runner.run_suite(design)
            rows.append(self._row(design, suite, base, runner.games))
        return rows

    @staticmethod
    def _row(
        design: DTexLConfig,
        suite: SuiteResult,
        base: SuiteResult,
        games: Iterable[str],
    ) -> SweepRow:
        imbalances = [
            per_tile_imbalance(suite.per_game[g].per_tile_quad_counts)
            for g in games
        ]
        energy = sum(r.energy.total_mj for r in suite.per_game.values())
        return SweepRow(
            grouping=design.grouping,
            assignment=design.assignment,
            order=design.order,
            decoupled=design.decoupled,
            l2_accesses=suite.total_l2_accesses,
            l2_normalized=(
                suite.total_l2_accesses / base.total_l2_accesses
                if base.total_l2_accesses else 0.0
            ),
            speedup=suite.mean_speedup_vs(base),
            quad_imbalance=sum(imbalances) / len(imbalances),
            energy_mj=energy,
            energy_decrease_pct=suite.mean_energy_decrease_vs(base),
        )


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as CSV (header + one line per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=ROW_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row.as_dict())
    return buffer.getvalue()


def best_row(
    rows: Sequence[SweepRow], objective: str = "speedup"
) -> Optional[SweepRow]:
    """The Pareto-naive winner by a single objective column."""
    if not rows:
        return None
    if objective in ("l2_accesses", "l2_normalized", "quad_imbalance",
                     "energy_mj"):
        return min(rows, key=lambda r: getattr(r, objective))
    return max(rows, key=lambda r: getattr(r, objective))
