"""Design-space sweeps: evaluate a grid of DTexL design points.

The paper's methodology is a sequence of sweeps (groupings, then orders,
then assignments); :class:`DesignSweep` generalizes that: give it lists
of knob values and it evaluates the cross product over the suite through
a shared :class:`~repro.sim.experiment.ExperimentRunner`, producing flat
result rows that can be printed or written to CSV.

Execution is fault-isolated: a design point that crashes becomes a
structured :class:`~repro.sim.resilience.FailureRecord` in the returned
:class:`SweepReport` while the rest of the grid keeps running.  With a
checkpoint directory, completed rows are journaled as they finish and
pass-1 traces are persisted, so a killed campaign resumes from where it
died without re-rendering anything; a JSON manifest summarising the run
is written alongside.

With ``jobs > 1`` the (design point x game) replays fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The parent renders
pass-1 exactly once and ships traces to workers through a
:class:`~repro.sim.checkpoint.TraceCheckpointStore` (plus a fork-
inherited in-memory cache, so forked workers never reload from disk);
results are reassembled in grid-and-games order, so a parallel campaign
produces bit-identical rows, failures and manifest contents to a serial
one — only ``wall_time_s`` differs.

The parallel pool is self-healing (:class:`_TaskPool`): a worker that
dies (``BrokenProcessPool``) or hangs past the per-task deadline is
respawned and its tasks rescheduled; only a task that keeps failing
becomes a :class:`FailureRecord` row.  Rows are journaled as each
design point assembles — before pool teardown — and every injection
site of :mod:`repro.sim.faults` is threaded through this path, so the
`repro chaos` campaign can prove the recovery machinery end to end.
"""

from __future__ import annotations

import csv
import io
import os
import shutil
import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dtexl import DTexLConfig
from repro.errors import (
    CheckpointError,
    ConfigError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.sim import faults
from repro.sim.driver import FrameRenderer
from repro.sim.export import write_run_manifest
from repro.sim.checkpoint import (
    SweepProgress,
    TileChunkStore,
    TraceCheckpointStore,
    campaign_key,
    config_hash,
    trace_key,
)
from repro.sim.experiment import CHUNK_SUBDIR, ExperimentRunner, SuiteResult
from repro.sim.replay import TraceReplayer
from repro.sim.resilience import (
    FailureRecord,
    OUTCOME_FATAL,
    OUTCOME_PARTIAL,
    OUTCOME_SUCCESS,
    RetryPolicy,
    RunManifest,
    run_guarded,
)
from repro.sim.stream import StreamingTileStream
from repro.stats import per_tile_imbalance
from repro.workloads.games import GAMES, build_game

#: Column order of sweep rows.
ROW_FIELDS = [
    "grouping", "assignment", "order", "decoupled",
    "l2_accesses", "l2_normalized", "speedup",
    "quad_imbalance", "energy_mj", "energy_decrease_pct",
]

#: Subdirectory of the checkpoint dir holding pass-1 trace checkpoints.
TRACE_SUBDIR = "traces"
#: Manifest filename inside the checkpoint dir.
MANIFEST_FILENAME = "manifest.json"


# -- parallel-executor plumbing (module level: must pickle to workers) --------

#: Per-process trace cache keyed by ``(store_dir, trace_key)``.  The
#: parent seeds it before creating the pool, so fork-started workers
#: inherit every trace by memory sharing; spawn-started workers fall
#: back to one integrity-checked store load per trace.
_WORKER_TRACES: Dict[Tuple[str, str], object] = {}


def _worker_trace(store_dir: str, key: str, config=None, alias=None):
    """Load one trace inside a worker, self-healing a broken store.

    A :class:`CheckpointError` (truncated/corrupt/unreadable ``.trace``
    file) is treated as a cache miss: when the worker knows the game it
    re-renders pass 1 locally and re-saves the checkpoint for its
    siblings, instead of failing the task.
    """
    cache_key = (store_dir, key)
    trace = _WORKER_TRACES.get(cache_key)
    if trace is not None:
        return trace
    store = TraceCheckpointStore(store_dir)
    try:
        trace = store.load(key)
    except CheckpointError:
        if config is None or alias is None:
            raise
        workload = build_game(alias, config)
        trace, _ = FrameRenderer(config).render(workload)
        try:
            store.save(key, trace)
        except OSError:
            pass  # the re-render is still good; siblings heal themselves
    _WORKER_TRACES[cache_key] = trace
    return trace


def _worker_stream(store_dir: str, key: str, config, alias: str):
    """Build one streamed replay's tile stream inside a worker.

    Chunks live under the same ``chunks/<trace key>`` layout the serial
    runner uses, so serial and parallel streaming campaigns share (and
    resume from) the same tile-granular cache.  Concurrent workers
    racing to chunk the same game are safe: saves are atomic per tile
    and every writer produces the identical entry.
    """
    workload = build_game(alias, config)
    chunk_store = TileChunkStore(
        Path(store_dir) / CHUNK_SUBDIR / key, key
    )
    return StreamingTileStream(
        FrameRenderer(config), workload, chunk_store=chunk_store
    )


def _replay_task(
    store_dir: str,
    key: str,
    config,
    design: DTexLConfig,
    energy_params,
    budget,
    engine: str,
    design_name: str,
    game: str,
    policy: Optional[RetryPolicy],
    guarded: bool,
    stream_driver: str = "batch",
    plan: Optional[faults.FaultPlan] = None,
    attempt: int = 1,
):
    """One (design point, game) replay inside a worker process.

    Unguarded tasks (the baseline) let exceptions propagate through the
    future — a baseline failure is fatal, exactly as in a serial run.
    Guarded tasks return the same ``(result, failure)`` pair
    :func:`run_guarded` produces serially, so retry accounting and
    failure records match bit-for-bit.

    ``stream_driver`` is ``"batch"`` (load the whole trace, replay it)
    or ``"streaming"`` (render/load tiles one chunk at a time) — a
    runner configured for ``"overlap"`` degrades to ``"streaming"``
    here, because each worker is already its own process and nesting a
    render child under it buys nothing.  Either way the result is
    bit-identical; only the memory/time profile differs.

    ``plan`` re-arms the parent's fault plan inside the worker (fork
    inheritance is not guaranteed under spawn, and a respawned pool
    must re-arm anyway); ``attempt`` is the task's scheduling attempt,
    so a respawned task draws a fresh — by default clean — injection
    decision.
    """
    with faults.armed(plan):
        faults.fault_point(
            faults.SITE_WORKER, key=f"{design_name}/{game}", attempt=attempt
        )
        replayer = TraceReplayer(
            config, energy_params=energy_params, budget=budget, engine=engine
        )
        if stream_driver == "batch":
            trace = _worker_trace(store_dir, key, config, game)

            def replay():
                faults.fault_point(
                    faults.SITE_REPLAY, key=f"{design_name}/{game}"
                )
                return replayer.run(trace, design)
        else:

            def replay():
                faults.fault_point(
                    faults.SITE_REPLAY, key=f"{design_name}/{game}"
                )
                return replayer.run_stream(
                    _worker_stream(store_dir, key, config, game), design
                )

        if not guarded:
            return replay(), None
        return run_guarded(
            replay,
            design_point=design_name,
            game=game,
            policy=policy,
        )


#: Sentinel design name keying the baseline's tasks in the pool (design
#: point names always contain slashes, so this can never collide).
_BASELINE_TASK = "__baseline__"

#: Default scheduling attempts per task before a crash/hang is recorded.
DEFAULT_MAX_TASK_ATTEMPTS = 3

TaskId = Tuple[str, str]  # (design name or _BASELINE_TASK, game alias)


class _TaskPool:
    """A :class:`ProcessPoolExecutor` that survives its workers.

    Plain executors make a single dead worker fatal: one ``os._exit``
    (OOM kill, segfault, power event) raises ``BrokenProcessPool`` on
    *every* outstanding future and the campaign aborts with all
    completed-but-unconsumed work lost.  This wrapper owns the task
    book-keeping needed to do better:

    * every submitted task's arguments are retained, so after a pool
      breakage the executor is respawned and unfinished work is
      rescheduled instead of lost;
    * ``result()`` enforces an optional per-task deadline — a hung
      worker is killed (``SIGTERM`` to the pool), the pool respawned,
      and the task retried;
    * blame is assigned by *isolation*: a breakage (or deadline miss)
      implicates every task that might have been running, so only the
      task ``result()`` is waiting on is charged an attempt and
      resubmitted — alone, to an otherwise idle pool — while the rest
      park.  If the pool breaks again, the waited task is provably the
      culprit; an innocent bystander whose neighbor kept crashing is
      never failed on someone else's account.  Once the waited task
      resolves (either way), parked tasks resume at full parallelism;
    * a waited task that keeps crashing or hanging past
      ``max_attempts`` gets a failed future carrying a typed,
      *transient-flagged* error (:class:`WorkerCrashError` /
      :class:`TaskTimeoutError`) the sweep converts into a
      :class:`FailureRecord` row instead of an abort.

    Completed futures are never thrown away: results consumed before a
    crash stay consumed, which is what makes crash recovery invisible
    in the final report.
    """

    def __init__(
        self,
        jobs: int,
        task_timeout_s: Optional[float],
        max_attempts: int,
        plan: Optional[faults.FaultPlan],
    ):
        self._jobs = jobs
        self._timeout_s = task_timeout_s
        self._max_attempts = max(1, max_attempts)
        self._plan = plan
        self._executor = ProcessPoolExecutor(max_workers=jobs)
        self._args: Dict[TaskId, tuple] = {}
        self._attempts: Dict[TaskId, int] = {}
        self._futures: Dict[TaskId, Future] = {}
        #: Tasks benched during an isolation run (insertion-ordered so
        #: resubmission preserves the original scheduling order).
        self._parked: Dict[TaskId, None] = {}

    def submit(self, task_id: TaskId, args: tuple) -> None:
        self._args[task_id] = args
        self._attempts[task_id] = 1
        self._futures[task_id] = self._submit(task_id, attempt=1)

    def _submit(self, task_id: TaskId, attempt: int) -> Future:
        return self._executor.submit(
            _replay_task, *self._args[task_id],
            plan=self._plan, attempt=attempt,
        )

    def attempts(self, task_id: TaskId) -> int:
        """Scheduling attempts consumed by ``task_id`` so far."""
        return self._attempts[task_id]

    def result(self, task_id: TaskId):
        """Blocking consume with crash/hang recovery.

        Raises :class:`WorkerCrashError` / :class:`TaskTimeoutError`
        only once the waited task has exhausted its attempts *in
        isolation*; any other exception is the task's own and
        propagates untouched.
        """
        try:
            while True:
                future = self._futures[task_id]
                try:
                    return future.result(timeout=self._timeout_s)
                except BrokenProcessPool:
                    self._recover(
                        task_id,
                        WorkerCrashError(
                            f"worker process died while running "
                            f"{task_id[0]} on {task_id[1]}"
                        ),
                        kill_workers=False,
                    )
                except FuturesTimeoutError:
                    self._recover(
                        task_id,
                        TaskTimeoutError(
                            f"task {task_id[0]} on {task_id[1]} exceeded "
                            f"its {self._timeout_s:.6g} s deadline"
                        ),
                        kill_workers=True,
                    )
        finally:
            self._unpark()

    def _recover(
        self, waited: TaskId, error: Exception, kill_workers: bool
    ) -> None:
        """Respawn the executor; isolate ``waited``, park everyone else.

        A breakage implicates every task that might have been running,
        so only ``waited`` — the one task whose outcome we need right
        now — is charged an attempt and resubmitted to the fresh,
        otherwise empty pool.  If the pool breaks again the culprit is
        unambiguous.  Everything else (queued, cancelled, or lost
        mid-flight) parks with its attempt count untouched and is
        resubmitted once the isolation resolves.
        """
        broken = self._executor
        if kill_workers:
            # A deadline miss means a worker is wedged; shutdown alone
            # would wait on it forever.
            for process in list(getattr(broken, "_processes", {}).values()):
                try:
                    process.terminate()
                except OSError:
                    pass
        broken.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(max_workers=self._jobs)
        for task_id, future in list(self._futures.items()):
            if task_id == waited:
                continue
            if future.done() and not future.cancelled():
                if not isinstance(future.exception(), BrokenProcessPool):
                    continue  # a kept result (or the task's own error)
            self._parked[task_id] = None
        attempt = self._attempts[waited] + 1
        if attempt > self._max_attempts:
            # Out of attempts: pin the typed error on a dead future so
            # result() surfaces it exactly once, in grid order.
            failed: Future = Future()
            failed.set_exception(error)
            self._futures[waited] = failed
        else:
            self._attempts[waited] = attempt
            self._futures[waited] = self._submit(waited, attempt)

    def _unpark(self) -> None:
        """Resubmit parked tasks once an isolation run resolves."""
        for task_id in self._parked:
            self._futures[task_id] = self._submit(
                task_id, self._attempts[task_id]
            )
        self._parked.clear()

    def close(self) -> None:
        """Tear the pool down without letting a hung worker pin us.

        Idle workers exit promptly after ``shutdown``; one still
        wedged in an injected (or real) hang gets a bounded join and
        then a terminate, so campaign teardown — including teardown on
        the way out of a fatal kill — never outlasts the fault.
        """
        executor = self._executor
        processes = list((getattr(executor, "_processes", None) or {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():
                try:
                    process.terminate()
                except OSError:
                    pass


@dataclass
class SweepRow:
    """One design point's aggregate results over the suite."""

    grouping: str
    assignment: str
    order: str
    decoupled: bool
    l2_accesses: int
    l2_normalized: float
    speedup: float
    quad_imbalance: float
    energy_mj: float
    energy_decrease_pct: float

    def as_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in ROW_FIELDS}

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SweepRow":
        """Rebuild a row journaled by a previous run."""
        return SweepRow(**{name: payload[name] for name in ROW_FIELDS})


@dataclass
class SweepReport:
    """Everything one sweep campaign produced."""

    rows: List[SweepRow] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    #: Design-point names whose rows were loaded from a previous run.
    resumed: List[str] = field(default_factory=list)
    wall_time_s: float = 0.0
    manifest: Optional[RunManifest] = None

    @property
    def outcome(self) -> str:
        if not self.failures:
            return OUTCOME_SUCCESS
        return OUTCOME_PARTIAL if self.rows else OUTCOME_FATAL


@dataclass
class DesignSweep:
    """A grid over the DTexL design space."""

    groupings: Sequence[str] = ("FG-xshift2", "CG-square")
    assignments: Sequence[str] = ("const",)
    orders: Sequence[str] = ("zorder",)
    decoupled: Sequence[bool] = (False, True)
    baseline: DTexLConfig = field(default_factory=lambda: DTexLConfig("baseline"))

    def design_points(self) -> List[DTexLConfig]:
        """The cross product, as named design points."""
        points = []
        for grouping, assignment, order, dec in product(
            self.groupings, self.assignments, self.orders, self.decoupled
        ):
            arch = "dec" if dec else "cpl"
            points.append(
                DTexLConfig(
                    name=f"{grouping}/{assignment}/{order}/{arch}",
                    grouping=grouping,
                    assignment=assignment,
                    order=order,
                    decoupled=dec,
                )
            )
        return points

    def run(
        self,
        runner: ExperimentRunner,
        checkpoint_dir: Optional[os.PathLike] = None,
        resume: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        jobs: int = 1,
        task_timeout_s: Optional[float] = None,
        max_task_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
    ) -> SweepReport:
        """Evaluate every point; rows are ordered as the grid iterates.

        Per-design-point failures are isolated into
        ``report.failures``; only a baseline that cannot run at all is
        fatal (it propagates, since nothing can be normalized without
        it).  With ``checkpoint_dir``, traces and completed rows are
        persisted there and a manifest is written; with ``resume``,
        rows journaled by a previous run of the same campaign are
        reused instead of recomputed.  ``jobs > 1`` fans the replays
        over worker processes; the report is bit-identical to a serial
        run except for ``wall_time_s``.

        The parallel path is self-healing: a crashed worker
        (``BrokenProcessPool``) respawns the pool and reschedules every
        in-flight task, a task past ``task_timeout_s`` has its hung
        worker killed and is retried, and a task that fails
        ``max_task_attempts`` schedulings becomes a
        :class:`FailureRecord` row (``WorkerCrashError`` /
        ``TaskTimeoutError``) instead of aborting the campaign.  Rows
        are journaled the moment they assemble — before pool teardown —
        so even a campaign killed outright resumes without losing
        completed work.
        """
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigError(
                f"task_timeout_s must be positive, got {task_timeout_s}"
            )
        start = time.monotonic()  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        progress: Optional[SweepProgress] = None
        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            if runner.checkpoint_store is None:
                runner.checkpoint_store = TraceCheckpointStore(
                    checkpoint_dir / TRACE_SUBDIR
                )
            progress = SweepProgress(
                checkpoint_dir,
                campaign_key(runner.config, runner.games, self.baseline.name),
            )
        completed = progress.completed_rows() if (progress and resume) else {}

        report = SweepReport()
        manifest = RunManifest(
            config_hash=config_hash(runner.config),
            games=list(runner.games),
        )
        phase_before = dict(runner.phase_seconds)
        if jobs == 1:
            self._run_serial(
                runner, retry_policy, completed, progress, report, manifest
            )
        else:
            self._run_parallel(
                runner, retry_policy, completed, progress, report, manifest,
                jobs, task_timeout_s, max_task_attempts,
            )

        # Fold the runner's dataflow phases (the streamed render+replay
        # interleave has no separable render/replay split) into the
        # manifest, counting only this campaign's share.
        for phase, seconds in runner.phase_seconds.items():
            delta = seconds - phase_before.get(phase, 0.0)
            if delta > 0.0:
                manifest.phase_seconds[phase] = (
                    manifest.phase_seconds.get(phase, 0.0) + delta
                )
        manifest.failures = list(report.failures)
        manifest.wall_time_s = time.monotonic() - start  # replint: disable=wall-clock -- campaign wall time for the manifest, never a simulated quantity
        report.wall_time_s = manifest.wall_time_s
        report.manifest = manifest
        if checkpoint_dir is not None:
            write_run_manifest(
                Path(checkpoint_dir) / MANIFEST_FILENAME, manifest
            )
        return report

    def _run_serial(
        self, runner, retry_policy, completed, progress, report, manifest
    ) -> None:
        """The in-process grid walk (one replay at a time)."""
        base: Optional[SuiteResult] = None
        for design in self.design_points():
            manifest.design_points_attempted.append(design.name)
            if design.name in completed:
                report.rows.append(SweepRow.from_dict(completed[design.name]))
                report.resumed.append(design.name)
                manifest.design_points_resumed.append(design.name)
                continue
            if base is None:
                # Lazy: a fully resumed campaign never re-runs the
                # baseline.  A baseline failure is fatal by design.
                base = runner.run_suite(self.baseline)
            suite = runner.run_suite(
                design,
                isolate_faults=True,
                retry_policy=retry_policy,
                fail_fast=True,
            )
            self._assemble(
                design, suite, base, runner, retry_policy, progress, report,
                manifest,
            )

    def _run_parallel(
        self, runner, retry_policy, completed, progress, report, manifest,
        jobs: int, task_timeout_s: Optional[float], max_task_attempts: int,
    ) -> None:
        """Fan (design point x game) over a self-healing process pool.

        The parent renders (or loads) every trace once, persists them
        into a checkpoint store the workers read, and consumes results
        strictly in grid-and-games order, so rows, failures, journal
        entries and manifest lists come out exactly as the serial walk
        produces them.  ``fail_fast`` is emulated at assembly: only the
        first failing game of a design point (in games order) is kept,
        matching the serial early exit.

        Each design point is assembled — and its row journaled — as
        soon as its own tasks finish, while later tasks are still
        running: a campaign killed (or a pool broken beyond repair)
        mid-run keeps every completed row on disk.  Worker death and
        deadline misses are absorbed by :class:`_TaskPool`; a task that
        exhausts its attempts becomes a :class:`FailureRecord` exactly
        like an in-process crash would.

        The manifest's ``phase_seconds`` records where the wall time
        went — ``render`` (pass-1 trace preparation and worker-cache
        seeding), ``pool_startup`` (executor creation and task
        submission) and ``replay`` (everything after, dominated by the
        worker replays) — so a parallel campaign slower than its serial
        twin can be diagnosed from the archived manifest alone.  On a
        single-CPU host the replay phase is expected to show little or
        no scaling: the workers contend for the one core and the
        parent pays pool overhead on top.
        """
        pending = [
            design for design in self.design_points()
            if design.name not in completed
        ]
        base: Optional[SuiteResult] = None
        pool: Optional[_TaskPool] = None
        temp_dir: Optional[str] = None
        seeded: List[Tuple[str, str]] = []
        phase_start = time.monotonic()  # replint: disable=wall-clock -- campaign phase attribution for the manifest, never a simulated quantity

        def stamp(phase: str) -> None:
            nonlocal phase_start
            now = time.monotonic()  # replint: disable=wall-clock -- campaign phase attribution for the manifest, never a simulated quantity
            manifest.phase_seconds[phase] = now - phase_start
            phase_start = now

        # A runner configured for "overlap" degrades to "streaming" in
        # workers: each task already runs in its own process, so nesting
        # a render child under it buys no further overlap.
        stream_driver = "batch" if runner.stream == "batch" else "streaming"
        try:
            if pending:
                store = runner.checkpoint_store
                if store is None:
                    temp_dir = tempfile.mkdtemp(prefix="repro-sweep-traces-")
                    store = TraceCheckpointStore(temp_dir)
                store_dir = str(store.directory)
                if stream_driver == "batch":
                    keys = runner.prepare_traces(store)
                    for alias, key in keys.items():
                        cache_key = (store_dir, key)
                        _WORKER_TRACES[cache_key] = runner.trace_for(alias)
                        seeded.append(cache_key)
                else:
                    # Streaming: the parent never materializes a trace;
                    # workers render (or chunk-load) their own tiles,
                    # keyed so they share one tile-granular cache.
                    keys = {
                        alias: trace_key(runner.config, GAMES[alias].recipe)
                        for alias in runner.games
                    }
                stamp("render")
                replayer = runner.replayer
                config = runner.config
                params = replayer.energy_model.params
                budget = replayer.budget
                engine = replayer.engine
                pool = _TaskPool(
                    jobs, task_timeout_s, max_task_attempts,
                    faults.active_plan(),
                )
                for alias in runner.games:
                    pool.submit(
                        (_BASELINE_TASK, alias),
                        (store_dir, keys[alias], config, self.baseline,
                         params, budget, engine, self.baseline.name, alias,
                         retry_policy, False, stream_driver),
                    )
                for design in pending:
                    for alias in runner.games:
                        pool.submit(
                            (design.name, alias),
                            (store_dir, keys[alias], config, design,
                             params, budget, engine, design.name, alias,
                             retry_policy, True, stream_driver),
                        )
                stamp("pool_startup")
                # Baseline first, in games order: the first failing
                # game's exception propagates fatally, as serially —
                # including a worker crash that outlived its retries.
                base = SuiteResult(design_point=self.baseline.name)
                for alias in runner.games:
                    run, _ = pool.result((_BASELINE_TASK, alias))
                    base.per_game[alias] = run
            for design in self.design_points():
                manifest.design_points_attempted.append(design.name)
                if design.name in completed:
                    report.rows.append(
                        SweepRow.from_dict(completed[design.name])
                    )
                    report.resumed.append(design.name)
                    manifest.design_points_resumed.append(design.name)
                    continue
                suite = SuiteResult(design_point=design.name)
                for alias in runner.games:
                    try:
                        run, failure = pool.result((design.name, alias))
                    except (WorkerCrashError, TaskTimeoutError) as error:
                        failure = FailureRecord.of(
                            error, design.name, alias,
                            attempts=pool.attempts((design.name, alias)),
                        )
                    if failure is not None:
                        suite.failures.append(failure)
                        break  # fail_fast: keep only the first
                    suite.per_game[alias] = run
                self._assemble(
                    design, suite, base, runner, retry_policy, progress,
                    report, manifest,
                )
            if pending:
                stamp("replay")
        finally:
            if pool is not None:
                pool.close()
            for cache_key in seeded:
                _WORKER_TRACES.pop(cache_key, None)
            if temp_dir is not None:
                shutil.rmtree(temp_dir, ignore_errors=True)

    def _assemble(
        self, design, suite, base, runner, retry_policy, progress, report,
        manifest,
    ) -> None:
        """Turn one design point's suite result into a row or failures."""
        if suite.failures:
            report.failures.extend(suite.failures)
            manifest.design_points_failed.append(design.name)
            return
        row, failure = run_guarded(
            lambda: self._row(design, suite, base, runner.games),
            design_point=design.name,
            policy=retry_policy,
        )
        if failure is not None:
            report.failures.append(failure)
            manifest.design_points_failed.append(design.name)
            return
        report.rows.append(row)
        manifest.design_points_succeeded.append(design.name)
        if progress is not None:
            progress.record(design.name, row.as_dict())

    @staticmethod
    def _row(
        design: DTexLConfig,
        suite: SuiteResult,
        base: SuiteResult,
        games: Iterable[str],
    ) -> SweepRow:
        imbalances = [
            per_tile_imbalance(suite.per_game[g].per_tile_quad_counts)
            for g in games
        ]
        energy = sum(r.energy.total_mj for r in suite.per_game.values())
        return SweepRow(
            grouping=design.grouping,
            assignment=design.assignment,
            order=design.order,
            decoupled=design.decoupled,
            l2_accesses=suite.total_l2_accesses,
            l2_normalized=(
                suite.total_l2_accesses / base.total_l2_accesses
                if base.total_l2_accesses else 0.0
            ),
            speedup=(
                suite.mean_speedup_vs(base) if suite.per_game else 0.0
            ),
            quad_imbalance=(
                sum(imbalances) / len(imbalances) if imbalances else 0.0
            ),
            energy_mj=energy,
            energy_decrease_pct=suite.mean_energy_decrease_vs(base),
        )


def rows_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as CSV (header + one line per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=ROW_FIELDS)
    writer.writeheader()
    for row in rows:
        writer.writerow(row.as_dict())
    return buffer.getvalue()


def failures_to_csv(failures: Sequence[FailureRecord]) -> str:
    """Serialize failure records as CSV, mirroring :func:`rows_to_csv`."""
    fields = ["design_point", "game", "error_type", "message", "attempts"]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for failure in failures:
        writer.writerow(failure.as_dict())
    return buffer.getvalue()


def best_row(
    rows: Sequence[SweepRow], objective: str = "speedup"
) -> Optional[SweepRow]:
    """The Pareto-naive winner by a single objective column."""
    if not rows:
        return None
    if objective in ("l2_accesses", "l2_normalized", "quad_imbalance",
                     "energy_mj"):
        return min(rows, key=lambda r: getattr(r, objective))
    return max(rows, key=lambda r: getattr(r, objective))
