"""The paper's metrics: pure statistics shared across layers.

The imbalance metric used throughout (Figures 1, 12, 14, 15) is the
*normalized mean deviation*: the mean absolute deviation of the per-SC
values for one tile, divided by their mean.  Per-frame numbers average
that over all tiles that had any work.

These helpers are pure math over sequences, so they live at the bottom
of the layer stack (beside :mod:`repro.errors`) where both the
simulator (``sim.experiment`` averages suite ratios, ``sim.sweep``
scores rows) and the reporting layer may import them; ``sim`` importing
``repro.analysis`` is a forbidden edge under ``archcontract.toml``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.errors import AnalysisError


def mean_deviation(values: Sequence[float]) -> float:
    """Normalized mean deviation: mean(|v - mean|) / mean.

    Returns 0.0 when the values are empty or their mean is zero (an
    idle tile has no imbalance).
    """
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 0.0
    return sum(abs(v - mean) for v in values) / len(values) / mean


def per_tile_imbalance(per_tile_values: Iterable[Sequence[float]]) -> float:
    """Frame-level imbalance: mean of per-tile normalized mean deviations.

    ``per_tile_values`` yields, for each tile, the per-SC values (quad
    counts for Figs 1/12/15, execution cycles for Fig 14).  Tiles with no
    work are skipped, as an idle tile says nothing about balance.
    """
    deviations = [
        mean_deviation(values)
        for values in per_tile_values
        if any(values)
    ]
    if not deviations:
        return 0.0
    return sum(deviations) / len(deviations)


def per_tile_imbalance_distribution(
    per_tile_values: Iterable[Sequence[float]],
) -> List[float]:
    """Per-tile normalized mean deviations, in percent (Fig 14/15 violins)."""
    return [
        mean_deviation(values) * 100.0
        for values in per_tile_values
        if any(values)
    ]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used to average ratios across the suite)."""
    if not values:
        raise AnalysisError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_decrease(baseline: float, value: float) -> float:
    """Percent decrease of ``value`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline * 100.0


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Execution-time speedup of ``cycles`` over ``baseline_cycles``."""
    if cycles == 0:
        return float("inf")
    return baseline_cycles / cycles


def violin_summary(samples: Sequence[float]) -> dict:
    """Min / max / mean / median summary of a distribution (violin plots)."""
    if not samples:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0, "n": 0}
    ordered = sorted(samples)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "median": median,
        "n": n,
    }
