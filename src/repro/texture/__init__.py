"""Texture subsystem: mipmapped textures, addressing, and samplers.

Textures are the dominant source of memory traffic in the modelled GPU
("texture memory accesses make up the majority of the traffic to the
memory hierarchy").  This package maps texture samples to the exact set
of 64-byte cache lines they touch, which is what drives the L1/L2 cache
simulation.
"""

from repro.texture.texture import Texture, TextureAllocator
from repro.texture.addressing import morton_encode, morton_decode
from repro.texture.sampler import FilterMode, Sampler, SampleFootprint

__all__ = [
    "Texture",
    "TextureAllocator",
    "morton_encode",
    "morton_decode",
    "FilterMode",
    "Sampler",
    "SampleFootprint",
]
