"""Texel addressing: Morton (Z-order) tiled layout.

Mobile GPUs store textures in a tiled/swizzled layout so that spatially
adjacent texels share cache lines.  We use Morton order: with 4-byte
RGBA8 texels and 64-byte lines, one cache line holds a 4x4 texel block.
This 2D-block layout is what makes "adjacent quads frequently access the
same texels or texels lying in the same cache line" (paper §II-B) true
at the cache level.
"""

from __future__ import annotations

from repro.errors import WorkloadError

_B = [0x5555555555555555, 0x3333333333333333, 0x0F0F0F0F0F0F0F0F,
      0x00FF00FF00FF00FF, 0x0000FFFF0000FFFF]
_S = [1, 2, 4, 8, 16]


def _part1by1(n: int) -> int:
    """Spread the low 32 bits of n so there is a 0 bit between each."""
    n &= 0xFFFFFFFF
    n = (n | (n << _S[4])) & _B[4]
    n = (n | (n << _S[3])) & _B[3]
    n = (n | (n << _S[2])) & _B[2]
    n = (n | (n << _S[1])) & _B[1]
    n = (n | (n << _S[0])) & _B[0]
    return n


def _compact1by1(n: int) -> int:
    """Inverse of :func:`_part1by1`."""
    n &= _B[0]
    n = (n ^ (n >> _S[0])) & _B[1]
    n = (n ^ (n >> _S[1])) & _B[2]
    n = (n ^ (n >> _S[2])) & _B[3]
    n = (n ^ (n >> _S[3])) & _B[4]
    n = (n ^ (n >> _S[4])) & 0xFFFFFFFF
    return n


def morton_encode(x: int, y: int) -> int:
    """Interleave the bits of (x, y) into a Morton code."""
    if x < 0 or y < 0:
        raise WorkloadError("morton coordinates must be non-negative")
    return _part1by1(x) | (_part1by1(y) << 1)


def morton_decode(code: int) -> tuple:
    """Recover (x, y) from a Morton code."""
    if code < 0:
        raise WorkloadError("morton code must be non-negative")
    return _compact1by1(code), _compact1by1(code >> 1)


def _build_morton_table():
    import numpy as np

    n = np.arange(1 << 16, dtype=np.uint64)
    for mask, shift in zip(reversed(_B), reversed(_S)):
        n = (n | (n << np.uint64(shift))) & np.uint64(mask)
    return n


#: 16-bit bit-spread lookup table (``table[n] == _part1by1(n)``): 512 KiB
#: built once at import, turning Morton encoding of coordinates below
#: 2**16 into two gathers, a shift and an or.  Built eagerly so the
#: timing-critical render/replay paths never mutate module state.
_MORTON_TABLE = _build_morton_table()


def morton_table():
    """The precomputed 16-bit bit-spread table (read-only)."""
    return _MORTON_TABLE


def morton_encode_array(x, y):
    """Vectorized :func:`morton_encode` over numpy integer arrays."""
    import numpy as np

    x = np.asarray(x)
    y = np.asarray(y)
    if x.size and y.size and (
        int(x.min()) >= 0 and int(y.min()) >= 0
        and int(x.max()) < (1 << 16) and int(y.max()) < (1 << 16)
    ):
        table = morton_table()
        return table[x] | (table[y] << np.uint64(1))

    def part(n):
        n = n.astype(np.uint64)
        for mask, shift in zip(reversed(_B), reversed(_S)):
            n = (n | (n << np.uint64(shift))) & np.uint64(mask)
        return n

    return part(x) | (part(y) << np.uint64(1))
