"""Texture samplers: nearest, bilinear, trilinear and anisotropic.

The sampler's job in this simulator is to turn one texture sample
(a UV coordinate plus a level-of-detail) into the set of cache lines
it touches — the :class:`SampleFootprint`.  Filter choice changes how
wide that footprint is and therefore how much reuse neighbouring quads
see ("more so in trilinear and anisotropic filtering than in bilinear",
paper §II-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Tuple

from repro.texture.texture import Texture
from repro.errors import ConfigError


class FilterMode(Enum):
    """Supported texture filtering modes."""

    NEAREST = "nearest"
    BILINEAR = "bilinear"
    TRILINEAR = "trilinear"
    ANISOTROPIC = "anisotropic"


@dataclass(frozen=True)
class SampleFootprint:
    """The memory touched by one texture sample."""

    texture_id: int
    lines: Tuple[int, ...]
    texel_count: int

    @property
    def line_count(self) -> int:
        return len(self.lines)


def compute_lod(
    du_dx: float, dv_dx: float, du_dy: float, dv_dy: float,
    width: int, height: int,
) -> float:
    """Mip level of detail from UV screen-space derivatives.

    Standard GL formula: log2 of the longest screen-space texel stride.
    """
    sx = math.hypot(du_dx * width, dv_dx * height)
    sy = math.hypot(du_dy * width, dv_dy * height)
    rho = max(sx, sy, 1e-12)
    return max(0.0, math.log2(rho))


class Sampler:
    """Computes sample footprints (and procedural colors) for a texture."""

    def __init__(
        self,
        filter_mode: FilterMode = FilterMode.BILINEAR,
        max_anisotropy: int = 4,
    ):
        if max_anisotropy < 1:
            raise ConfigError("max_anisotropy must be >= 1")
        self.filter_mode = filter_mode
        self.max_anisotropy = max_anisotropy

    # -- footprint construction ------------------------------------------------

    def _bilinear_texels(
        self, texture: Texture, u: float, v: float, lod: int
    ) -> List[Tuple[int, int]]:
        """The 2x2 texel neighbourhood of (u, v) at integer ``lod``."""
        mip = texture.level(lod)
        # Texel centres are at half-integer coordinates.
        tx = u * mip.width - 0.5
        ty = v * mip.height - 0.5
        x0, y0 = math.floor(tx), math.floor(ty)
        return [
            texture.wrap(x0 + dx, y0 + dy, lod)
            for dy in (0, 1) for dx in (0, 1)
        ]

    def footprint(
        self, texture: Texture, u: float, v: float, lod: float = 0.0
    ) -> SampleFootprint:
        """Cache lines touched by sampling ``texture`` at (u, v, lod)."""
        texels: List[Tuple[int, int, int]] = []  # (x, y, level)
        lod = min(max(lod, 0.0), float(texture.max_lod))
        base_level = int(lod)

        if self.filter_mode is FilterMode.NEAREST:
            mip = texture.level(base_level)
            x, y = texture.wrap(
                int(u * mip.width), int(v * mip.height), base_level
            )
            texels.append((x, y, base_level))
        elif self.filter_mode is FilterMode.BILINEAR:
            for x, y in self._bilinear_texels(texture, u, v, base_level):
                texels.append((x, y, base_level))
        elif self.filter_mode is FilterMode.TRILINEAR:
            levels = [base_level]
            if lod > base_level and base_level < texture.max_lod:
                levels.append(base_level + 1)
            for level in levels:
                for x, y in self._bilinear_texels(texture, u, v, level):
                    texels.append((x, y, level))
        elif self.filter_mode is FilterMode.ANISOTROPIC:
            # N bilinear probes spread along u at a sharper mip level.
            probes = self.max_anisotropy
            level = max(0, base_level - int(math.log2(probes)))
            mip = texture.level(level)
            step = probes / (2.0 * mip.width)
            for i in range(probes):
                offset = (i - (probes - 1) / 2.0) * step
                for x, y in self._bilinear_texels(
                    texture, u + offset, v, level
                ):
                    texels.append((x, y, level))
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigError(f"unknown filter mode {self.filter_mode}")

        lines: List[int] = []
        seen = set()
        for x, y, level in texels:
            line = texture.texel_line(x, y, level)
            if line not in seen:
                seen.add(line)
                lines.append(line)
        return SampleFootprint(
            texture_id=texture.texture_id,
            lines=tuple(lines),
            texel_count=len(texels),
        )

    def bilinear_lines_batch(self, texture: Texture, u, v, level):
        """Vectorized bilinear footprints: cache lines of many samples.

        ``u``, ``v`` are float arrays of any shape and ``level`` a
        broadcastable pre-clamped integer mip level (per-quad levels
        can stay a column vector — per-level constants are then
        gathered once per quad rather than once per texel); returns an
        int64 array of shape ``broadcast(u, level).shape + (4,)`` whose
        last axis holds the 2x2 neighbourhood's cache lines in the same
        order as :meth:`footprint` visits them.  Only valid for
        BILINEAR mode.
        """
        import numpy as np

        if self.filter_mode is not FilterMode.BILINEAR:
            raise ConfigError("batch path only supports bilinear filtering")
        tables = texture._level_tables()
        level = np.asarray(level, dtype=np.int64)
        w = tables["wmask"][level] + 1
        h = tables["hmask"][level] + 1
        tx = np.asarray(u) * w - 0.5
        ty = np.asarray(v) * h - 0.5
        x0 = np.floor(tx).astype(np.int64)
        y0 = np.floor(ty).astype(np.int64)
        # Neighbour order matches the scalar path: (0,0),(1,0),(0,1),(1,1).
        nx = np.stack([x0, x0 + 1, x0, x0 + 1], axis=-1)
        ny = np.stack([y0, y0, y0 + 1, y0 + 1], axis=-1)
        return texture.texel_lines_array(nx, ny, level[..., None])

    def quad_footprints_batch(self, texture: Texture, lane_u, lane_v,
                              texture_samples: int):
        """Batched per-quad mip LOD + cache-line rows for many quads.

        ``lane_u``/``lane_v`` are ``(Q, 4)`` arrays of the four quad
        lanes' perspective-correct UVs in footprint order
        ``(0,0), (1,0), (0,1), (1,1)``.  Returns ``(lods, lines)``:
        the raw (unclamped) per-quad LOD array and a ``(Q, N)`` int64
        array of cache lines flattened in scalar visit order —
        lane-major, then sample, then bilinear neighbour — still
        containing duplicates, exactly as the scalar path visits them
        before its first-visit dedup.  Only valid for BILINEAR mode.
        """
        import numpy as np

        u00 = lane_u[:, 0]
        v00 = lane_v[:, 0]
        sx = np.hypot(
            (lane_u[:, 1] - u00) * texture.width,
            (lane_v[:, 1] - v00) * texture.height,
        )
        sy = np.hypot(
            (lane_u[:, 2] - u00) * texture.width,
            (lane_v[:, 2] - v00) * texture.height,
        )
        rho = np.maximum(np.maximum(sx, sy), 1e-12)
        lods = np.maximum(0.0, np.log2(rho))
        # The *sampled* level clamps to the mip chain; the reported LOD
        # stays raw, matching the scalar path.
        levels = np.minimum(lods, float(texture.max_lod)).astype(np.int64)
        lane_levels = levels[:, None]

        per_sample = []
        for sample in range(texture_samples):
            scale = float(sample + 1)
            per_sample.append(
                self.bilinear_lines_batch(
                    texture, lane_u * scale, lane_v * scale, lane_levels
                )
            )
        # lines[quad, lane, sample, neighbour]; flattening row-major is
        # exactly the scalar visit order.
        lines = np.stack(per_sample, axis=2)
        return lods, lines.reshape(len(lods), -1)

    # -- procedural filtering ----------------------------------------------------

    def sample_color(
        self, texture: Texture, u: float, v: float, lod: float = 0.0
    ) -> Tuple[float, float, float]:
        """Filtered procedural color in [0, 1]^3 (for image output only)."""
        level = int(min(max(lod, 0.0), float(texture.max_lod)))
        mip = texture.level(level)
        tx = u * mip.width - 0.5
        ty = v * mip.height - 0.5
        x0, y0 = math.floor(tx), math.floor(ty)
        fx, fy = tx - x0, ty - y0
        acc = [0.0, 0.0, 0.0]
        for dy, wy in ((0, 1.0 - fy), (1, fy)):
            for dx, wx in ((0, 1.0 - fx), (1, fx)):
                x, y = texture.wrap(x0 + dx, y0 + dy, level)
                r, g, b = texture.texel_value(x, y, level)
                w = wx * wy
                acc[0] += r * w
                acc[1] += g * w
                acc[2] += b * w
        return (acc[0] / 255.0, acc[1] / 255.0, acc[2] / 255.0)
