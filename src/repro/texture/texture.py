"""Mipmapped textures and their memory layout.

A :class:`Texture` is a power-of-two RGBA8 image with a full mip chain.
Texel *values* are procedural (a deterministic hash of the texel
coordinates) because only the *addresses* matter for the cache study;
the values let examples still produce images.  The address layout is
Morton-tiled per mip level (see :mod:`repro.texture.addressing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.texture.addressing import morton_encode
from repro.errors import WorkloadError

TEXEL_BYTES = 4  # RGBA8
LINE_BYTES = 64
#: Texels per cache line (a 4x4 Morton block with 4-byte texels).
TEXELS_PER_LINE = LINE_BYTES // TEXEL_BYTES


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class MipLevel:
    """Geometry of one mip level within the texture's address range."""

    level: int
    width: int
    height: int
    byte_offset: int

    @property
    def byte_size(self) -> int:
        return self.width * self.height * TEXEL_BYTES


class Texture:
    """A mipmapped, Morton-tiled, procedurally valued texture."""

    def __init__(
        self,
        texture_id: int,
        width: int,
        height: int,
        base_address: int = 0,
        seed: int = 0,
    ):
        if not (_is_pow2(width) and _is_pow2(height)):
            raise WorkloadError("texture dimensions must be powers of two")
        self.texture_id = texture_id
        self.width = width
        self.height = height
        self.base_address = base_address
        self.seed = seed
        self.mip_levels: List[MipLevel] = self._build_mip_chain()

    def _build_mip_chain(self) -> List[MipLevel]:
        levels: List[MipLevel] = []
        w, h, offset, level = self.width, self.height, 0, 0
        while True:
            levels.append(MipLevel(level, w, h, offset))
            offset += w * h * TEXEL_BYTES
            if w == 1 and h == 1:
                break
            w, h, level = max(1, w // 2), max(1, h // 2), level + 1
        return levels

    # -- geometry -------------------------------------------------------------

    @property
    def num_mip_levels(self) -> int:
        return len(self.mip_levels)

    @property
    def max_lod(self) -> int:
        return self.num_mip_levels - 1

    @property
    def total_bytes(self) -> int:
        """Footprint of the full mip chain in memory."""
        last = self.mip_levels[-1]
        return last.byte_offset + last.byte_size

    def level(self, lod: int) -> MipLevel:
        """The mip level for an integer LOD, clamped to the chain."""
        return self.mip_levels[min(max(lod, 0), self.max_lod)]

    # -- addressing -----------------------------------------------------------

    def wrap(self, x: int, y: int, lod: int) -> Tuple[int, int]:
        """Repeat-mode wrapping of integer texel coordinates at ``lod``."""
        mip = self.level(lod)
        return x % mip.width, y % mip.height

    def texel_address(self, x: int, y: int, lod: int = 0) -> int:
        """Byte address of texel (x, y) at mip ``lod`` (repeat wrapping)."""
        mip = self.level(lod)
        x, y = x % mip.width, y % mip.height
        # Morton order over the larger dimension; rectangular textures
        # fold the extra bits of the long axis beyond the square part.
        if mip.width == mip.height:
            index = morton_encode(x, y)
        elif mip.width > mip.height:
            blocks = x // mip.height
            index = blocks * mip.height * mip.height + morton_encode(
                x % mip.height, y
            )
        else:
            blocks = y // mip.width
            index = blocks * mip.width * mip.width + morton_encode(
                x, y % mip.width
            )
        return self.base_address + mip.byte_offset + index * TEXEL_BYTES

    def texel_line(self, x: int, y: int, lod: int = 0) -> int:
        """Cache-line number of texel (x, y) at mip ``lod``."""
        return self.texel_address(x, y, lod) // LINE_BYTES

    def _level_tables(self):
        """Cached per-level arrays for :meth:`texel_lines_array`.

        Every dimension is a power of two, so wrapping and block folds
        reduce to masks and shifts; the per-level byte offset is folded
        into ``base_off`` so one gather covers it.
        """
        tables = getattr(self, "_level_tables_cache", None)
        if tables is None:
            import numpy as np

            w = np.array([m.width for m in self.mip_levels], dtype=np.int64)
            h = np.array(
                [m.height for m in self.mip_levels], dtype=np.int64
            )
            sq = np.minimum(w, h)
            tables = {
                "wmask": w - 1,
                "hmask": h - 1,
                "sqmask": sq - 1,
                "sqbits": np.array(
                    [int(s).bit_length() - 1 for s in sq], dtype=np.int64
                ),
                "base_off": self.base_address + np.array(
                    [m.byte_offset for m in self.mip_levels], dtype=np.int64
                ),
            }
            tables["sq2bits"] = tables["sqbits"] * 2
            self._level_tables_cache = tables
        return tables

    def texel_lines_array(self, x, y, level) -> "object":
        """Vectorized :meth:`texel_line` over numpy arrays.

        ``x``, ``y`` and ``level`` are equal-shaped integer arrays;
        coordinates wrap (repeat mode) and levels must be pre-clamped to
        ``[0, max_lod]``.  Returns an int64 array of cache-line numbers
        identical to the scalar path.
        """
        import numpy as np

        from repro.texture.addressing import morton_table

        tables = self._level_tables()
        level = np.asarray(level, dtype=np.int64)
        # Power-of-two wrap: two's-complement AND with (size - 1) is
        # exactly the non-negative Python ``%``.
        x = np.asarray(x, dtype=np.int64) & tables["wmask"][level]
        y = np.asarray(y, dtype=np.int64) & tables["hmask"][level]
        # Fold the long axis into square Morton blocks (as in
        # texel_address).  The short axis' fold shift is a no-op (its
        # coordinate is already below the square size), so no per-axis
        # selection is needed.
        sqbits = tables["sqbits"][level]
        blocks = ((x >> sqbits) + (y >> sqbits)) << tables["sq2bits"][level]
        sqmask = tables["sqmask"][level]
        table = morton_table()
        code = (table[x & sqmask] | (table[y & sqmask] << np.uint64(1)))
        index = blocks + code.astype(np.int64)
        # address = base + mip offset + index * TEXEL_BYTES, then // 64;
        # all terms non-negative, so shifts are exact.
        return (tables["base_off"][level] + (index << 2)) >> 6

    # -- procedural values ----------------------------------------------------

    def texel_value(self, x: int, y: int, lod: int = 0) -> Tuple[int, int, int]:
        """Deterministic RGB value of a texel (for image output)."""
        mip = self.level(lod)
        x, y = x % mip.width, y % mip.height
        h = (x * 374761393 + y * 668265263 + self.seed * 1442695040888963407
             + lod * 2246822519) & 0xFFFFFFFF
        h ^= h >> 13
        h = (h * 1274126177) & 0xFFFFFFFF
        return (h & 0xFF, (h >> 8) & 0xFF, (h >> 16) & 0xFF)


@dataclass
class TextureAllocator:
    """Assigns non-overlapping address ranges to textures.

    Texture memory starts above the vertex-buffer region so texture and
    vertex lines never alias in the shared L2.
    """

    next_address: int = 1 << 28
    alignment: int = 4096
    textures: Dict[int, Texture] = field(default_factory=dict)

    def create(self, width: int, height: int, seed: int = 0) -> Texture:
        """Allocate and register a new texture."""
        texture_id = len(self.textures)
        texture = Texture(
            texture_id, width, height,
            base_address=self.next_address, seed=seed,
        )
        size = texture.total_bytes
        padded = -(-size // self.alignment) * self.alignment
        self.next_address += padded
        self.textures[texture_id] = texture
        return texture

    def get(self, texture_id: int) -> Texture:
        return self.textures[texture_id]

    @property
    def total_footprint_bytes(self) -> int:
        """Aggregate texture footprint (Table I's "Texture Footprint")."""
        return sum(t.total_bytes for t in self.textures.values())
