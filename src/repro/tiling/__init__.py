"""The Tiling Engine: Polygon List Builder, Parameter Buffer, Tile Fetcher.

"The goal of the Polygon List Builder is to produce a list, for each tile
of the screen, containing all the primitives that overlap it.  This data
is arranged in a structure known as the Parameter Buffer."  The Tile
Fetcher then replays those lists in a pluggable tile order.
"""

from repro.tiling.parameter_buffer import ParameterBuffer
from repro.tiling.polygon_list_builder import PolygonListBuilder
from repro.tiling.tile_fetcher import FetchedTile, TileFetcher

__all__ = [
    "ParameterBuffer",
    "PolygonListBuilder",
    "TileFetcher",
    "FetchedTile",
]
