"""The Parameter Buffer.

Primitive attributes are stored exactly once; the per-tile lists hold
only primitive IDs ("since attributes occupy significant space and
primitives may overlap many tiles").  The buffer lives in main memory
and is accessed through the Tile Cache, so this module also assigns
addresses: an attribute region (one fixed-size record per primitive)
followed by the per-tile ID lists, built and consumed within one frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.tile_order import TileCoord
from repro.raster.setup import ScreenPrimitive

#: Bytes per primitive attribute record (3 vertices x 4 attributes x 4 B,
#: rounded to the cache-line-friendly 64).
ATTRIBUTE_RECORD_BYTES = 64

#: Bytes per primitive-ID entry in a tile list.
ID_ENTRY_BYTES = 4

#: Parameter Buffer base; above the texture region so lines never alias.
PARAMETER_BUFFER_BASE = 1 << 34


@dataclass
class ParameterBuffer:
    """Per-frame primitive store plus per-tile primitive-ID lists."""

    primitives: Dict[int, ScreenPrimitive] = field(default_factory=dict)
    tile_lists: Dict[TileCoord, List[int]] = field(default_factory=dict)
    base_address: int = PARAMETER_BUFFER_BASE

    def add_primitive(self, primitive: ScreenPrimitive) -> None:
        """Store a primitive's attributes (once, keyed by primitive id).

        Clipping can split one logical primitive into several triangles
        sharing an id; each triangle is stored under a sub-key so both
        are replayable while the *attribute* accounting stays per-id.
        """
        key = primitive.primitive_id
        sub = 0
        while (key, sub) in self.primitives:
            sub += 1
        self.primitives[(key, sub)] = primitive

    def append_to_tile(self, tile: TileCoord, primitive_id: int, sub: int) -> None:
        """Append one primitive reference to a tile's list, in program order."""
        self.tile_lists.setdefault(tile, []).append((primitive_id, sub))

    # -- queries -------------------------------------------------------------

    def primitives_for_tile(self, tile: TileCoord) -> List[ScreenPrimitive]:
        """The tile's primitives in program order (empty if none)."""
        return [
            self.primitives[key] for key in self.tile_lists.get(tile, [])
        ]

    def tile_primitive_count(self, tile: TileCoord) -> int:
        return len(self.tile_lists.get(tile, ()))

    @property
    def num_unique_primitives(self) -> int:
        return len({key[0] for key in self.primitives})

    @property
    def total_list_entries(self) -> int:
        return sum(len(lst) for lst in self.tile_lists.values())

    # -- memory layout ---------------------------------------------------------

    def attribute_address(self, primitive_id: int) -> int:
        """Byte address of a primitive's attribute record."""
        return self.base_address + primitive_id * ATTRIBUTE_RECORD_BYTES

    def list_entry_address(self, tile: TileCoord, index: int) -> int:
        """Byte address of the index-th entry of a tile's ID list.

        Tile lists are laid out after the attribute region, one
        contiguous run per tile (row-major by tile coordinate), sized
        by the actual list length.
        """
        if not hasattr(self, "_list_offsets"):
            self._build_list_offsets()
        return self._list_offsets[tile] + index * ID_ENTRY_BYTES

    def _build_list_offsets(self) -> None:
        attr_end = (
            self.base_address
            + (max((k[0] for k in self.primitives), default=0) + 1)
            * ATTRIBUTE_RECORD_BYTES
        )
        offsets: Dict[TileCoord, int] = {}
        cursor = attr_end
        for tile in sorted(self.tile_lists):
            offsets[tile] = cursor
            cursor += len(self.tile_lists[tile]) * ID_ENTRY_BYTES
        self._list_offsets = offsets

    def footprint_bytes(self) -> int:
        """Total Parameter Buffer size for the frame."""
        return (
            self.num_unique_primitives * ATTRIBUTE_RECORD_BYTES
            + self.total_list_entries * ID_ENTRY_BYTES
        )
