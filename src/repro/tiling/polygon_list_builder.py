"""The Polygon List Builder: bins primitives into per-tile lists.

Takes each screen-space primitive in program order and appends its ID to
the list of every tile it overlaps.  Overlap uses an exact conservative
triangle/rectangle test (bounding box + edge half-planes), so thin
diagonal triangles do not pollute tiles they never touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.config import GPUConfig
from repro.raster.setup import ScreenBatch, ScreenPrimitive
from repro.tiling.parameter_buffer import (
    ATTRIBUTE_RECORD_BYTES,
    ID_ENTRY_BYTES,
    PARAMETER_BUFFER_BASE,
    ParameterBuffer,
)


@dataclass
class TileBins:
    """Array-backed Parameter Buffer: per-tile row lists + addresses.

    ``tile_rows`` maps tile coordinates to the indices (into the frame's
    :class:`~repro.raster.setup.ScreenBatch`) of the primitives binned
    to that tile, in stream order — the same lists the scalar
    :class:`~repro.tiling.parameter_buffer.ParameterBuffer` keeps as
    ``(pid, sub)`` references.  ``list_offsets`` replicates its address
    layout: attribute records first (sized by the highest primitive id
    of the *whole frame*), then one contiguous ID-list run per tile in
    sorted tile-coordinate order.
    """

    max_pid: int = 0
    base_address: int = PARAMETER_BUFFER_BASE
    tile_rows: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict
    )
    list_offsets: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def finalize(self) -> None:
        """Assign each tile's ID-list offset, as the scalar buffer does."""
        attr_end = (
            self.base_address + (self.max_pid + 1) * ATTRIBUTE_RECORD_BYTES
        )
        cursor = attr_end
        for tile in sorted(self.tile_rows):
            self.list_offsets[tile] = cursor
            cursor += len(self.tile_rows[tile]) * ID_ENTRY_BYTES

    def rows_for_tile(self, tile: Tuple[int, int]) -> np.ndarray:
        return self.tile_rows.get(tile, _NO_ROWS)


_NO_ROWS = np.zeros(0, dtype=np.int64)


class PolygonListBuilder:
    """Builds the Parameter Buffer for one frame."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.primitives_binned = 0
        self.bin_entries = 0

    def build(
        self, primitives: Iterable[ScreenPrimitive]
    ) -> ParameterBuffer:
        """Bin all primitives (in program order) into a Parameter Buffer."""
        buffer = ParameterBuffer()
        sub_counter = {}
        for screen_primitive in primitives:
            pid = screen_primitive.primitive_id
            sub = sub_counter.get(pid, 0)
            sub_counter[pid] = sub + 1
            buffer.primitives[(pid, sub)] = screen_primitive
            self.primitives_binned += 1
            for tile in self.overlapped_tiles(screen_primitive):
                buffer.append_to_tile(tile, pid, sub)
                self.bin_entries += 1
        return buffer

    def build_fast(self, batch: ScreenBatch) -> "TileBins":
        """Vectorized :meth:`build` over a whole-frame ScreenBatch.

        Produces the same per-tile primitive lists (as row indices into
        ``batch``, in stream order) and the same Parameter Buffer
        address layout the scalar path derives, without materializing
        :class:`ScreenPrimitive` objects.
        """
        tile = self.config.tile_size
        n = len(batch)
        self.primitives_binned += n
        bins = TileBins(
            max_pid=int(batch.pid.max()) if n else 0,
        )
        if n == 0:
            bins.finalize()
            return bins

        vx, vy = batch.x, batch.y
        min_x = np.min(vx, axis=1)
        min_y = np.min(vy, axis=1)
        max_x = np.max(vx, axis=1)
        max_y = np.max(vy, axis=1)

        # int(coord) // tile with Python semantics: truncate toward
        # zero, then floor-divide.  Clamp in float first so huge
        # coordinates cannot overflow int64 (the clamp bound is far
        # beyond any tile index, so clamped rows land on the same
        # [0, tiles-1] tile as the scalar path).
        bound = float(2 ** 53)
        tx0 = np.clip(np.trunc(min_x), -bound, bound).astype(np.int64) // tile
        ty0 = np.clip(np.trunc(min_y), -bound, bound).astype(np.int64) // tile
        tx1 = np.clip(np.trunc(max_x), -bound, bound).astype(np.int64) // tile
        ty1 = np.clip(np.trunc(max_y), -bound, bound).astype(np.int64) // tile
        tx0 = np.maximum(tx0, 0)
        ty0 = np.maximum(ty0, 0)
        tx1 = np.minimum(tx1, self.config.tiles_x - 1)
        ty1 = np.minimum(ty1, self.config.tiles_y - 1)

        alive = ~(
            (max_x < 0) | (max_y < 0)
            | (min_x >= self.config.screen_width)
            | (min_y >= self.config.screen_height)
        )
        rows = np.nonzero(alive)[0]
        if len(rows) == 0:
            bins.finalize()
            return bins

        # Candidate (row, tile) pairs: each row expands to its clamped
        # tile rect, row-major (ty, tx) — the scalar loop's order.
        width_t = tx1[rows] - tx0[rows] + 1
        height_t = ty1[rows] - ty0[rows] + 1
        counts = width_t * height_t
        total = int(counts.sum())
        cand_row = np.repeat(rows, counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        local = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        wx = np.repeat(width_t, counts)
        cand_tx = np.repeat(tx0[rows], counts) + local % wx
        cand_ty = np.repeat(ty0[rows], counts) + local // wx

        overlap = self._overlap_mask(batch, cand_row, cand_tx, cand_ty)
        cand_row = cand_row[overlap]
        cand_tx = cand_tx[overlap]
        cand_ty = cand_ty[overlap]
        self.bin_entries += len(cand_row)
        if len(cand_row) == 0:
            # Every candidate failed the edge tests (thin triangles
            # whose bbox clips tiles their edges never enter).
            bins.finalize()
            return bins

        # Group by tile, preserving stream order within each tile.
        tile_key = cand_ty * self.config.tiles_x + cand_tx
        order = np.lexsort((cand_row, tile_key))
        tile_key = tile_key[order]
        cand_row = cand_row[order]
        cand_tx = cand_tx[order]
        cand_ty = cand_ty[order]
        boundaries = np.nonzero(np.diff(tile_key))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(tile_key)]))
        coords = zip(cand_tx[starts].tolist(), cand_ty[starts].tolist())
        for coord, start, end in zip(coords, starts.tolist(), ends.tolist()):
            bins.tile_rows[coord] = cand_row[start:end]
        bins.finalize()
        return bins

    def _overlap_mask(
        self,
        batch: ScreenBatch,
        cand_row: np.ndarray,
        cand_tx: np.ndarray,
        cand_ty: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ScreenPrimitive.overlaps_rect for candidate pairs.

        The bbox pre-check always passes for candidates drawn from the
        primitive's own clamped tile rect, so only the three edge
        half-plane tests remain: a tile is rejected when all four of
        its corners are strictly outside one edge.
        """
        tile = self.config.tile_size
        x0 = cand_tx.astype(np.float64) * tile
        y0 = cand_ty.astype(np.float64) * tile
        x1 = x0 + tile
        y1 = y0 + tile

        vx = batch.x[cand_row]
        vy = batch.y[cand_row]
        sign = np.where(batch.area2[cand_row] > 0, 1.0, -1.0)
        keep = np.ones(len(cand_row), dtype=bool)
        for i in range(3):
            j = (i + 1) % 3
            ax, ay = vx[:, i], vy[:, i]
            ex = vx[:, j] - ax
            ey = vy[:, j] - ay
            outside = (
                (sign * (ex * (y0 - ay) - ey * (x0 - ax)) < 0.0)
                & (sign * (ex * (y0 - ay) - ey * (x1 - ax)) < 0.0)
                & (sign * (ex * (y1 - ay) - ey * (x0 - ax)) < 0.0)
                & (sign * (ex * (y1 - ay) - ey * (x1 - ax)) < 0.0)
            )
            keep &= ~outside
        return keep

    def overlapped_tiles(
        self, primitive: ScreenPrimitive
    ) -> List[Tuple[int, int]]:
        """All tile coordinates the primitive overlaps, row-major."""
        tile = self.config.tile_size
        min_x, min_y, max_x, max_y = primitive.bbox()
        # Clamp the bbox to the screen before dividing into tiles.
        tx0 = max(0, int(min_x) // tile)
        ty0 = max(0, int(min_y) // tile)
        tx1 = min(self.config.tiles_x - 1, int(max_x) // tile)
        ty1 = min(self.config.tiles_y - 1, int(max_y) // tile)
        if max_x < 0 or max_y < 0:
            return []
        if min_x >= self.config.screen_width or min_y >= self.config.screen_height:
            return []
        out: List[Tuple[int, int]] = []
        for ty in range(ty0, ty1 + 1):
            for tx in range(tx0, tx1 + 1):
                x0, y0 = tx * tile, ty * tile
                if primitive.overlaps_rect(x0, y0, x0 + tile, y0 + tile):
                    out.append((tx, ty))
        return out
