"""The Polygon List Builder: bins primitives into per-tile lists.

Takes each screen-space primitive in program order and appends its ID to
the list of every tile it overlaps.  Overlap uses an exact conservative
triangle/rectangle test (bounding box + edge half-planes), so thin
diagonal triangles do not pollute tiles they never touch.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.config import GPUConfig
from repro.raster.setup import ScreenPrimitive
from repro.tiling.parameter_buffer import ParameterBuffer


class PolygonListBuilder:
    """Builds the Parameter Buffer for one frame."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.primitives_binned = 0
        self.bin_entries = 0

    def build(
        self, primitives: Iterable[ScreenPrimitive]
    ) -> ParameterBuffer:
        """Bin all primitives (in program order) into a Parameter Buffer."""
        buffer = ParameterBuffer()
        sub_counter = {}
        for screen_primitive in primitives:
            pid = screen_primitive.primitive_id
            sub = sub_counter.get(pid, 0)
            sub_counter[pid] = sub + 1
            buffer.primitives[(pid, sub)] = screen_primitive
            self.primitives_binned += 1
            for tile in self.overlapped_tiles(screen_primitive):
                buffer.append_to_tile(tile, pid, sub)
                self.bin_entries += 1
        return buffer

    def overlapped_tiles(
        self, primitive: ScreenPrimitive
    ) -> List[Tuple[int, int]]:
        """All tile coordinates the primitive overlaps, row-major."""
        tile = self.config.tile_size
        min_x, min_y, max_x, max_y = primitive.bbox()
        # Clamp the bbox to the screen before dividing into tiles.
        tx0 = max(0, int(min_x) // tile)
        ty0 = max(0, int(min_y) // tile)
        tx1 = min(self.config.tiles_x - 1, int(max_x) // tile)
        ty1 = min(self.config.tiles_y - 1, int(max_y) // tile)
        if max_x < 0 or max_y < 0:
            return []
        if min_x >= self.config.screen_width or min_y >= self.config.screen_height:
            return []
        out: List[Tuple[int, int]] = []
        for ty in range(ty0, ty1 + 1):
            for tx in range(tx0, tx1 + 1):
                x0, y0 = tx * tile, ty * tile
                if primitive.overlaps_rect(x0, y0, x0 + tile, y0 + tile):
                    out.append((tx, ty))
        return out
