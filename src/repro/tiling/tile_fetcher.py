"""The Tile Fetcher.

"After all the geometry is processed and binned, the Tile Fetcher fetches
the primitives corresponding to each tile in the frame, one tile at a
time.  Tiles are processed in an order specified by the Tiling Engine."

Fetching a tile reads its primitive-ID list and each referenced attribute
record through the Tile Cache, so Parameter Buffer traffic contributes to
the shared L2 like every other traffic class.  The fetcher also reports a
fetch-cycle estimate used by the pipeline timing model as the front-end
throughput bound of the decoupled architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.config import GPUConfig
from repro.core.tile_order import TileCoord
from repro.memory.hierarchy import MemoryHierarchy
from repro.raster.setup import ScreenPrimitive
from repro.tiling.parameter_buffer import (
    ATTRIBUTE_RECORD_BYTES,
    ID_ENTRY_BYTES,
    ParameterBuffer,
)

LINE_BYTES = 64


@dataclass
class FetchedTile:
    """One tile's worth of work, in program order."""

    tile: TileCoord
    step: int
    primitives: List[ScreenPrimitive]
    fetch_cycles: int


class TileFetcher:
    """Streams tiles of the Parameter Buffer in a given traversal order."""

    def __init__(
        self,
        config: GPUConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
    ):
        self.config = config
        self.hierarchy = hierarchy
        self.tiles_fetched = 0

    def fetch(
        self, buffer: ParameterBuffer, order: Sequence[TileCoord]
    ) -> Iterator[FetchedTile]:
        """Yield every tile of ``order`` with its primitives.

        Empty tiles are still yielded (with an empty primitive list) so
        the timing model can account for their buffer flushes.
        """
        for step, tile in enumerate(order):
            primitives = buffer.primitives_for_tile(tile)
            fetch_cycles = self._fetch_tile_memory(buffer, tile, primitives)
            self.tiles_fetched += 1
            yield FetchedTile(
                tile=tile,
                step=step,
                primitives=primitives,
                fetch_cycles=fetch_cycles,
            )

    def _fetch_tile_memory(
        self,
        buffer: ParameterBuffer,
        tile: TileCoord,
        primitives: List[ScreenPrimitive],
    ) -> int:
        """Issue the tile's Parameter Buffer reads; return fetch cycles."""
        if self.hierarchy is not None:
            for line in self.fetch_lines(buffer, tile, primitives):
                self.hierarchy.tile_access(line)
        return self.fetch_cycles(buffer, tile)

    @staticmethod
    def fetch_lines(
        buffer: ParameterBuffer,
        tile: TileCoord,
        primitives: List[ScreenPrimitive],
    ) -> List[int]:
        """Cache lines the Tile Fetcher reads for one tile.

        The tile's primitive-ID list (sequential) followed by each
        referenced attribute record.
        """
        count = buffer.tile_primitive_count(tile)
        if not count:
            return []
        lines: List[int] = []
        start = buffer.list_entry_address(tile, 0)
        end = start + count * ID_ENTRY_BYTES
        lines.extend(range(start // LINE_BYTES, -(-end // LINE_BYTES)))
        for primitive in primitives:
            addr = buffer.attribute_address(primitive.primitive_id)
            for offset in range(0, ATTRIBUTE_RECORD_BYTES, LINE_BYTES):
                lines.append((addr + offset) // LINE_BYTES)
        return lines

    def fetch_cycles(self, buffer: ParameterBuffer, tile: TileCoord) -> int:
        """Front-end cycles to fetch one tile's primitive stream."""
        count = buffer.tile_primitive_count(tile)
        return max(count * self.config.tile_fetcher_cycles_per_primitive, 1)

    @staticmethod
    def fetch_lines_fast(bins, tile: TileCoord, pids) -> List[int]:
        """:meth:`fetch_lines` over the fast engine's TileBins layout.

        ``pids`` is the tile's primitive-id array in list order.  The
        ID-list run is identical by construction (same offsets, same
        entry size); each 64-byte attribute record spans exactly one
        line at ``base//64 + pid``, which is what the scalar loop's
        ``(base + pid*64 + 0) // 64`` computes.
        """
        count = len(pids)
        if not count:
            return []
        start = bins.list_offsets[tile]
        end = start + count * ID_ENTRY_BYTES
        lines = list(range(start // LINE_BYTES, -(-end // LINE_BYTES)))
        lines.extend((bins.base_address // LINE_BYTES + pids).tolist())
        return lines
