"""Synthetic workloads: the Table I benchmark suite, rebuilt procedurally.

The paper drives its simulator with OpenGL ES traces of ten commercial
Android games.  Those traces are unavailable, so each game is replaced by
a procedural scene generator tuned to the published characteristics
(Table I: 2D/3D, texture footprint) and the structural properties the
paper's analysis relies on (overdraw clustered in horizontal bands,
skewed per-region depth complexity, per-game texture-reuse variation).
"""

from repro.workloads.recipe import SceneRecipe, BuiltWorkload
from repro.workloads.games import GAMES, GameSpec, build_game, game_aliases

__all__ = [
    "SceneRecipe",
    "BuiltWorkload",
    "GameSpec",
    "GAMES",
    "build_game",
    "game_aliases",
]
