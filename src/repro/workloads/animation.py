"""Animated multi-frame workloads.

The paper evaluates "commercial animated applications": consecutive
frames of a game differ by small sprite/camera motion while sampling the
same textures.  :class:`Animation` produces a sequence of frames of one
game (or raw recipe) so the multi-frame simulator can study inter-frame
texture reuse in warm caches — the temporal dimension of the locality
DTexL targets within a frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.config import GPUConfig
from repro.errors import UnknownWorkloadError, WorkloadError
from repro.workloads.games import GAMES
from repro.workloads.recipe import BuiltWorkload, SceneRecipe


@dataclass(frozen=True)
class Animation:
    """A finite frame sequence of one animated scene."""

    recipe: SceneRecipe
    num_frames: int = 4

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise WorkloadError("an animation needs at least one frame")

    @staticmethod
    def of_game(alias: str, num_frames: int = 4) -> "Animation":
        """Animation of a Table I game's recipe."""
        try:
            spec = GAMES[alias]
        except KeyError:
            raise UnknownWorkloadError(f"unknown game {alias!r}") from None
        return Animation(recipe=spec.recipe, num_frames=num_frames)

    def frames(self, config: GPUConfig) -> Iterator[BuiltWorkload]:
        """Yield each frame's workload in display order."""
        for frame in range(self.num_frames):
            yield self.recipe.build(config, frame=frame)

    def build_all(self, config: GPUConfig) -> List[BuiltWorkload]:
        return list(self.frames(config))
