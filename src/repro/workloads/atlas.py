"""Texture atlases (sprite sheets).

Mobile games pack many small images into one large atlas texture and
draw each sprite from a sub-rectangle.  For DTexL this matters: sprites
that look unrelated on screen share one texture's address space, so the
atlas *layout* decides whether two adjacent quads can ever share a cache
line.  :class:`TextureAtlas` provides a deterministic grid layout with
optional per-cell padding (the industry's bleed gutters), and
:class:`SceneRecipe`-style scenes can draw from it via
:meth:`TextureAtlas.uv_rect`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.texture.texture import Texture


@dataclass(frozen=True)
class AtlasRegion:
    """One packed sprite: its UV sub-rectangle within the atlas."""

    index: int
    u0: float
    v0: float
    u1: float
    v1: float

    def uv_rect(self) -> Tuple[float, float, float, float]:
        return (self.u0, self.v0, self.u1, self.v1)

    @property
    def width(self) -> float:
        return self.u1 - self.u0

    @property
    def height(self) -> float:
        return self.v1 - self.v0


class TextureAtlas:
    """A grid-packed sprite sheet over one texture.

    ``grid`` x ``grid`` equally sized cells; ``padding_texels`` shrinks
    each region inward so bilinear taps never bleed across sprites.
    """

    def __init__(self, texture: Texture, grid: int = 4, padding_texels: int = 1):
        if grid < 1:
            raise WorkloadError("grid must be at least 1")
        if padding_texels < 0:
            raise WorkloadError("padding must be non-negative")
        cell_w = texture.width / grid
        cell_h = texture.height / grid
        if padding_texels * 2 >= min(cell_w, cell_h):
            raise WorkloadError("padding leaves no usable texels per cell")
        self.texture = texture
        self.grid = grid
        self.padding_texels = padding_texels
        self.regions: List[AtlasRegion] = []
        pad_u = padding_texels / texture.width
        pad_v = padding_texels / texture.height
        for row in range(grid):
            for col in range(grid):
                self.regions.append(
                    AtlasRegion(
                        index=row * grid + col,
                        u0=col / grid + pad_u,
                        v0=row / grid + pad_v,
                        u1=(col + 1) / grid - pad_u,
                        v1=(row + 1) / grid - pad_v,
                    )
                )

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def region(self, index: int) -> AtlasRegion:
        """Region by index (wraps, so any sprite id maps to a cell)."""
        return self.regions[index % len(self.regions)]

    def uv_rect(self, index: int) -> Tuple[float, float, float, float]:
        return self.region(index).uv_rect()

    def regions_share_no_texels(self) -> bool:
        """True when padding guarantees bilinear isolation of regions."""
        return self.padding_texels >= 1

    def region_footprint_lines(self, index: int, lod: int = 0) -> set:
        """All cache lines a region's texels can occupy at ``lod``."""
        region = self.region(index)
        mip = self.texture.level(lod)
        x0 = int(region.u0 * mip.width)
        x1 = max(x0 + 1, int(region.u1 * mip.width))
        y0 = int(region.v0 * mip.height)
        y1 = max(y0 + 1, int(region.v1 * mip.height))
        lines = set()
        for y in range(y0, y1):
            for x in range(x0, x1):
                lines.add(self.texture.texel_line(x, y, lod))
        return lines
