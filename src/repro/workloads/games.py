"""The benchmark suite: ten synthetic stand-ins for Table I's games.

Each :class:`GameSpec` carries the published Table I metadata (alias,
installs, genre, 2D/3D, texture footprint) and a
:class:`~repro.workloads.recipe.SceneRecipe` whose knobs encode what the
genre implies for DTexL's experiments: puzzle games blend heavily with
moderate overdraw, runners have strong ground-plane LOD gradients,
strategy maps have huge low-reuse textures, shooters tiny high-reuse
ones, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.config import GPUConfig
from repro.errors import UnknownWorkloadError
from repro.workloads.recipe import BuiltWorkload, SceneRecipe


@dataclass(frozen=True)
class GameSpec:
    """One Table I row plus its synthetic recipe."""

    alias: str
    title: str
    installs_millions: int
    genre: str
    scene_type: str  # "2D" | "3D"
    texture_footprint_mib: float
    recipe: SceneRecipe

    def build(self, config: GPUConfig) -> BuiltWorkload:
        return self.recipe.build(config)


def _spec(
    alias: str,
    title: str,
    installs: int,
    genre: str,
    scene_type: str,
    footprint: float,
    **recipe_kwargs,
) -> GameSpec:
    recipe = SceneRecipe(
        name=alias,
        seed=sum(ord(c) for c in alias) * 1000003,
        is_3d=scene_type == "3D",
        texture_budget_mib=footprint,
        **recipe_kwargs,
    )
    return GameSpec(
        alias=alias,
        title=title,
        installs_millions=installs,
        genre=genre,
        scene_type=scene_type,
        texture_footprint_mib=footprint,
        recipe=recipe,
    )


GAMES: Dict[str, GameSpec] = {
    spec.alias: spec
    for spec in [
        _spec(
            "CCS", "Candy Crush Saga", 1000, "Puzzle", "2D", 2.4,
            depth_complexity=3.0, blend_fraction=0.6,
            sprite_size=(0.06, 0.14), horizontal_clustering=0.3,
            alu_cycles=(6, 14), uv_scale=(0.8, 1.5), max_textures=5,
        ),
        _spec(
            "SoD", "Sonic Dash", 100, "Arcade", "3D", 1.4,
            depth_complexity=2.5, blend_fraction=0.15,
            sprite_size=(0.1, 0.35), horizontal_clustering=0.7,
            alu_cycles=(10, 24), uv_scale=(0.5, 2.0), max_textures=4,
        ),
        _spec(
            "TRu", "Temple Run", 500, "Arcade", "3D", 0.4,
            depth_complexity=3.5, blend_fraction=0.1,
            sprite_size=(0.12, 0.4), horizontal_clustering=0.8,
            alu_cycles=(12, 30), uv_scale=(1.0, 3.0), max_textures=3,
        ),
        _spec(
            "SWa", "Shoot Strike War Fire", 10, "Shooter", "3D", 0.2,
            depth_complexity=2.0, blend_fraction=0.25,
            sprite_size=(0.1, 0.3), horizontal_clustering=0.6,
            alu_cycles=(10, 20), uv_scale=(1.0, 2.5), max_textures=3,
        ),
        _spec(
            "CRa", "City Racing 3D", 50, "Racing", "3D", 2.8,
            depth_complexity=2.8, blend_fraction=0.1,
            sprite_size=(0.1, 0.45), horizontal_clustering=0.75,
            alu_cycles=(12, 26), uv_scale=(0.4, 1.6), max_textures=5,
        ),
        _spec(
            "RoK", "Rise of Kingdoms: Lost Crusade", 10, "Strategy", "2D", 6.8,
            depth_complexity=2.2, blend_fraction=0.4,
            sprite_size=(0.05, 0.2), horizontal_clustering=0.35,
            alu_cycles=(6, 16), uv_scale=(0.3, 1.0), max_textures=6,
        ),
        _spec(
            "DDS", "Derby Destruction Simulator", 10, "Racing", "3D", 1.4,
            depth_complexity=2.6, blend_fraction=0.15,
            sprite_size=(0.12, 0.4), horizontal_clustering=0.7,
            alu_cycles=(14, 28), uv_scale=(0.5, 1.8), max_textures=4,
        ),
        _spec(
            "Snp", "Sniper 3D", 500, "Shooter", "3D", 1.8,
            depth_complexity=2.4, blend_fraction=0.3,
            sprite_size=(0.08, 0.35), horizontal_clustering=0.55,
            alu_cycles=(10, 22), uv_scale=(0.6, 2.0), max_textures=5,
        ),
        _spec(
            "Mze", "3D Maze 2: Diamonds & Ghosts", 10, "Arcade", "3D", 2.4,
            depth_complexity=4.0, blend_fraction=0.05,
            sprite_size=(0.15, 0.5), horizontal_clustering=0.65,
            alu_cycles=(8, 18), uv_scale=(0.8, 2.5), max_textures=4,
        ),
        _spec(
            "GTr", "Gravitytetris", 5, "Puzzle", "3D", 0.7,
            depth_complexity=2.0, blend_fraction=0.2,
            sprite_size=(0.06, 0.16), horizontal_clustering=0.85,
            alu_cycles=(8, 16), uv_scale=(1.0, 2.2), max_textures=3,
        ),
    ]
}


def game_aliases() -> List[str]:
    """Suite aliases in Table I order."""
    return list(GAMES)


def build_game(alias: str, config: GPUConfig) -> BuiltWorkload:
    """Build the named game's frame for ``config``."""
    try:
        spec = GAMES[alias]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown game {alias!r}; choose from {game_aliases()}"
        ) from None
    return spec.build(config)
