"""Parameterized scene generation.

A :class:`SceneRecipe` captures the structural knobs that matter to
DTexL — texture footprint, depth complexity and its horizontal
clustering, blending fraction, shader intensity, 2D/3D projection —
and :meth:`SceneRecipe.build` turns them into a concrete
:class:`~repro.geometry.mesh.Scene` for a given GPU configuration.

Scenes are resolution-independent: sprite positions and sizes are
expressed as fractions of the screen, and sprite *count* scales with the
screen area so scaled-down test configs stay fast while preserving
density (overdraw) statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.config import GPUConfig
from repro.errors import WorkloadError
from repro.geometry.mesh import (
    DrawCommand,
    Mesh,
    Scene,
    ShaderProgram,
    Vertex,
)
from repro.geometry.transform import look_at, orthographic, perspective
from repro.geometry.vec import Mat4, Vec2, Vec3
from repro.texture.texture import Texture, TextureAllocator

MIB = 1024 * 1024
#: Approximate mip-chain overhead over the base level (geometric series).
MIP_CHAIN_FACTOR = 4.0 / 3.0


def chain_bytes(side: int) -> int:
    """Approximate full-mip-chain footprint of a side x side RGBA8 texture."""
    return int(side * side * 4 * MIP_CHAIN_FACTOR)


def plan_texture_sides(
    budget_bytes: int, max_textures: int, rng: random.Random
) -> List[int]:
    """Power-of-two texture sides whose chains sum to ~``budget_bytes``.

    Greedy: repeatedly take the largest side (<= 1024) that still fits,
    with a floor of 32; always returns at least one texture.
    """
    if budget_bytes <= 0:
        raise WorkloadError("texture budget must be positive")
    sides: List[int] = []
    remaining = budget_bytes
    while len(sides) < max_textures:
        side = 32
        while side < 1024 and chain_bytes(side * 2) <= remaining:
            side *= 2
        sides.append(side)
        remaining -= chain_bytes(side)
        if remaining < chain_bytes(32):
            break
    rng.shuffle(sides)
    return sides


@dataclass
class BuiltWorkload:
    """A generated scene plus the texture set it samples."""

    scene: Scene
    allocator: TextureAllocator

    @property
    def textures(self):
        return self.allocator.textures

    @property
    def texture_footprint_bytes(self) -> int:
        return self.allocator.total_footprint_bytes


@dataclass(frozen=True)
class SceneRecipe:
    """Structural description of one synthetic game frame."""

    name: str
    seed: int
    is_3d: bool
    texture_budget_mib: float
    max_textures: int = 6
    #: Mean number of sprite layers covering each screen point.
    depth_complexity: float = 2.5
    #: 0 = sprites uniform over the screen; 1 = fully concentrated into
    #: horizontal bands (the gravity effect of §V-A).
    horizontal_clustering: float = 0.5
    #: Fraction of sprites drawn with alpha blending (no depth write).
    blend_fraction: float = 0.2
    #: Sprite side as a fraction of screen height: (min, max).
    sprite_size: Tuple[float, float] = (0.08, 0.3)
    #: Fragment-shader ALU cost range (cycles).
    alu_cycles: Tuple[int, int] = (8, 24)
    #: Texture fetches per fragment.
    texture_samples: int = 1
    #: Texels per screen pixel at sprite scale (drives mip LOD / reuse).
    uv_scale: Tuple[float, float] = (0.5, 2.0)
    #: Whether a full-screen textured background layer is drawn first.
    background: bool = True
    #: Per-frame sprite scroll in screen fractions (animation support):
    #: frame ``k`` shifts every sprite by ``k * scroll`` (wrapping).
    scroll: Tuple[float, float] = (0.03, 0.0)
    #: When > 0, sprites sample sub-regions of a sprite-sheet atlas
    #: (an ``atlas_grid`` x ``atlas_grid`` packing of the largest
    #: texture) instead of arbitrary UV windows — the common mobile
    #: asset layout.
    atlas_grid: int = 0

    # -- public API -------------------------------------------------------------

    def build(self, config: GPUConfig, frame: int = 0) -> BuiltWorkload:
        """Generate the scene for ``config``'s screen.

        ``frame`` animates the scene: sprites scroll by
        ``frame * scroll`` (the texture set and the rest of the scene
        stay identical, so consecutive frames share texture addresses —
        the inter-frame reuse a warm cache can exploit).
        """
        rng = random.Random(self.seed)
        allocator = TextureAllocator()
        sides = plan_texture_sides(
            int(self.texture_budget_mib * MIB), self.max_textures, rng
        )
        textures = [
            allocator.create(side, side, seed=self.seed * 97 + i)
            for i, side in enumerate(sides)
        ]
        scene = Scene(name=self.name)
        builder = _SceneBuilder(config, rng, textures, scene)
        if self.atlas_grid:
            from repro.workloads.atlas import TextureAtlas

            builder.atlas = TextureAtlas(
                builder.largest_texture(), grid=self.atlas_grid
            )
        if self.is_3d:
            self._build_3d(builder, frame)
        else:
            self._build_2d(builder, frame)
        return BuiltWorkload(scene=scene, allocator=allocator)

    # -- 2D construction ---------------------------------------------------------

    def _build_2d(self, builder: "_SceneBuilder", frame: int = 0) -> None:
        config = builder.config
        builder.scene.projection_matrix = orthographic(
            0.0, float(config.screen_width),
            float(config.screen_height), 0.0,
        )
        if self.background:
            builder.add_screen_rect(
                0.0, 0.0, 1.0, 1.0, depth=0.95,
                texture=builder.largest_texture(),
                uv_rect=(0.0, 0.0, 1.0, 1.0),
                shader=self._shader(builder.rng),
                blend=False,
            )
        # Sprites back-to-front (painter's order), so every layer passes
        # Early-Z and the intended overdraw actually happens.
        sprites = self._sprite_placements(builder, frame)
        depth = 0.9
        step = 0.8 / max(1, len(sprites))
        for cx, cy, size in sprites:
            texture, uv_rect = self._sprite_source(builder)
            builder.add_screen_rect(
                cx - size / 2, cy - size / 2, cx + size / 2, cy + size / 2,
                depth=depth,
                texture=texture,
                uv_rect=uv_rect,
                shader=self._shader(builder.rng),
                blend=builder.rng.random() < self.blend_fraction,
            )
            depth -= step

    # -- 3D construction ---------------------------------------------------------

    def _build_3d(self, builder: "_SceneBuilder", frame: int = 0) -> None:
        config = builder.config
        aspect = config.screen_width / config.screen_height
        builder.scene.projection_matrix = perspective(
            math.radians(60.0), aspect, 0.5, 100.0
        )
        builder.scene.view_matrix = look_at(
            Vec3(0.0, 2.0, 0.0), Vec3(0.0, 1.0, -10.0), Vec3(0.0, 1.0, 0.0)
        )
        if self.background:
            # Ground plane receding to the horizon: strong LOD gradient.
            builder.add_world_rect(
                Vec3(-40.0, 0.0, -1.0), Vec3(40.0, 0.0, -1.0),
                Vec3(40.0, 0.0, -80.0), Vec3(-40.0, 0.0, -80.0),
                texture=builder.largest_texture(),
                uv_rect=(0.0, 0.0, 16.0, 16.0),
                shader=self._shader(builder.rng),
                blend=False,
            )
        # Billboards at increasing depth; draw order is scene order, so
        # Early-Z kills some but not all overdraw, as in real 3D frames.
        for cx, cy, size in self._sprite_placements(builder, frame):
            depth = 1.5 + 25.0 * builder.rng.random() ** 2
            texture, uv_rect = self._sprite_source(builder)
            builder.add_billboard(
                cx, cy, size, depth,
                texture=texture,
                uv_rect=uv_rect,
                shader=self._shader(builder.rng),
                blend=builder.rng.random() < self.blend_fraction,
            )

    # -- shared helpers ------------------------------------------------------------

    def _sprite_placements(
        self, builder: "_SceneBuilder", frame: int = 0
    ) -> List[Tuple[float, float, float]]:
        """(cx, cy, size) in screen fractions, count set by depth complexity."""
        rng = builder.rng
        mean_size = (self.sprite_size[0] + self.sprite_size[1]) / 2.0
        # Screen-area fraction of one sprite: 2D rects span ``size`` of
        # both axes; 3D billboards are squares of ``size`` x screen height.
        aspect = builder.config.screen_width / builder.config.screen_height
        mean_area = mean_size * mean_size
        if self.is_3d:
            mean_area /= aspect
        count = max(4, int(self.depth_complexity / max(mean_area, 1e-6)))
        bands = [0.25, 0.55, 0.8]  # horizontal bands (gravity effect)
        placements: List[Tuple[float, float, float]] = []
        for _ in range(count):
            size = rng.uniform(*self.sprite_size)
            cx = rng.random()
            if rng.random() < self.horizontal_clustering:
                band = rng.choice(bands)
                cy = min(1.0, max(0.0, rng.gauss(band, 0.05)))
            else:
                cy = rng.random()
            cx = (cx + frame * self.scroll[0]) % 1.0
            cy = (cy + frame * self.scroll[1]) % 1.0
            placements.append((cx, cy, size))
        return placements

    def _uv_rect(self, rng: random.Random) -> Tuple[float, float, float, float]:
        scale = rng.uniform(*self.uv_scale)
        u0 = rng.random()
        v0 = rng.random()
        return (u0, v0, u0 + scale, v0 + scale)

    def _sprite_source(
        self, builder: "_SceneBuilder"
    ) -> Tuple[Texture, Tuple[float, float, float, float]]:
        """Texture and UV window for one sprite (atlas-aware)."""
        if builder.atlas is not None:
            region = builder.rng.randrange(builder.atlas.num_regions)
            return builder.atlas.texture, builder.atlas.uv_rect(region)
        return builder.pick_texture(), self._uv_rect(builder.rng)

    def _shader(self, rng: random.Random) -> ShaderProgram:
        return ShaderProgram(
            name=f"{self.name}-frag",
            alu_cycles=rng.randint(*self.alu_cycles),
            texture_samples=self.texture_samples,
        )


class _SceneBuilder:
    """Accumulates draw commands, managing vertex-buffer addresses."""

    def __init__(
        self,
        config: GPUConfig,
        rng: random.Random,
        textures: List[Texture],
        scene: Scene,
    ):
        self.config = config
        self.rng = rng
        self.textures = textures
        self.scene = scene
        self.atlas = None  # set by SceneRecipe.build when atlas_grid > 0
        self._vertex_cursor = 0

    def largest_texture(self) -> Texture:
        return max(self.textures, key=lambda t: t.width * t.height)

    def pick_texture(self) -> Texture:
        return self.rng.choice(self.textures)

    def _register_mesh(self, vertices: List[Vertex], indices: List[int]) -> Mesh:
        mesh = Mesh(
            vertices=vertices, indices=indices,
            base_address=self._vertex_cursor,
        )
        self._vertex_cursor += len(vertices) * 32
        return mesh

    def _add_rect_mesh(
        self,
        corners: List[Vec3],
        uv_rect: Tuple[float, float, float, float],
        texture: Texture,
        shader: ShaderProgram,
        blend: bool,
        model: Mat4 = None,
    ) -> None:
        u0, v0, u1, v1 = uv_rect
        uvs = [Vec2(u0, v0), Vec2(u1, v0), Vec2(u1, v1), Vec2(u0, v1)]
        vertices = [Vertex(p, uv) for p, uv in zip(corners, uvs)]
        mesh = self._register_mesh(vertices, [0, 1, 2, 0, 2, 3])
        self.scene.add(
            DrawCommand(
                mesh=mesh,
                texture_id=texture.texture_id,
                model_matrix=model or Mat4.identity(),
                shader=shader,
                depth_write=not blend,
                blend=blend,
            )
        )

    def add_screen_rect(
        self,
        fx0: float, fy0: float, fx1: float, fy1: float,
        depth: float,
        texture: Texture,
        uv_rect: Tuple[float, float, float, float],
        shader: ShaderProgram,
        blend: bool,
    ) -> None:
        """A 2D rectangle; coordinates are fractions of the screen."""
        w, h = self.config.screen_width, self.config.screen_height
        # The ortho projection maps NDC z = -z_world (GL convention), so
        # negate here to make larger ``depth`` mean farther from camera.
        z = -(depth * 2.0 - 1.0)
        corners = [
            Vec3(fx0 * w, fy0 * h, z),
            Vec3(fx1 * w, fy0 * h, z),
            Vec3(fx1 * w, fy1 * h, z),
            Vec3(fx0 * w, fy1 * h, z),
        ]
        self._add_rect_mesh(corners, uv_rect, texture, shader, blend)

    def add_world_rect(
        self,
        p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3,
        texture: Texture,
        uv_rect: Tuple[float, float, float, float],
        shader: ShaderProgram,
        blend: bool,
    ) -> None:
        """An arbitrary world-space quadrilateral (e.g. the ground plane)."""
        self._add_rect_mesh([p0, p1, p2, p3], uv_rect, texture, shader, blend)

    def add_billboard(
        self,
        fx: float, fy: float, size: float, depth: float,
        texture: Texture,
        uv_rect: Tuple[float, float, float, float],
        shader: ShaderProgram,
        blend: bool,
    ) -> None:
        """A camera-facing square at world depth ``depth``.

        ``fx, fy`` position the billboard in screen fractions at that
        depth; ``size`` is its apparent on-screen side as a fraction of
        the screen height.
        """
        # Size the billboard in world units so its projected size is
        # ``size`` at distance ``depth`` (fov 60 deg => half-height tan 30).
        half_extent_at_depth = depth * math.tan(math.radians(30.0))
        world_size = size * 2.0 * half_extent_at_depth
        aspect = self.config.screen_width / self.config.screen_height
        wx = (fx * 2.0 - 1.0) * half_extent_at_depth * aspect
        wy = (1.0 - fy * 2.0) * half_extent_at_depth + 2.0  # camera at y=2
        wz = -depth
        half = world_size / 2.0
        corners = [
            Vec3(wx - half, wy + half, wz),
            Vec3(wx + half, wy + half, wz),
            Vec3(wx + half, wy - half, wz),
            Vec3(wx - half, wy - half, wz),
        ]
        self._add_rect_mesh(corners, uv_rect, texture, shader, blend)
