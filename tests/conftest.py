"""Shared fixtures: a tiny GPU config and cached frame traces.

Tests run on a 128x64 screen (4x2 tiles of 32x32) so functional renders
take milliseconds.  Traces are session-scoped: pass 1 runs once per
workload and every replay test reuses it, exactly as the experiment
runner does.
"""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.sim.driver import FrameRenderer, FrameTrace
from repro.workloads.games import build_game
from repro.workloads.recipe import SceneRecipe

try:
    from hypothesis import settings

    # One pinned, derandomized profile so property tests explore the
    # same cases on every machine and every CI run — a flaky shrink is
    # a repro, not a lottery ticket.  deadline=None because the shared
    # CI runners stall unpredictably, not because the code may dawdle.
    settings.register_profile(
        "repro-deterministic", derandomize=True, deadline=None,
    )
    settings.load_profile("repro-deterministic")
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pass


@pytest.fixture(autouse=True)
def sanitize_every_replay(monkeypatch):
    """Auto-sanitize every successful replay the suite performs.

    Wraps :meth:`TraceReplayer.run` so each trace/result pair the tests
    produce is walked by the :class:`TraceSanitizer`; a replay that
    silently breaks a pipeline invariant fails its test even when the
    test itself only asserted something narrower.
    """
    from repro.analysis.lint.sanitizer import TraceSanitizer
    from repro.sim.replay import TraceReplayer

    original = TraceReplayer.run

    def run(self, trace, design, hierarchy=None):
        result = original(self, trace, design, hierarchy)
        violations = TraceSanitizer(self.config).check(trace, result, design)
        if violations:
            detail = "; ".join(str(v) for v in violations)
            pytest.fail(
                f"replay of {design.name!r} violated pipeline "
                f"invariant(s): {detail}"
            )
        return result

    monkeypatch.setattr(TraceReplayer, "run", run)


@pytest.fixture(scope="session")
def tiny_config() -> GPUConfig:
    """4x2 tiles — big enough for every tile order, small enough to fly."""
    return GPUConfig(screen_width=128, screen_height=64)


@pytest.fixture(scope="session")
def small_config() -> GPUConfig:
    """8x4 tiles — used where tile-order structure needs more room."""
    return GPUConfig(screen_width=256, screen_height=128)


@pytest.fixture(scope="session")
def tiny_workload(tiny_config):
    """A small deterministic scene with real overdraw and textures."""
    recipe = SceneRecipe(
        name="tiny",
        seed=7,
        is_3d=False,
        texture_budget_mib=0.3,
        depth_complexity=2.0,
        blend_fraction=0.2,
        sprite_size=(0.2, 0.5),
    )
    return recipe.build(tiny_config)


@pytest.fixture(scope="session")
def tiny_trace(tiny_config, tiny_workload) -> FrameTrace:
    trace, _ = FrameRenderer(tiny_config).render(tiny_workload)
    return trace


@pytest.fixture(scope="session")
def small_game_trace(small_config) -> FrameTrace:
    """One real suite game rendered at the small scale."""
    workload = build_game("GTr", small_config)
    trace, _ = FrameRenderer(small_config).render(workload)
    return trace
