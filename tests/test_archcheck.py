"""The ``archcheck`` whole-program pass: graph, contracts, ratchet, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.arch import (
    ArchCheck,
    Baseline,
    CallGraph,
    LayerContract,
    ModuleGraph,
    TODO_JUSTIFICATION,
    check_dead_exports,
    check_timing_critical_mutations,
    check_undeclared_exports,
    graph_to_dict,
    to_dot,
)
from repro.analysis.checks_common import Finding, format_json
from repro.cli import main
from repro.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[1]

#: A three-layer synthetic contract used by most fixtures.
CONTRACT_DICT = {
    "project": {"package": "pkg"},
    "layers": {
        "low": [],
        "mid": ["low"],
        "high": ["mid", "low"],
    },
    "modules": {"pkg": "high"},
    # fixture functions are unreferenced by construction; dead-export
    # behaviour gets its own direct tests below
    "deadcode": {"ignore": ["*"]},
}


def write_tree(root: Path, files: dict) -> Path:
    """Materialize ``{relative path: source}`` under ``root``; mkdir -p."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def make_graph(tmp_path: Path, files: dict) -> ModuleGraph:
    src = write_tree(tmp_path / "src", files)
    return ModuleGraph.build(src, packages=["pkg"])


def contract(**overrides) -> LayerContract:
    raw = {key: dict(value) for key, value in CONTRACT_DICT.items()}
    raw.update(overrides)
    return LayerContract.from_dict(raw)


def run_check(tmp_path: Path, files: dict, the_contract=None,
              baseline=None, update_baseline=False):
    src = write_tree(tmp_path / "src", files)
    check = ArchCheck(
        the_contract if the_contract is not None else contract(),
        src,
        baseline=baseline,
    )
    return check.run(update_baseline=update_baseline)


#: A minimal clean three-layer tree.
CLEAN_TREE = {
    "pkg/__init__.py": "",
    "pkg/low/__init__.py": "",
    "pkg/low/base.py": "def helper():\n    return 1\n",
    "pkg/mid/__init__.py": "",
    "pkg/mid/work.py": (
        "from pkg.low.base import helper\n"
        "def work():\n"
        "    return helper()\n"
    ),
    "pkg/high/__init__.py": "",
    "pkg/high/top.py": (
        "from pkg.mid.work import work\n"
        "def top():\n"
        "    return work()\n"
    ),
}


# -- module graph -------------------------------------------------------------


class TestModuleGraph:
    def test_builds_modules_and_edges(self, tmp_path):
        graph = make_graph(tmp_path, CLEAN_TREE)
        assert set(graph.modules) == {
            "pkg", "pkg.low", "pkg.low.base", "pkg.mid", "pkg.mid.work",
            "pkg.high", "pkg.high.top",
        }
        pairs = {(e.src, e.dst) for e in graph.edges}
        assert ("pkg.mid.work", "pkg.low.base") in pairs
        assert ("pkg.high.top", "pkg.mid.work") in pairs

    def test_from_import_of_attribute_collapses_to_module(self, tmp_path):
        # `from pkg.low.base import helper` is an edge to the module,
        # not to a phantom module `pkg.low.base.helper`.
        graph = make_graph(tmp_path, CLEAN_TREE)
        assert all("helper" not in e.dst for e in graph.edges)

    def test_relative_imports_resolved(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/a.py": "A = 1\n",
            "pkg/low/b.py": "from .a import A\nfrom . import a\n",
            "pkg/mid/__init__.py": "",
            "pkg/mid/c.py": "from ..low.a import A\n",
        })
        pairs = {(e.src, e.dst) for e in graph.edges}
        assert ("pkg.low.b", "pkg.low.a") in pairs
        assert ("pkg.mid.c", "pkg.low.a") in pairs

    def test_external_imports_are_not_edges(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/a.py": "import os\nimport json as j\nX = 1\n",
        })
        assert graph.edges == []

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/bad.py": "def broken(:\n",
        })
        assert [f.rule for f in graph.errors] == ["parse-error"]
        assert "pkg.low.bad" not in graph.modules

    def test_cycles_detected_and_deterministic(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/a.py": "import pkg.low.b\n",
            "pkg/low/b.py": "import pkg.low.a\n",
            "pkg/low/c.py": "import pkg.low.a\n",
        })
        assert graph.cycles() == [["pkg.low.a", "pkg.low.b"]]


# -- layer contracts ----------------------------------------------------------


class TestLayerContract:
    def test_clean_tree_has_no_findings(self, tmp_path):
        report = run_check(tmp_path, CLEAN_TREE)
        assert report.findings == []
        assert report.ok

    def test_forbidden_edge_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/low/base.py"] = (
            "from pkg.high.top import top\n"
            "def helper():\n"
            "    return top()\n"
        )
        report = run_check(tmp_path, files)
        rules = [f.rule for f in report.findings]
        assert "forbidden-import" in rules
        finding = next(
            f for f in report.findings if f.rule == "forbidden-import"
        )
        assert finding.fingerprint == (
            "forbidden-import:pkg.low.base->pkg.high.top"
        )
        assert "layer low" in finding.message

    def test_import_cycle_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/mid/other.py"] = "from pkg.mid import work\n"
        files["pkg/mid/work.py"] = (
            "from pkg.mid import other\n"
            "def work():\n"
            "    return other\n"
        )
        report = run_check(tmp_path, files)
        cycles = [f for f in report.findings if f.rule == "import-cycle"]
        assert len(cycles) == 1
        assert cycles[0].fingerprint == (
            "import-cycle:pkg.mid.other+pkg.mid.work"
        )

    def test_unmapped_module_is_a_finding(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/rogue/__init__.py"] = ""
        files["pkg/rogue/x.py"] = "X = 1\n"
        report = run_check(tmp_path, files)
        assert {
            f.fingerprint for f in report.findings
            if f.rule == "unmapped-module"
        } == {"unmapped-module:pkg.rogue", "unmapped-module:pkg.rogue.x"}

    def test_module_override_maps_top_level_files(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/util.py"] = "U = 1\n"
        mapped = contract(modules={"pkg.util": "low", "pkg": "high"})
        report = run_check(tmp_path, files, the_contract=mapped)
        assert report.findings == []

    def test_bad_contract_is_a_config_error(self):
        with pytest.raises(ConfigError):
            LayerContract.from_dict({"project": {"package": "pkg"}})
        with pytest.raises(ConfigError):
            contract(layers={"low": ["nope"]})
        with pytest.raises(ConfigError):
            contract(modules={"pkg.util": "nope"})

    def test_missing_contract_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            LayerContract.load(tmp_path / "absent.toml")


# -- call graph / mutation pass -----------------------------------------------


MUTATION_TREE = {
    "pkg/__init__.py": "",
    "pkg/low/__init__.py": "",
    "pkg/low/state.py": (
        "COUNTERS = {}\n"
        "def bump(key):\n"
        "    COUNTERS[key] = COUNTERS.get(key, 0) + 1\n"
    ),
    "pkg/mid/__init__.py": "",
    "pkg/mid/engine.py": (
        "from pkg.low.state import bump\n"
        "class Engine:\n"
        "    def run(self):\n"
        "        return self.step()\n"
        "    def step(self):\n"
        "        bump('ticks')\n"
    ),
}


class TestMutationPass:
    def entry_contract(self, *entrypoints):
        return contract(callgraph={"entrypoints": list(entrypoints)})

    def test_transitive_module_state_mutation_found(self, tmp_path):
        report = run_check(
            tmp_path, MUTATION_TREE,
            the_contract=self.entry_contract("pkg.mid.engine.Engine.run"),
        )
        hits = [
            f for f in report.findings
            if f.rule == "timing-critical-mutation"
        ]
        assert len(hits) == 1
        assert "Engine.run -> pkg.mid.engine.Engine.step -> " \
            "pkg.low.state.bump" in hits[0].message
        assert hits[0].fingerprint == (
            "timing-critical-mutation:pkg.mid.engine.Engine.run:"
            "pkg.low.state.bump:COUNTERS"
        )

    def test_shared_config_mutation_through_attribute_type(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/tuner.py": (
                "class Tuner:\n"
                "    def apply(self, config):\n"
                "        config.speed = 99\n"
            ),
            "pkg/mid/__init__.py": "",
            "pkg/mid/engine.py": (
                "from pkg.low.tuner import Tuner\n"
                "class Engine:\n"
                "    def __init__(self):\n"
                "        self.tuner = Tuner()\n"
                "    def run(self, config):\n"
                "        self.tuner.apply(config)\n"
            ),
        }
        report = run_check(
            tmp_path, files,
            the_contract=self.entry_contract("pkg.mid.engine.Engine.run"),
        )
        hits = [
            f for f in report.findings
            if f.rule == "timing-critical-mutation"
        ]
        assert len(hits) == 1
        assert hits[0].message.startswith(
            "pkg.mid.engine.Engine.run -> pkg.low.tuner.Tuner.apply"
        )
        assert "shared config" in hits[0].message

    def test_unreachable_mutation_not_flagged(self, tmp_path):
        report = run_check(
            tmp_path, MUTATION_TREE,
            the_contract=self.entry_contract("pkg.low.state.bump"),
        )
        # bump itself mutates, so entry at bump still reports; entry at
        # a function that never reaches bump must not.
        files = dict(MUTATION_TREE)
        files["pkg/mid/pure.py"] = "def quiet():\n    return 7\n"
        clean = run_check(
            tmp_path, files,
            the_contract=self.entry_contract("pkg.mid.pure.quiet"),
        )
        assert [
            f.rule for f in clean.findings
            if f.rule == "timing-critical-mutation"
        ] == []
        assert report.findings  # direct entry does report

    def test_local_and_self_mutations_are_clean(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/calc.py": (
                "TABLE = {}\n"
                "class Calc:\n"
                "    def __init__(self):\n"
                "        self.cache = {}\n"
                "    def run(self, items):\n"
                "        TABLE = {}\n"           # local shadows the global
                "        TABLE['x'] = 1\n"
                "        self.cache['y'] = 2\n"  # own state is fine
                "        out = []\n"
                "        out.append(3)\n"
                "        return out\n"
            ),
        }
        report = run_check(
            tmp_path, files,
            the_contract=self.entry_contract("pkg.low.calc.Calc.run"),
        )
        assert [
            f.rule for f in report.findings
            if f.rule == "timing-critical-mutation"
        ] == []

    def test_global_statement_is_flagged(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/g.py": (
                "TICKS = 0\n"
                "def tick():\n"
                "    global TICKS\n"
                "    TICKS = TICKS + 1\n"
            ),
        }
        report = run_check(
            tmp_path, files,
            the_contract=self.entry_contract("pkg.low.g.tick"),
        )
        hits = [
            f for f in report.findings
            if f.rule == "timing-critical-mutation"
        ]
        assert len(hits) == 1 and "TICKS" in hits[0].message

    def test_unknown_entrypoint_is_a_finding(self, tmp_path):
        report = run_check(
            tmp_path, CLEAN_TREE,
            the_contract=self.entry_contract("pkg.mid.work.nope"),
        )
        assert [f.rule for f in report.findings] == ["unknown-entrypoint"]


# -- dead / undeclared exports ------------------------------------------------


class TestExportChecks:
    def test_dead_export_found_and_live_ones_kept(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/util.py": (
                "def used():\n    return 1\n"
                "def orphan():\n    return 2\n"
                "def _private_helper():\n    return 3\n"
            ),
            "pkg/mid/__init__.py": "",
            "pkg/mid/work.py": (
                "from pkg.low.util import used\n"
                "def work():\n    return used()\n"
            ),
        })
        findings = check_dead_exports(graph)
        # `work` is dead too (nothing references it), `orphan` is dead,
        # `used` is alive, `_private_helper` is out of scope.
        assert {f.fingerprint for f in findings} == {
            "dead-export:pkg.low.util.orphan",
            "dead-export:pkg.mid.work.work",
        }

    def test_reference_roots_keep_exports_alive(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/util.py": "def orphan():\n    return 2\n",
        })
        tests_dir = write_tree(tmp_path / "tests", {
            "test_util.py": (
                "from pkg.low.util import orphan\n"
                "def test_orphan():\n    assert orphan() == 2\n"
            ),
        })
        assert check_dead_exports(graph) != []
        assert check_dead_exports(graph, reference_roots=[tests_dir]) == []

    def test_ignore_patterns(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/util.py": "def orphan():\n    return 2\n",
        })
        assert check_dead_exports(graph, ignore=["pkg.low.*"]) == []

    def test_undeclared_import_is_a_finding(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": (
                "from pkg.low.util import real, ghost\n"
            ),
            "pkg/low/util.py": "def real():\n    return 1\n",
        })
        findings = check_undeclared_exports(graph)
        assert [f.fingerprint for f in findings] == [
            "undeclared-export:pkg.low:pkg.low.util.ghost"
        ]

    def test_importing_a_submodule_name_is_declared(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "from pkg import low\n",
            "pkg/low/__init__.py": "from pkg.low import util\n",
            "pkg/low/util.py": "X = 1\n",
        })
        assert check_undeclared_exports(graph) == []

    def test_all_ghost_entry_is_a_finding(self, tmp_path):
        graph = make_graph(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/low/__init__.py": "",
            "pkg/low/util.py": (
                "__all__ = ['real', 'phantom']\n"
                "def real():\n    return 1\n"
            ),
        })
        findings = check_undeclared_exports(graph)
        assert [f.fingerprint for f in findings] == [
            "undeclared-export:pkg.low.util:__all__.phantom"
        ]


# -- baseline ratchet ---------------------------------------------------------


class TestBaselineRatchet:
    #: fingerprint of the deliberate violation every ratchet test plants
    WAIVED = "forbidden-import:pkg.mid.sneak->pkg.high.top"

    def _tree(self):
        # mid -> high is forbidden and acyclic (nothing imports sneak)
        files = dict(CLEAN_TREE)
        files["pkg/mid/sneak.py"] = (
            "from pkg.high.top import top\n"
            "def sneak():\n"
            "    return top()\n"
        )
        return files

    def _baseline(self, tmp_path, entries):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": 1, "entries": entries}
        ))
        return Baseline.load(path)

    def test_baselined_finding_passes_and_is_reported(self, tmp_path):
        baseline = self._baseline(tmp_path, [{
            "fingerprint": self.WAIVED,
            "justification": "historical helper, tracked in #42",
        }])
        report = run_check(tmp_path, self._tree(), baseline=baseline)
        assert report.ok
        assert [f.fingerprint for f in report.baselined] == [self.WAIVED]

    def test_new_finding_still_fails(self, tmp_path):
        baseline = self._baseline(tmp_path, [{
            "fingerprint": self.WAIVED,
            "justification": "historical helper",
        }])
        files = self._tree()
        files["pkg/low/sneak2.py"] = "from pkg.mid.work import work\n"
        report = run_check(tmp_path, files, baseline=baseline)
        assert not report.ok
        assert [f.fingerprint for f in report.findings] == [
            "forbidden-import:pkg.low.sneak2->pkg.mid.work"
        ]

    def test_stale_entry_is_surfaced(self, tmp_path):
        baseline = self._baseline(tmp_path, [{
            "fingerprint": "forbidden-import:pkg.gone->pkg.also.gone",
            "justification": "was fixed long ago",
        }])
        report = run_check(tmp_path, CLEAN_TREE, baseline=baseline)
        assert report.ok
        assert report.stale == [
            "forbidden-import:pkg.gone->pkg.also.gone"
        ]

    def test_unjustified_entry_fails_the_gate(self, tmp_path):
        baseline = self._baseline(tmp_path, [{
            "fingerprint": self.WAIVED,
            "justification": "",
        }])
        report = run_check(tmp_path, self._tree(), baseline=baseline)
        assert [f.rule for f in report.findings] == ["unjustified-baseline"]

    def test_update_baseline_writes_todo_that_still_fails(self, tmp_path):
        baseline = self._baseline(tmp_path, [])
        report = run_check(
            tmp_path, self._tree(), baseline=baseline, update_baseline=True,
        )
        written = json.loads((tmp_path / "baseline.json").read_text())
        assert written["entries"][0]["justification"] == TODO_JUSTIFICATION
        # the violation is recorded, but the TODO stub keeps failing
        assert [f.rule for f in report.findings] == ["unjustified-baseline"]

    def test_update_baseline_preserves_existing_justifications(
        self, tmp_path
    ):
        baseline = self._baseline(tmp_path, [{
            "fingerprint": self.WAIVED,
            "justification": "historical helper, tracked in #42",
        }])
        run_check(
            tmp_path, self._tree(), baseline=baseline, update_baseline=True,
        )
        written = json.loads((tmp_path / "baseline.json").read_text())
        assert written["entries"][0]["justification"] == (
            "historical helper, tracked in #42"
        )

    def test_malformed_baseline_is_a_config_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"entries\": 7}")
        with pytest.raises(ConfigError):
            Baseline.load(path)


# -- graph export -------------------------------------------------------------


class TestGraphExport:
    def test_dot_output_shape(self, tmp_path):
        graph = make_graph(tmp_path, CLEAN_TREE)
        dot = to_dot(graph, contract())
        assert dot.startswith("digraph layers {")
        assert '"mid" -> "low"' in dot
        assert '"high" -> "mid"' in dot
        assert "red" not in dot

    def test_forbidden_edge_is_red(self, tmp_path):
        files = dict(CLEAN_TREE)
        files["pkg/low/base.py"] = (
            "from pkg.high.top import top\n"
            "def helper():\n    return top()\n"
        )
        graph = make_graph(tmp_path, files)
        dot = to_dot(graph, contract())
        assert '"low" -> "high" [label="1", color="red", penwidth=2.0];' \
            in dot

    def test_graph_dict_round_trips_through_json(self, tmp_path):
        graph = make_graph(tmp_path, CLEAN_TREE)
        payload = json.loads(json.dumps(graph_to_dict(graph, contract())))
        assert payload["package"] == "pkg"
        assert payload["modules"]["pkg.mid.work"]["layer"] == "mid"
        assert payload["modules"]["pkg.mid.work"]["imports"] == [
            "pkg.low.base"
        ]


# -- the repository gate ------------------------------------------------------


class TestRepositoryGate:
    def test_repo_tip_is_clean_under_its_own_contract(self):
        """The acceptance gate: the shipped tree passes archcheck."""
        the_contract = LayerContract.load(REPO_ROOT / "archcontract.toml")
        baseline = Baseline.load(REPO_ROOT / "archcheck-baseline.json")
        check = ArchCheck(the_contract, REPO_ROOT / "src", baseline=baseline)
        report = check.run()
        assert report.findings == [], [f.message for f in report.findings]
        assert report.stale == []
        # every waiver carries a real justification
        assert all(
            j.strip() and j != TODO_JUSTIFICATION
            for j in baseline.entries.values()
        )

    def test_repo_callgraph_reaches_the_memory_model(self):
        """The replay entry point must actually traverse into memory/."""
        graph = ModuleGraph.build(REPO_ROOT / "src", packages=["repro"])
        cg = CallGraph(graph)
        entry = "repro.sim.replay.TraceReplayer.run"
        seen = {entry}
        queue = [entry]
        while queue:
            for callee in sorted(cg.functions[queue.pop(0)].calls):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        assert any(q.startswith("repro.memory.") for q in seen)
        assert any(q.startswith("repro.core.") for q in seen)


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def _write_fixture(self, tmp_path, files, baseline_entries=None):
        src = write_tree(tmp_path / "src", files)
        contract_path = tmp_path / "archcontract.toml"
        contract_path.write_text(
            '[project]\npackage = "pkg"\n\n'
            "[layers]\n"
            "low = []\n"
            'mid = ["low"]\n'
            'high = ["mid", "low"]\n\n'
            "[modules]\n"
            '"pkg" = "high"\n\n'
            "[deadcode]\n"
            'ignore = ["*"]\n'
        )
        baseline_path = tmp_path / "baseline.json"
        if baseline_entries is not None:
            baseline_path.write_text(json.dumps(
                {"version": 1, "entries": baseline_entries}
            ))
        return src, contract_path, baseline_path

    def _argv(self, src, contract_path, baseline_path, *extra):
        return [
            "archcheck", "--src", str(src),
            "--contract", str(contract_path),
            "--baseline", str(baseline_path),
            *extra,
        ]

    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        src, ct, bl = self._write_fixture(tmp_path, CLEAN_TREE)
        assert main(self._argv(src, ct, bl)) == 0
        out = capsys.readouterr().out
        assert "archcheck: no findings" in out
        assert "modules" in out

    def test_forbidden_edge_exits_one_with_json(self, tmp_path, capsys):
        files = dict(CLEAN_TREE)
        files["pkg/low/sneak.py"] = "from pkg.mid.work import work\n"
        src, ct, bl = self._write_fixture(tmp_path, files)
        assert main(self._argv(src, ct, bl, "--format", "json")) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "archcheck"
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "forbidden-import"
        assert payload["findings"][0]["fingerprint"] == (
            "forbidden-import:pkg.low.sneak->pkg.mid.work"
        )

    def test_dot_and_graph_json_written(self, tmp_path, capsys):
        src, ct, bl = self._write_fixture(tmp_path, CLEAN_TREE)
        dot_path = tmp_path / "layers.dot"
        gj_path = tmp_path / "graph.json"
        assert main(self._argv(
            src, ct, bl, "--dot", str(dot_path),
            "--graph-json", str(gj_path),
        )) == 0
        capsys.readouterr()
        assert dot_path.read_text().startswith("digraph layers {")
        graph = json.loads(gj_path.read_text())
        assert graph["modules"]["pkg.high.top"]["layer"] == "high"

    def test_missing_contract_is_fatal(self, tmp_path, capsys):
        src = write_tree(tmp_path / "src", CLEAN_TREE)
        code = main([
            "archcheck", "--src", str(src),
            "--contract", str(tmp_path / "absent.toml"),
            "--baseline", str(tmp_path / "baseline.json"),
        ])
        assert code == 2
        assert "no architecture contract" in capsys.readouterr().err

    def test_repo_defaults_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["archcheck"]) == 0
        out = capsys.readouterr().out
        assert "archcheck: no findings" in out
        assert "baselined: 1" in out
