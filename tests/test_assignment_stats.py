"""Tests for schedule edge-capture and fairness statistics."""

import pytest

from repro.config import GPUConfig
from repro.core.assignment_stats import compare_schedules, schedule_stats
from repro.core.quad_grouping import get_grouping
from repro.core.scheduler import QuadScheduler
from repro.core.subtile_assignment import get_assignment


@pytest.fixture(scope="module")
def config():
    return GPUConfig(screen_width=256, screen_height=256)  # 8x8 tiles


def make(config, grouping="CG-square", assignment="const", order="hilbert"):
    return QuadScheduler(
        config=config,
        grouping=get_grouping(grouping),
        assignment=get_assignment(assignment),
        order_name=order,
    )


class TestEdgeCapture:
    def test_const_on_hilbert_captures_nothing(self, config):
        stats = schedule_stats(make(config, assignment="const"))
        assert stats.capture_rate == 0.0

    def test_flp1_captures_edges(self, config):
        stats = schedule_stats(make(config, assignment="flp1"))
        assert stats.capture_rate > 0.4

    def test_flp2_captures_like_flp1(self, config):
        flp1 = schedule_stats(make(config, assignment="flp1"))
        flp2 = schedule_stats(make(config, assignment="flp2"))
        assert flp2.capture_rate >= flp1.capture_rate * 0.8

    def test_sorder_yrect_const_captures(self, config):
        """Sorder + horizontal strips: strip continuity across columns
        means vertical steps are the only boundary, captured by flp."""
        const = schedule_stats(
            make(config, grouping="CG-yrect", assignment="const",
                 order="sorder")
        )
        flp = schedule_stats(
            make(config, grouping="CG-yrect", assignment="flp1",
                 order="sorder")
        )
        assert flp.capture_rate > const.capture_rate

    def test_adjacent_steps_counted(self, config):
        stats = schedule_stats(make(config, order="sorder"))
        assert stats.adjacent_steps == config.num_tiles - 1


class TestFairness:
    def test_flp1_unfair_on_hilbert(self, config):
        """The paper's Fig 8(d) observation, as a number."""
        stats = schedule_stats(make(config, assignment="flp1"))
        assert stats.fairness < 0.9

    def test_flp2_fairer_than_flp1(self, config):
        flp1 = schedule_stats(make(config, assignment="flp1"))
        flp2 = schedule_stats(make(config, assignment="flp2"))
        assert flp2.fairness > flp1.fairness

    def test_flp3_fairer_than_flp1(self, config):
        flp1 = schedule_stats(make(config, assignment="flp1"))
        flp3 = schedule_stats(make(config, assignment="flp3"))
        assert flp3.fairness > flp1.fairness

    def test_fairness_is_one_when_no_captures(self, config):
        stats = schedule_stats(make(config, assignment="const"))
        assert stats.fairness == 1.0


class TestCompare:
    def test_compare_many(self, config):
        stats = compare_schedules(
            {
                "const": make(config, assignment="const"),
                "flp2": make(config, assignment="flp2"),
            }
        )
        assert set(stats) == {"const", "flp2"}
        assert stats["flp2"].capture_rate > stats["const"].capture_rate
