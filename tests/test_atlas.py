"""Tests for texture atlases."""

import pytest

from repro.texture.texture import Texture
from repro.workloads.atlas import TextureAtlas


@pytest.fixture
def texture():
    return Texture(0, 256, 256, base_address=1 << 28)


class TestLayout:
    def test_region_count(self, texture):
        atlas = TextureAtlas(texture, grid=4)
        assert atlas.num_regions == 16

    def test_regions_cover_unit_square_disjointly(self, texture):
        atlas = TextureAtlas(texture, grid=4, padding_texels=0)
        for a in atlas.regions:
            for b in atlas.regions:
                if a.index == b.index:
                    continue
                overlap_u = min(a.u1, b.u1) - max(a.u0, b.u0)
                overlap_v = min(a.v1, b.v1) - max(a.v0, b.v0)
                assert overlap_u <= 0 or overlap_v <= 0

    def test_padding_shrinks_regions(self, texture):
        tight = TextureAtlas(texture, grid=4, padding_texels=0).region(0)
        padded = TextureAtlas(texture, grid=4, padding_texels=2).region(0)
        assert padded.width < tight.width
        assert padded.u0 > tight.u0

    def test_region_wraps(self, texture):
        atlas = TextureAtlas(texture, grid=2)
        assert atlas.region(5).index == atlas.region(1).index

    def test_uv_rect_in_unit_range(self, texture):
        atlas = TextureAtlas(texture, grid=8, padding_texels=1)
        for region in atlas.regions:
            u0, v0, u1, v1 = region.uv_rect()
            assert 0.0 <= u0 < u1 <= 1.0
            assert 0.0 <= v0 < v1 <= 1.0

    def test_rejects_bad_grid(self, texture):
        with pytest.raises(ValueError):
            TextureAtlas(texture, grid=0)

    def test_rejects_excessive_padding(self, texture):
        with pytest.raises(ValueError):
            TextureAtlas(texture, grid=64, padding_texels=3)


class TestCacheBehaviour:
    def test_morton_keeps_regions_mostly_disjoint(self, texture):
        """Grid cells aligned to Morton blocks share almost no lines."""
        atlas = TextureAtlas(texture, grid=4, padding_texels=0)
        a = atlas.region_footprint_lines(0)
        b = atlas.region_footprint_lines(5)
        assert not (a & b)

    def test_neighbouring_regions_compact(self, texture):
        """A region's texels occupy a contiguous-ish line range."""
        atlas = TextureAtlas(texture, grid=4, padding_texels=0)
        lines = atlas.region_footprint_lines(0)
        # 64x64 texels * 4 B / 64 B = 256 lines exactly for cell (0, 0).
        assert len(lines) == 256

    def test_isolation_flag(self, texture):
        assert TextureAtlas(texture, padding_texels=1).regions_share_no_texels()
        assert not TextureAtlas(
            texture, padding_texels=0
        ).regions_share_no_texels()
