"""Tests for the set-associative LRU cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.memory.cache import Cache, CacheStats


def make_cache(size=1024, line=64, ways=2) -> Cache:
    return Cache(CacheConfig("test", size, line_bytes=line, associativity=ways))


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = make_cache()
        assert cache.access(0) is False

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(0) is True

    def test_same_line_different_bytes_hit(self):
        cache = make_cache(line=64)
        cache.access(0)
        assert cache.access(63) is True

    def test_adjacent_line_misses(self):
        cache = make_cache(line=64)
        cache.access(0)
        assert cache.access(64) is False

    def test_access_line_equivalent_to_access(self):
        a, b = make_cache(), make_cache()
        addresses = [0, 64, 128, 0, 4096, 64]
        results_a = [a.access(addr) for addr in addresses]
        results_b = [b.access_line(addr // 64) for addr in addresses]
        assert results_a == results_b

    def test_line_of(self):
        cache = make_cache(line=64)
        assert cache.line_of(0) == 0
        assert cache.line_of(63) == 0
        assert cache.line_of(64) == 1

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            make_cache(size=960, line=48)


class TestLRUReplacement:
    def test_eviction_when_set_full(self):
        # 1024B / 64B / 2-way = 8 sets; lines 0, 8, 16 map to set 0.
        cache = make_cache(size=1024, line=64, ways=2)
        cache.access_line(0)
        cache.access_line(8)
        cache.access_line(16)  # evicts line 0 (LRU)
        assert cache.access_line(0) is False
        assert cache.stats.evictions >= 1

    def test_lru_order_updated_on_hit(self):
        cache = make_cache(size=1024, line=64, ways=2)
        cache.access_line(0)
        cache.access_line(8)
        cache.access_line(0)   # 0 becomes MRU
        cache.access_line(16)  # evicts 8, not 0
        assert cache.access_line(0) is True
        assert cache.access_line(8) is False

    def test_different_sets_do_not_conflict(self):
        cache = make_cache(size=1024, line=64, ways=2)
        for line in range(8):  # one line per set
            cache.access_line(line)
        assert all(cache.access_line(line) for line in range(8))

    def test_capacity_respected(self):
        cache = make_cache(size=1024, line=64, ways=2)
        for line in range(100):
            cache.access_line(line)
        assert cache.resident_lines <= cache.config.num_lines


class TestProbeAndInvalidate:
    def test_probe_does_not_change_state(self):
        cache = make_cache()
        cache.access(0)
        before = cache.stats.accesses
        assert cache.probe(0) is True
        assert cache.probe(4096) is False
        assert cache.stats.accesses == before

    def test_invalidate_single_line(self):
        cache = make_cache()
        cache.access(0)
        cache.invalidate(0)
        assert cache.probe(0) is False

    def test_invalidate_all(self):
        cache = make_cache()
        for line in range(5):
            cache.access_line(line)
        cache.invalidate()
        assert cache.resident_lines == 0

    def test_reset_clears_stats_and_contents(self):
        cache = make_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines == 0


class TestStats:
    def test_counters_consistent(self):
        cache = make_cache()
        for addr in [0, 0, 64, 64, 128]:
            cache.access(addr)
        stats = cache.stats
        assert stats.accesses == 5
        assert stats.hits + stats.misses == stats.accesses
        assert stats.hits == 2

    def test_rates(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.miss_rate == pytest.approx(0.3)

    def test_rates_zero_when_untouched(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats().miss_rate == 0.0

    def test_merge(self):
        merged = CacheStats(1, 1, 0, 0).merge(CacheStats(2, 0, 2, 1))
        assert merged.accesses == 3
        assert merged.hits == 1
        assert merged.misses == 2
        assert merged.evictions == 1

    def test_resident_line_set(self):
        cache = make_cache()
        cache.access_line(3)
        cache.access_line(11)
        assert cache.resident_line_set() == {3, 11}


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_misses_at_least_unique_lines_capped(self, lines):
        """Cold misses: every distinct line must miss at least once."""
        cache = make_cache(size=1024, line=64, ways=2)
        for line in lines:
            cache.access_line(line)
        assert cache.stats.misses >= len(set(lines)) - cache.config.num_lines

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stats_always_consistent(self, lines):
        cache = make_cache()
        for line in lines:
            cache.access_line(line)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(lines)
        assert stats.evictions <= stats.misses
        assert cache.resident_lines <= cache.config.num_lines

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, line):
        cache = make_cache()
        cache.access_line(line)
        assert cache.access_line(line) is True

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=100)
    )
    @settings(max_examples=50, deadline=None)
    def test_working_set_within_one_way_never_evicts(self, lines):
        """Distinct sets, single line each: no conflict, no eviction."""
        cache = make_cache(size=1024, line=64, ways=2)  # 8 sets
        for line in lines:
            cache.access_line(line)
        assert cache.stats.evictions == 0
