"""Tests for trace checkpointing: round trips, tampering, resume."""

import dataclasses
import json

import pytest

from repro.core.dtexl import BASELINE, DTEXL_BEST
from repro.errors import TraceIntegrityError
from repro.sim.checkpoint import (
    SweepProgress,
    TraceCheckpointStore,
    campaign_key,
    config_hash,
    trace_key,
    verify_trace,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.multiframe import AnimationSimulator
from repro.sim.replay import TraceReplayer
from repro.workloads.animation import Animation
from repro.workloads.games import GAMES


@pytest.fixture()
def store(tmp_path):
    return TraceCheckpointStore(tmp_path / "traces")


@pytest.fixture(scope="module")
def game_trace(tiny_config):
    runner = ExperimentRunner(tiny_config, games=["SWa"])
    return runner.trace_for("SWa")


class TestKeys:
    def test_key_is_stable(self, tiny_config):
        recipe = GAMES["SWa"].recipe
        assert trace_key(tiny_config, recipe) == trace_key(tiny_config, recipe)

    def test_key_depends_on_config(self, tiny_config, small_config):
        recipe = GAMES["SWa"].recipe
        assert trace_key(tiny_config, recipe) != trace_key(small_config, recipe)

    def test_key_depends_on_recipe_and_frame(self, tiny_config):
        assert (
            trace_key(tiny_config, GAMES["SWa"].recipe)
            != trace_key(tiny_config, GAMES["GTr"].recipe)
        )
        assert (
            trace_key(tiny_config, GAMES["SWa"].recipe, frame=0)
            != trace_key(tiny_config, GAMES["SWa"].recipe, frame=1)
        )

    def test_config_hash_sensitivity(self, tiny_config, small_config):
        assert config_hash(tiny_config) != config_hash(small_config)
        assert config_hash(tiny_config) == config_hash(
            dataclasses.replace(tiny_config)
        )


class TestRoundTrip:
    def test_replay_results_identical(self, store, tiny_config, game_trace):
        key = trace_key(tiny_config, GAMES["SWa"].recipe)
        store.save(key, game_trace)
        loaded = store.load(key)
        replayer = TraceReplayer(tiny_config)
        for design in (BASELINE, DTEXL_BEST):
            original = replayer.run(game_trace, design)
            reloaded = replayer.run(loaded, design)
            assert reloaded == original

    def test_contains(self, store, tiny_config, game_trace):
        key = trace_key(tiny_config, GAMES["SWa"].recipe)
        assert not store.contains(key)
        store.save(key, game_trace)
        assert store.contains(key)

    def test_missing_checkpoint_raises(self, store):
        with pytest.raises(TraceIntegrityError):
            store.load("no-such-key")


class TestTamperDetection:
    def _saved(self, store, tiny_config, trace):
        key = trace_key(tiny_config, GAMES["SWa"].recipe)
        path = store.save(key, trace)
        return key, path

    def test_flipped_payload_byte(self, store, tiny_config, game_trace):
        key, path = self._saved(store, tiny_config, game_trace)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceIntegrityError, match="hash mismatch"):
            store.load(key)

    def test_truncated_payload(self, store, tiny_config, game_trace):
        key, path = self._saved(store, tiny_config, game_trace)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceIntegrityError):
            store.load(key)

    def test_corrupt_header(self, store, tiny_config, game_trace):
        key, path = self._saved(store, tiny_config, game_trace)
        blob = path.read_bytes()
        path.write_bytes(b"not json at all\n" + blob.split(b"\n", 1)[1])
        with pytest.raises(TraceIntegrityError):
            store.load(key)

    def test_key_mismatch(self, store, tiny_config, game_trace):
        key, path = self._saved(store, tiny_config, game_trace)
        other = "0" * 64
        path.rename(store.path_for(other))
        with pytest.raises(TraceIntegrityError, match="written for key"):
            store.load(other)

    def test_wrong_version(self, store, tiny_config, game_trace):
        key, path = self._saved(store, tiny_config, game_trace)
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        header["version"] = 99
        path.write_bytes(
            json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        )
        with pytest.raises(TraceIntegrityError, match="version"):
            store.load(key)


class TestStructuralInvariants:
    def test_good_trace_verifies(self, game_trace):
        verify_trace(game_trace)

    def test_missing_tile_detected(self, game_trace):
        broken = dataclasses.replace(game_trace, tiles=dict(game_trace.tiles))
        broken.tiles.pop(next(iter(broken.tiles)))
        with pytest.raises(TraceIntegrityError, match="tile map"):
            verify_trace(broken)

    def test_quad_count_mismatch_detected(self, game_trace):
        stats = dataclasses.replace(
            game_trace.stats, num_quads=game_trace.stats.num_quads + 1
        )
        with pytest.raises(TraceIntegrityError, match="quads"):
            verify_trace(dataclasses.replace(game_trace, stats=stats))

    def test_pixel_count_mismatch_detected(self, game_trace):
        stats = dataclasses.replace(
            game_trace.stats, pixels_shaded=game_trace.stats.pixels_shaded + 1
        )
        with pytest.raises(TraceIntegrityError, match="pixels"):
            verify_trace(dataclasses.replace(game_trace, stats=stats))


class TestRunnerIntegration:
    def test_second_runner_renders_nothing(self, tmp_path, tiny_config):
        store = TraceCheckpointStore(tmp_path / "traces")
        first = ExperimentRunner(
            tiny_config, games=["SWa"], checkpoint_store=store
        )
        first.run_suite(BASELINE)
        assert first.renders_performed == 1
        second = ExperimentRunner(
            tiny_config, games=["SWa"], checkpoint_store=store
        )
        result = second.run_suite(BASELINE)
        assert second.renders_performed == 0
        assert result.per_game["SWa"] == first.run_suite(BASELINE).per_game["SWa"]

    def test_corrupted_checkpoint_is_rerendered(self, tmp_path, tiny_config):
        store = TraceCheckpointStore(tmp_path / "traces")
        first = ExperimentRunner(
            tiny_config, games=["SWa"], checkpoint_store=store
        )
        first.trace_for("SWa")
        key = trace_key(tiny_config, GAMES["SWa"].recipe)
        path = store.path_for(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        second = ExperimentRunner(
            tiny_config, games=["SWa"], checkpoint_store=store
        )
        second.trace_for("SWa")
        assert second.renders_performed == 1
        # ... and the re-render healed the checkpoint.
        third = ExperimentRunner(
            tiny_config, games=["SWa"], checkpoint_store=store
        )
        third.trace_for("SWa")
        assert third.renders_performed == 0


class TestMultiFrameCheckpoints:
    def test_animation_resume_renders_zero(self, tmp_path, tiny_config):
        store = TraceCheckpointStore(tmp_path / "traces")
        animation = Animation.of_game("SWa", num_frames=2)
        first = AnimationSimulator(tiny_config, checkpoint_store=store)
        result1 = first.run(animation, BASELINE)
        assert first.renders_performed == 2
        second = AnimationSimulator(tiny_config, checkpoint_store=store)
        result2 = second.run(animation, BASELINE)
        assert second.renders_performed == 0
        assert [f.l2_accesses for f in result2.frames] == [
            f.l2_accesses for f in result1.frames
        ]
        assert result2.total_cycles == result1.total_cycles


class TestSweepProgress:
    def test_rows_scoped_by_campaign(self, tmp_path):
        a = SweepProgress(tmp_path, "campaign-a")
        b = SweepProgress(tmp_path, "campaign-b")
        a.record("p1", {"speedup": 1.0})
        b.record("p1", {"speedup": 2.0})
        assert a.completed_rows()["p1"] == {"speedup": 1.0}
        assert b.completed_rows()["p1"] == {"speedup": 2.0}

    def test_malformed_lines_skipped(self, tmp_path):
        progress = SweepProgress(tmp_path, "c")
        progress.record("p1", {"x": 1})
        with open(progress.path, "a") as handle:
            handle.write("{truncated json\n")
        progress.record("p2", {"x": 2})
        assert set(progress.completed_rows()) == {"p1", "p2"}

    def test_campaign_key_depends_on_games(self, tiny_config):
        assert campaign_key(tiny_config, ["SWa"], "baseline") != campaign_key(
            tiny_config, ["SWa", "GTr"], "baseline"
        )
