"""The reporting machinery shared by replint, archcheck and faultcheck."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.checks_common import (
    Finding,
    format_json,
    format_text,
    is_timing_critical,
    sort_findings,
)


def finding(**overrides) -> Finding:
    base = dict(
        path="src/repro/sim/engine.py", line=10, col=4,
        rule="some-rule", message="something is off",
    )
    base.update(overrides)
    return Finding(**base)


class TestFinding:
    def test_as_dict_omits_empty_fingerprint(self):
        payload = finding().as_dict()
        assert "fingerprint" not in payload
        assert payload["rule"] == "some-rule"

    def test_as_dict_includes_set_fingerprint(self):
        payload = finding(fingerprint="some-rule:a:b").as_dict()
        assert payload["fingerprint"] == "some-rule:a:b"

    def test_location_is_grep_style(self):
        assert finding().location() == "src/repro/sim/engine.py:10:4"

    def test_findings_are_immutable_and_hashable(self):
        a = finding()
        b = finding()
        assert a == b
        assert len({a, b}) == 1


class TestSortFindings:
    def test_orders_by_path_line_col_rule(self):
        rows = [
            finding(path="b.py", line=1, col=0, rule="z"),
            finding(path="a.py", line=9, col=0, rule="z"),
            finding(path="a.py", line=1, col=5, rule="z"),
            finding(path="a.py", line=1, col=5, rule="a"),
        ]
        ordered = sort_findings(rows)
        assert [(f.path, f.line, f.col, f.rule) for f in ordered] == [
            ("a.py", 1, 5, "a"),
            ("a.py", 1, 5, "z"),
            ("a.py", 9, 0, "z"),
            ("b.py", 1, 0, "z"),
        ]

    def test_does_not_mutate_the_input(self):
        rows = [finding(line=2), finding(line=1)]
        sort_findings(rows)
        assert rows[0].line == 2


class TestFormatText:
    def test_empty_report_says_no_findings(self):
        assert format_text([], tool="faultcheck") == (
            "faultcheck: no findings"
        )

    def test_singular_and_plural_summaries(self):
        assert format_text([finding()]).endswith("replint: 1 finding")
        assert format_text([finding(), finding(line=11)]).endswith(
            "replint: 2 findings"
        )

    def test_lines_are_grep_style(self):
        text = format_text([finding()], tool="faultcheck")
        assert text.splitlines()[0] == (
            "src/repro/sim/engine.py:10:4: some-rule: something is off"
        )


class TestFormatJson:
    def test_shape_round_trips(self):
        payload = json.loads(format_json(
            [finding(fingerprint="f:p")], tool="faultcheck"
        ))
        assert payload["tool"] == "faultcheck"
        assert payload["count"] == 1
        assert payload["findings"][0]["fingerprint"] == "f:p"

    def test_extra_keys_merge_into_the_top_level(self):
        payload = json.loads(format_json(
            [], tool="faultcheck", stats={"modules": 3}, stale_baseline=[]
        ))
        assert payload["stats"] == {"modules": 3}
        assert payload["stale_baseline"] == []
        assert payload["count"] == 0

    def test_findings_come_out_sorted(self):
        payload = json.loads(format_json([
            finding(path="b.py"), finding(path="a.py"),
        ]))
        assert [row["path"] for row in payload["findings"]] == [
            "a.py", "b.py",
        ]


class TestTimingCritical:
    def test_simulator_packages_are_critical(self):
        assert is_timing_critical(Path("src/repro/sim/pipeline.py"))
        assert is_timing_critical(Path("src/repro/core/tile_order.py"))

    def test_reporting_packages_are_not(self):
        assert not is_timing_critical(Path("src/repro/analysis/tables.py"))
        assert not is_timing_critical(Path("tests/test_cli.py"))
