"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXIT_FATAL, EXIT_OK, EXIT_PARTIAL, build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_replay_collects_designs(self):
        args = build_parser().parse_args(
            ["replay", "GTr", "-d", "baseline", "-d", "HLB-flp2"]
        )
        assert args.design == ["baseline", "HLB-flp2"]

    def test_screen_parser_paper(self):
        args = build_parser().parse_args(["replay", "GTr", "--screen", "paper"])
        assert args.screen.screen_width == 1960

    def test_screen_parser_custom(self):
        args = build_parser().parse_args(["replay", "GTr", "--screen", "64x32"])
        assert args.screen.screen_width == 64
        assert args.screen.screen_height == 32

    def test_rejects_unknown_game(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "NOPE"])

    def test_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Candy Crush Saga" in out
        assert "HLB-flp2" in out
        assert "CG-square" in out

    def test_schedule(self, capsys):
        assert main(
            ["schedule", "--screen", "128x64", "--tiles", "2",
             "--grouping", "CG-yrect", "--order", "sorder"]
        ) == 0
        out = capsys.readouterr().out
        assert "CG-yrect" in out
        assert "step 1" in out

    def test_replay_table(self, capsys):
        assert main(
            ["replay", "SWa", "--screen", "128x64", "-d", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "L2 accesses" in out
        assert "baseline" in out

    def test_replay_json(self, capsys):
        assert main(
            ["replay", "SWa", "--screen", "128x64", "-d", "baseline",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["design_point"] == "baseline"

    def test_replay_unknown_design_errors(self, capsys):
        code = main(["replay", "SWa", "--screen", "128x64", "-d", "wat"])
        assert code != 0
        err = capsys.readouterr().err
        assert "unknown design point" in err
        assert "Traceback" not in err

    def test_render_writes_ppm(self, tmp_path, capsys):
        output = tmp_path / "frame.ppm"
        assert main(
            ["render", "SWa", "--screen", "128x64", "-o", str(output)]
        ) == 0
        assert output.read_bytes().startswith(b"P6 128 64")

    def test_suite_subset(self, capsys):
        assert main(
            ["suite", "--screen", "128x64", "--games", "SWa",
             "-d", "baseline", "-d", "CG-square-coupled"]
        ) == 0
        out = capsys.readouterr().out
        assert "CG-square-coupled" in out


class TestSweepAndAnimate:
    def test_sweep_table(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "CG-square",
             "--both-architectures"]
        ) == 0
        out = capsys.readouterr().out
        assert "best by speedup" in out
        assert "CG-square" in out

    def test_sweep_csv(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("grouping,assignment,order,decoupled")

    def test_animate(self, capsys):
        assert main(
            ["animate", "SWa", "--screen", "128x64", "--frames", "2",
             "-d", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "warm-up ratio" in out
        assert "baseline" in out

    def test_sweep_rejects_bad_task_timeout(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "--task-timeout", "0"]
        ) == EXIT_FATAL
        assert "task_timeout_s must be positive" in capsys.readouterr().err

    def test_chaos_smoke(self, capsys):
        assert main(
            ["chaos", "--trials", "1", "--seed", "0", "--jobs", "1"]
        ) == EXIT_OK
        out = capsys.readouterr().out
        assert "trial   0" in out
        assert "all trials converged" in out

    def test_chaos_json(self, capsys):
        assert main(
            ["chaos", "--trials", "1", "--seed", "0", "--jobs", "1",
             "--json"]
        ) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert len(payload["trials"]) == 1


class TestFriendlyErrors:
    """Bad names and bad values exit nonzero with a message, no traceback."""

    def test_suite_unknown_game(self, capsys):
        assert main(
            ["suite", "--screen", "128x64", "--games", "SWa,NOPE"]
        ) == EXIT_FATAL
        err = capsys.readouterr().err
        assert "unknown game" in err and "NOPE" in err
        assert "Traceback" not in err

    def test_sweep_unknown_game(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "XX"]
        ) == EXIT_FATAL
        err = capsys.readouterr().err
        assert "unknown game" in err
        assert "Traceback" not in err

    def test_suite_unknown_design(self, capsys):
        assert main(
            ["suite", "--screen", "128x64", "--games", "SWa", "-d", "nope"]
        ) == EXIT_FATAL
        err = capsys.readouterr().err
        assert "unknown design point" in err
        assert "Traceback" not in err

    def test_invalid_screen_value(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "SWa", "--screen", "0x32"])
        assert excinfo.value.code == 2
        assert "screen dimensions must be positive" in capsys.readouterr().err

    def test_malformed_screen_value(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", "SWa", "--screen", "huge"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa", "--resume"]
        ) == EXIT_FATAL
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_nonpositive_budget_rejected(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--budget", "0"]
        ) == EXIT_FATAL
        assert "--budget" in capsys.readouterr().err


class TestResilientSweepCli:
    def test_budget_kills_baseline_fatally(self, capsys):
        # The quad budget applies to every replay, baseline included;
        # a baseline that cannot run is fatal, not partial.
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "--budget", "1"]
        ) == EXIT_FATAL
        err = capsys.readouterr().err
        assert "quad budget" in err
        assert "Traceback" not in err

    def test_partial_failure_exit_code(self, capsys, monkeypatch):
        from repro.sim.replay import TraceReplayer
        from repro.errors import ReplayError

        real_run = TraceReplayer.run

        def sabotaged(self, trace, design, hierarchy=None):
            if design.grouping == "CG-square":
                raise ReplayError("injected")
            return real_run(self, trace, design, hierarchy=hierarchy)

        monkeypatch.setattr(TraceReplayer, "run", sabotaged)
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "CG-square"]
        ) == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert "FAILED CG-square/const/zorder/dec" in captured.err
        assert "ReplayError" in captured.err
        assert "failure(s)" in captured.out

    def test_checkpointed_sweep_resumes(self, tmp_path, capsys):
        args = ["sweep", "--screen", "128x64", "--games", "SWa",
                "--grouping", "FG-xshift2", "--csv",
                "--checkpoint-dir", str(tmp_path)]
        assert main(args) == EXIT_OK
        first_csv = capsys.readouterr().out
        assert main(args + ["--resume"]) == EXIT_OK
        assert capsys.readouterr().out == first_csv
        assert (tmp_path / "manifest.json").is_file()
        assert (tmp_path / "sweep_progress.jsonl").is_file()

    def test_max_retries_flag_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--max-retries", "2", "--budget", "100",
             "--checkpoint-dir", "d", "--resume"]
        )
        assert args.max_retries == 2
        assert args.budget == 100
        assert args.resume
