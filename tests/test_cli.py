"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_replay_collects_designs(self):
        args = build_parser().parse_args(
            ["replay", "GTr", "-d", "baseline", "-d", "HLB-flp2"]
        )
        assert args.design == ["baseline", "HLB-flp2"]

    def test_screen_parser_paper(self):
        args = build_parser().parse_args(["replay", "GTr", "--screen", "paper"])
        assert args.screen.screen_width == 1960

    def test_screen_parser_custom(self):
        args = build_parser().parse_args(["replay", "GTr", "--screen", "64x32"])
        assert args.screen.screen_width == 64
        assert args.screen.screen_height == 32

    def test_rejects_unknown_game(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "NOPE"])

    def test_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Candy Crush Saga" in out
        assert "HLB-flp2" in out
        assert "CG-square" in out

    def test_schedule(self, capsys):
        assert main(
            ["schedule", "--screen", "128x64", "--tiles", "2",
             "--grouping", "CG-yrect", "--order", "sorder"]
        ) == 0
        out = capsys.readouterr().out
        assert "CG-yrect" in out
        assert "step 1" in out

    def test_replay_table(self, capsys):
        assert main(
            ["replay", "SWa", "--screen", "128x64", "-d", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "L2 accesses" in out
        assert "baseline" in out

    def test_replay_json(self, capsys):
        assert main(
            ["replay", "SWa", "--screen", "128x64", "-d", "baseline",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["design_point"] == "baseline"

    def test_replay_unknown_design_errors(self):
        with pytest.raises(SystemExit):
            main(["replay", "SWa", "--screen", "128x64", "-d", "wat"])

    def test_render_writes_ppm(self, tmp_path, capsys):
        output = tmp_path / "frame.ppm"
        assert main(
            ["render", "SWa", "--screen", "128x64", "-o", str(output)]
        ) == 0
        assert output.read_bytes().startswith(b"P6 128 64")

    def test_suite_subset(self, capsys):
        assert main(
            ["suite", "--screen", "128x64", "--games", "SWa",
             "-d", "baseline", "-d", "CG-square-coupled"]
        ) == 0
        out = capsys.readouterr().out
        assert "CG-square-coupled" in out


class TestSweepAndAnimate:
    def test_sweep_table(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "CG-square",
             "--both-architectures"]
        ) == 0
        out = capsys.readouterr().out
        assert "best by speedup" in out
        assert "CG-square" in out

    def test_sweep_csv(self, capsys):
        assert main(
            ["sweep", "--screen", "128x64", "--games", "SWa",
             "--grouping", "FG-xshift2", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("grouping,assignment,order,decoupled")

    def test_animate(self, capsys):
        assert main(
            ["animate", "SWa", "--screen", "128x64", "--frames", "2",
             "-d", "baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "warm-up ratio" in out
        assert "baseline" in out
