"""Tests for the Color Buffer, per-bank flush, and the Frame Buffer."""

import numpy as np
import pytest

from repro.raster.blending import BlendingUnit
from repro.raster.color_buffer import ColorBuffer, FrameBuffer


class TestColorBuffer:
    def test_write_read_roundtrip(self):
        cb = ColorBuffer(32)
        cb.write(3, 5, (0.1, 0.2, 0.3))
        assert cb.read(3, 5) == pytest.approx((0.1, 0.2, 0.3))

    def test_clear_background(self):
        cb = ColorBuffer(32)
        cb.write(0, 0, (1, 1, 1))
        cb.clear((0.2, 0.2, 0.2))
        assert cb.read(0, 0) == pytest.approx((0.2, 0.2, 0.2))

    def test_rejects_odd_tile(self):
        with pytest.raises(ValueError):
            ColorBuffer(15)

    def test_flush_tile_writes_framebuffer(self):
        cb = ColorBuffer(32)
        fb = FrameBuffer(64, 64, 32)
        cb.write(0, 0, (1.0, 0.5, 0.25))
        cb.flush_tile(fb, (1, 1))
        assert fb.image[32, 32] == pytest.approx([1.0, 0.5, 0.25])
        assert cb.flushes == 1

    def test_flush_bank_only_touches_masked_pixels(self):
        cb = ColorBuffer(32)
        fb = FrameBuffer(32, 32, 32)
        cb.colors[:] = 0.7
        mask = np.zeros((32, 32), dtype=bool)
        mask[:16, :16] = True
        cb.flush_bank(fb, (0, 0), bank=0, bank_mask=mask)
        assert fb.image[0, 0, 0] == pytest.approx(0.7)
        assert fb.image[20, 20, 0] == 0.0
        assert cb.bank_tile_ids[0] == (0, 0)
        assert cb.bank_flushes == 1

    def test_bank_tile_ids_start_unset(self):
        cb = ColorBuffer(32)
        assert all(tile is None for tile in cb.bank_tile_ids.values())


class TestFrameBuffer:
    def test_edge_tiles_clipped(self):
        """A tile overhanging the screen writes only the valid region."""
        cb = ColorBuffer(32)
        fb = FrameBuffer(48, 48, 32)  # second tile column is half off-screen
        cb.colors[:] = 1.0
        cb.flush_tile(fb, (1, 1))
        assert fb.image[47, 47, 0] == 1.0
        assert fb.image.shape == (48, 48, 3)

    def test_to_ppm_header_and_size(self):
        fb = FrameBuffer(8, 4, 32)
        data = fb.to_ppm()
        assert data.startswith(b"P6 8 4 255\n")
        assert len(data) == len(b"P6 8 4 255\n") + 8 * 4 * 3

    def test_to_ppm_clamps(self):
        fb = FrameBuffer(2, 2, 32)
        fb.image[:] = 2.0
        body = fb.to_ppm().split(b"\n", 1)[1]
        assert body == b"\xff" * 12


class TestBlendingUnit:
    def test_opaque_replaces(self):
        cb = ColorBuffer(32)
        unit = BlendingUnit()
        cb.write(0, 0, (0.5, 0.5, 0.5))
        unit.emit(cb, 0, 0, (1.0, 0.0, 0.0), blend=False)
        assert cb.read(0, 0) == pytest.approx((1.0, 0.0, 0.0))
        assert unit.pixels_written == 1

    def test_blend_mixes_with_destination(self):
        cb = ColorBuffer(32)
        unit = BlendingUnit(alpha=0.5)
        cb.write(0, 0, (0.0, 0.0, 1.0))
        unit.emit(cb, 0, 0, (1.0, 0.0, 0.0), blend=True)
        assert cb.read(0, 0) == pytest.approx((0.5, 0.0, 0.5))
        assert unit.pixels_blended == 1

    def test_full_alpha_behaves_like_replace(self):
        cb = ColorBuffer(32)
        unit = BlendingUnit(alpha=1.0)
        cb.write(0, 0, (0.0, 1.0, 0.0))
        unit.emit(cb, 0, 0, (1.0, 0.0, 0.0), blend=True)
        assert cb.read(0, 0) == pytest.approx((1.0, 0.0, 0.0))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            BlendingUnit(alpha=1.5)
