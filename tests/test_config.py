"""Tests for repro.config — Table II parameters and derived geometry."""

import dataclasses

import pytest

from repro.config import (
    KIB,
    MIB,
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    PAPER_CONFIG,
    ShaderConfig,
    TEST_CONFIG,
)


class TestCacheConfig:
    def test_table2_texture_cache_geometry(self):
        cache = PAPER_CONFIG.texture_cache
        assert cache.size_bytes == 16 * KIB
        assert cache.line_bytes == 64
        assert cache.associativity == 4
        assert cache.hit_latency == 1

    def test_table2_l2_geometry(self):
        l2 = PAPER_CONFIG.l2_cache
        assert l2.size_bytes == 1 * MIB
        assert l2.associativity == 8
        assert l2.hit_latency == 12

    def test_table2_vertex_and_tile_caches(self):
        assert PAPER_CONFIG.vertex_cache.size_bytes == 8 * KIB
        assert PAPER_CONFIG.tile_cache.size_bytes == 64 * KIB

    def test_num_lines_and_sets(self):
        cache = CacheConfig("c", 16 * KIB, line_bytes=64, associativity=4)
        assert cache.num_lines == 256
        assert cache.num_sets == 64

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 1000, line_bytes=64)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 16 * KIB, line_bytes=64, associativity=3)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 0)


class TestDRAMConfig:
    def test_table2_latency_band(self):
        assert PAPER_CONFIG.dram.min_latency == 50
        assert PAPER_CONFIG.dram.max_latency == 100

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            DRAMConfig(min_latency=100, max_latency=50)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            DRAMConfig(min_latency=0, max_latency=10)


class TestShaderConfig:
    def test_defaults_positive(self):
        shader = ShaderConfig()
        assert shader.max_warps > 0
        assert shader.miss_overhead_cycles >= 0

    def test_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            ShaderConfig(max_warps=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            ShaderConfig(miss_overhead_cycles=-1)


class TestGPUConfig:
    def test_table2_globals(self):
        assert PAPER_CONFIG.screen_width == 1960
        assert PAPER_CONFIG.screen_height == 768
        assert PAPER_CONFIG.tile_size == 32
        assert PAPER_CONFIG.frequency_mhz == 600
        assert PAPER_CONFIG.num_shader_cores == 4

    def test_tile_grid_rounds_up(self):
        # 1960/32 = 61.25 -> 62 columns; 768/32 = 24 rows.
        assert PAPER_CONFIG.tiles_x == 62
        assert PAPER_CONFIG.tiles_y == 24
        assert PAPER_CONFIG.num_tiles == 62 * 24

    def test_quads_per_tile(self):
        assert PAPER_CONFIG.quads_per_tile_side == 16
        assert PAPER_CONFIG.quads_per_tile == 256

    def test_cycle_time(self):
        assert PAPER_CONFIG.cycle_time_ns == pytest.approx(1000 / 600)

    def test_scaled_changes_only_screen(self):
        scaled = PAPER_CONFIG.scaled(512, 256)
        assert scaled.screen_width == 512
        assert scaled.tile_size == PAPER_CONFIG.tile_size
        assert scaled.l2_cache == PAPER_CONFIG.l2_cache

    def test_upper_bound_config(self):
        ub = PAPER_CONFIG.with_upper_bound_cache()
        assert ub.num_shader_cores == 1
        assert ub.texture_cache.size_bytes == 4 * PAPER_CONFIG.texture_cache.size_bytes
        assert ub.texture_cache.associativity == PAPER_CONFIG.texture_cache.associativity

    def test_rejects_odd_tile_size(self):
        with pytest.raises(ValueError):
            GPUConfig(tile_size=31)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            GPUConfig(num_shader_cores=3)

    def test_rejects_nonpositive_screen(self):
        with pytest.raises(ValueError):
            GPUConfig(screen_width=0)

    def test_test_config_is_smaller(self):
        assert TEST_CONFIG.num_tiles < PAPER_CONFIG.num_tiles

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_CONFIG.tile_size = 16
