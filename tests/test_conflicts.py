"""Tests for the three-C miss decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.conflicts import decompose_misses
from repro.config import CacheConfig


def config(size=1024, ways=2):
    return CacheConfig("t", size, line_bytes=64, associativity=ways)


class TestDecomposition:
    def test_all_cold(self):
        result = decompose_misses(range(10), config())
        assert result.cold == 10
        assert result.capacity == 0
        assert result.conflict == 0

    def test_perfect_reuse_no_extra_misses(self):
        stream = [1, 2, 3] * 10
        result = decompose_misses(stream, config())
        assert result.cold == 3
        assert result.total_misses == 3

    def test_capacity_misses_detected(self):
        """A cyclic working set larger than the cache: every access
        misses, and beyond cold they are capacity misses."""
        lines = list(range(32))  # 32 lines > 16-line cache
        stream = lines * 4
        result = decompose_misses(stream, config(size=1024, ways=16))
        assert result.cold == 32
        assert result.capacity == 3 * 32
        # 16-way over 1 set == fully associative: no conflicts possible.
        assert result.conflict == 0

    def test_conflict_misses_detected(self):
        """Lines in one set, working set below total capacity: the
        fully-associative reference hits, the real cache conflicts."""
        cache = config(size=1024, ways=2)  # 8 sets, 16 lines
        conflicting = [0, 8, 16]  # all map to set 0
        stream = conflicting * 5
        result = decompose_misses(stream, cache)
        assert result.cold == 3
        assert result.capacity == 0
        assert result.conflict > 0

    def test_empty_stream(self):
        result = decompose_misses([], config())
        assert result.accesses == 0
        assert result.miss_rate == 0.0
        assert result.fraction("cold") == 0.0

    def test_fractions_sum_to_one(self):
        stream = [0, 8, 16] * 5 + list(range(100))
        result = decompose_misses(stream, config())
        total = sum(
            result.fraction(kind) for kind in ("cold", "capacity", "conflict")
        )
        assert total == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=60), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_accounting_consistent(self, stream):
        result = decompose_misses(stream, config())
        assert result.cold == len(set(stream))
        assert result.capacity >= 0
        assert result.conflict >= 0
        assert result.total_misses <= len(stream)

    def test_texture_stream_mostly_not_conflict_bound(
        self, tiny_config, tiny_trace
    ):
        """The DTexL premise check: L1 texture misses are dominated by
        cold + capacity, not by set conflicts."""
        stream = [
            line
            for entry in tiny_trace.tiles.values()
            for quad in entry.quads
            for line in quad.texture_lines
        ]
        result = decompose_misses(stream, tiny_config.texture_cache)
        assert result.fraction("conflict") < 0.35
