"""Cross-validation tests: independent components must agree.

These catch integration drift that unit tests cannot: the replayer, the
standalone cache model, the reuse-distance analyzer and the timing model
all reason about the same streams, so their numbers must reconcile.
"""

import pytest

from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.memory.cache import Cache
from repro.sim.replay import TraceReplayer


def per_core_streams(trace, scheduler, n_cores=4):
    streams = [[] for _ in range(n_cores)]
    for step, tile in enumerate(scheduler.tiles):
        entry = trace.tiles.get(tile)
        if entry is None:
            continue
        perm = scheduler.permutation_at(step)
        for quad in entry.quads:
            core = perm[scheduler.slot_of(quad.qx, quad.qy)] % n_cores
            streams[core].extend(quad.texture_lines)
    return streams


class TestReplayVsStandaloneCache:
    @pytest.mark.parametrize(
        "design_name", ["baseline", "CG-square-coupled", "HLB-flp2"]
    )
    def test_l1_misses_match_direct_simulation(
        self, tiny_config, tiny_trace, design_name
    ):
        """Replaying through the hierarchy and simulating each core's
        stream on a standalone Cache must give identical L1 miss counts."""
        design = PAPER_CONFIGURATIONS[design_name]
        result = TraceReplayer(tiny_config).run(tiny_trace, design)

        scheduler = design.build_scheduler(tiny_config)
        direct_misses = 0
        for stream in per_core_streams(tiny_trace, scheduler):
            cache = Cache(tiny_config.texture_cache)
            for line in stream:
                cache.access_line(line)
            direct_misses += cache.stats.misses
        assert result.l1_misses == direct_misses

    def test_l2_texture_accesses_equal_l1_misses(self, tiny_config, tiny_trace):
        """Texture traffic arriving at the L2 is exactly the L1 misses
        (plus the vertex/tile-cache misses, measured separately)."""
        result = TraceReplayer(tiny_config).run(tiny_trace, BASELINE)
        non_texture = result.vertex_accesses + result.tile_accesses
        # vertex/tile caches filter some of their traffic before the L2:
        assert result.l2_accesses <= result.l1_misses + non_texture
        assert result.l2_accesses >= result.l1_misses


class TestReuseProfileVsRealCache:
    def test_fa_prediction_brackets_set_associative(
        self, tiny_config, tiny_trace
    ):
        """A fully-associative LRU (reuse-profile prediction) can only
        do better than the real 4-way cache on the same stream."""
        from repro.analysis.reuse import reuse_profile

        scheduler = BASELINE.build_scheduler(tiny_config)
        for stream in per_core_streams(tiny_trace, scheduler):
            if not stream:
                continue
            profile = reuse_profile(stream)
            predicted_misses = round(
                profile.miss_rate(tiny_config.texture_cache.num_lines)
                * len(stream)
            )
            cache = Cache(tiny_config.texture_cache)
            for line in stream:
                cache.access_line(line)
            assert predicted_misses <= cache.stats.misses + 1


class TestTimingReconciliation:
    def test_coupled_time_at_least_sum_of_tile_maxima(
        self, tiny_config, tiny_trace
    ):
        """The coupled pipeline can never beat the barrier lower bound:
        the sum over tiles of the slowest SC's fragment time."""
        result = TraceReplayer(tiny_config).run(tiny_trace, BASELINE)
        lower_bound = sum(
            max(per_sc) for per_sc in result.timing.per_tile_sc_cycles
        )
        assert result.frame_cycles >= lower_bound

    def test_decoupled_time_at_least_per_core_chain(
        self, tiny_config, tiny_trace
    ):
        """The decoupled pipeline can never beat its busiest SC chain."""
        from repro.core.dtexl import DTEXL_BEST

        result = TraceReplayer(tiny_config).run(tiny_trace, DTEXL_BEST)
        chains = [0] * tiny_config.num_shader_cores
        for per_sc in result.timing.per_tile_sc_cycles:
            for core, cycles in enumerate(per_sc):
                chains[core] += cycles
        assert result.frame_cycles >= max(chains)

    def test_busy_cycles_equal_per_tile_sums(self, tiny_config, tiny_trace):
        result = TraceReplayer(tiny_config).run(tiny_trace, BASELINE)
        for core in range(tiny_config.num_shader_cores):
            total = sum(
                per_sc[core] for per_sc in result.timing.per_tile_sc_cycles
            )
            assert result.timing.sc_busy_cycles[core] == total


class TestEnergyReconciliation:
    def test_component_counts_match_replay(self, tiny_config, tiny_trace):
        """Recomputing energy from the replay's own counters must give
        exactly the breakdown the replay reported."""
        from repro.power.energy_model import EnergyModel

        result = TraceReplayer(tiny_config).run(tiny_trace, BASELINE)
        recomputed = EnergyModel().frame_energy(
            l1_accesses=result.l1_accesses,
            l2_accesses=result.l2_accesses,
            dram_accesses=result.dram_accesses,
            vertex_accesses=result.vertex_accesses,
            tile_accesses=result.tile_accesses,
            sc_issue_cycles=sum(result.timing.sc_issue_cycles),
            quads_processed=result.total_quads,
            frame_cycles=result.frame_cycles,
            frequency_mhz=tiny_config.frequency_mhz,
            framebuffer_write_lines=result.framebuffer_write_lines,
        )
        assert recomputed.total_mj == pytest.approx(result.energy.total_mj)
