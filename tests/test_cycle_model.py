"""Tests for the cycle-level SC model and its agreement with the
analytic model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ShaderConfig
from repro.shader.cycle_model import CycleAccurateShaderCore
from repro.shader.shader_core import ShaderCore, WarpCost


def cycle_core(max_warps=4, issue_rate=1):
    return CycleAccurateShaderCore(
        ShaderConfig(max_warps=max_warps, issue_rate=issue_rate)
    )


def analytic_core(max_warps=4, issue_rate=1):
    return ShaderCore(ShaderConfig(max_warps=max_warps, issue_rate=issue_rate))


class TestCycleModelBasics:
    def test_empty(self):
        assert cycle_core().execute_subtile([]).total_cycles == 0

    def test_single_compute_only_warp(self):
        result = cycle_core().execute_subtile([WarpCost(10, 0)])
        assert result.total_cycles == 10

    def test_single_warp_exposes_full_stall(self):
        result = cycle_core().execute_subtile([WarpCost(10, 30)])
        assert result.total_cycles >= 40

    def test_two_warps_overlap_stalls(self):
        single = cycle_core(max_warps=1).execute_subtile(
            [WarpCost(10, 30)] * 2
        )
        dual = cycle_core(max_warps=2).execute_subtile(
            [WarpCost(10, 30)] * 2
        )
        assert dual.total_cycles < single.total_cycles

    def test_compute_bound_at_high_occupancy(self):
        """With many warps and small stalls, time approaches total compute."""
        warps = [WarpCost(20, 4)] * 16
        result = cycle_core(max_warps=8).execute_subtile(warps)
        compute = 20 * 16
        assert compute <= result.total_cycles <= compute * 1.2

    def test_never_faster_than_compute(self):
        warps = [WarpCost(3, 100)] * 8
        result = cycle_core(max_warps=8).execute_subtile(warps)
        assert result.total_cycles >= 24

    def test_never_slower_than_serial(self):
        warps = [WarpCost(5, 17), WarpCost(3, 8), WarpCost(9, 0)]
        result = cycle_core(max_warps=2).execute_subtile(warps)
        assert result.total_cycles <= 5 + 17 + 3 + 8 + 9 + 3  # + retire slack


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("max_warps", [1, 2, 4, 8])
    @pytest.mark.parametrize("stall", [0, 8, 40])
    def test_uniform_warps_within_tolerance(self, max_warps, stall):
        warps = [WarpCost(10, stall)] * 32
        cycle = cycle_core(max_warps=max_warps).execute_subtile(warps)
        analytic = analytic_core(max_warps=max_warps).execute_subtile(warps)
        assert analytic.total_cycles == pytest.approx(
            cycle.total_cycles, rel=0.35
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),
                st.integers(min_value=0, max_value=120),
            ),
            min_size=1,
            max_size=40,
        ),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_models_agree_directionally(self, costs, max_warps):
        """The analytic estimate stays within the same bounds the cycle
        model obeys, and within 2x of it (it is a throughput model, not
        a scheduler)."""
        warps = [WarpCost(c, s) for c, s in costs]
        cycle = cycle_core(max_warps=max_warps).execute_subtile(warps)
        analytic = analytic_core(max_warps=max_warps).execute_subtile(warps)
        assert analytic.total_cycles <= cycle.total_cycles * 2
        assert cycle.total_cycles <= analytic.total_cycles * 2 + 8
