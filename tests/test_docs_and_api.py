"""Documentation and public-API hygiene tests."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

REPO = pathlib.Path(__file__).parent.parent


def all_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module.name == "repro.__main__":  # importing it runs the CLI
            continue
        names.append(module.name)
    return names


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/ARCHITECTURE.md"]
    )
    def test_document_present_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000

    def test_design_references_real_bench_files(self):
        text = (REPO / "DESIGN.md").read_text()
        for line in text.splitlines():
            if "benchmarks/test_" in line:
                for token in line.split("`"):
                    if token.startswith("benchmarks/test_"):
                        assert (REPO / token).exists(), token

    def test_readme_examples_exist(self):
        text = (REPO / "README.md").read_text()
        for line in text.splitlines():
            if "`examples/" in line:
                for token in line.split("`"):
                    if token.startswith("examples/") and token.endswith(".py"):
                        assert (REPO / token).exists(), token


class TestModuleHygiene:
    @pytest.mark.parametrize("name", all_modules())
    def test_module_imports_and_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "package",
        ["repro.core", "repro.memory", "repro.geometry", "repro.texture",
         "repro.raster", "repro.tiling", "repro.shader", "repro.sim",
         "repro.workloads", "repro.analysis", "repro.power"],
    )
    def test_package_all_resolves(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"


class TestVersion:
    def test_version_matches_pyproject(self):
        text = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in text
