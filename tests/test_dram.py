"""Tests for the DRAM latency model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMConfig
from repro.memory.dram import DRAM


class TestLatencyBand:
    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=100, deadline=None)
    def test_latency_within_table2_band(self, line):
        dram = DRAM()
        latency = dram.latency_for_line(line)
        assert 50 <= latency <= 100

    def test_deterministic(self):
        dram = DRAM()
        assert dram.latency_for_line(1234) == dram.latency_for_line(1234)

    def test_latencies_vary_across_lines(self):
        dram = DRAM()
        latencies = {dram.latency_for_line(line) for line in range(64)}
        assert len(latencies) > 5

    def test_custom_band(self):
        dram = DRAM(DRAMConfig(min_latency=10, max_latency=10))
        assert dram.latency_for_line(99) == 10


class TestStats:
    def test_access_accumulates(self):
        dram = DRAM()
        total = sum(dram.access_line(line) for line in range(10))
        assert dram.stats.accesses == 10
        assert dram.stats.total_latency == total
        assert 50 <= dram.stats.mean_latency <= 100

    def test_mean_latency_zero_when_idle(self):
        assert DRAM().stats.mean_latency == 0.0

    def test_reset(self):
        dram = DRAM()
        dram.access_line(5)
        dram.reset()
        assert dram.stats.accesses == 0
