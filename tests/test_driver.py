"""Tests for the functional frame renderer (pass 1) and its trace."""

import pytest

from repro.sim.driver import FrameRenderer
from repro.texture.sampler import FilterMode, Sampler


class TestTraceStructure:
    def test_trace_covers_every_tile(self, tiny_config, tiny_trace):
        assert len(tiny_trace.tiles) == tiny_config.num_tiles

    def test_quads_keyed_by_their_tile(self, tiny_trace):
        for tile, entry in tiny_trace.tiles.items():
            for quad in entry.quads:
                assert quad.tile == tile

    def test_quad_coordinates_within_tile(self, tiny_config, tiny_trace):
        side = tiny_config.quads_per_tile_side
        for entry in tiny_trace.tiles.values():
            for quad in entry.quads:
                assert 0 <= quad.qx < side
                assert 0 <= quad.qy < side

    def test_every_quad_has_coverage(self, tiny_trace):
        for entry in tiny_trace.tiles.values():
            for quad in entry.quads:
                assert quad.covered_pixels >= 1

    def test_quads_ordered_by_primitive_within_tile(self, tiny_trace):
        for entry in tiny_trace.tiles.values():
            pids = [q.primitive_id for q in entry.quads]
            assert pids == sorted(pids)

    def test_totals_consistent(self, tiny_trace):
        assert tiny_trace.total_quads == tiny_trace.stats.num_quads
        assert tiny_trace.total_quads == sum(
            len(e.quads) for e in tiny_trace.tiles.values()
        )

    def test_vertex_lines_present(self, tiny_trace, tiny_workload):
        indices = sum(len(d.mesh.indices) for d in tiny_workload.scene.draws)
        assert len(tiny_trace.vertex_lines) == indices

    def test_fetch_cycles_positive(self, tiny_trace):
        assert all(e.fetch_cycles >= 1 for e in tiny_trace.tiles.values())

    def test_stats_overdraw_at_least_background(self, tiny_config, tiny_trace):
        assert tiny_trace.stats.overdraw_factor(tiny_config) >= 0.9


class TestDeterminism:
    def test_same_workload_same_trace(self, tiny_config, tiny_workload):
        a, _ = FrameRenderer(tiny_config).render(tiny_workload)
        b, _ = FrameRenderer(tiny_config).render(tiny_workload)
        assert a.total_quads == b.total_quads
        assert a.total_texture_lines == b.total_texture_lines
        assert a.vertex_lines == b.vertex_lines


class TestImageOutput:
    def test_with_image_produces_framebuffer(self, tiny_config, tiny_workload):
        trace, framebuffer = FrameRenderer(tiny_config).render(
            tiny_workload, with_image=True
        )
        assert framebuffer is not None
        assert framebuffer.image.shape == (
            tiny_config.screen_height, tiny_config.screen_width, 3
        )
        assert framebuffer.image.max() > 0.0

    def test_without_image_skips_framebuffer(self, tiny_config, tiny_workload):
        _, framebuffer = FrameRenderer(tiny_config).render(tiny_workload)
        assert framebuffer is None


class TestSamplerChoice:
    def test_trilinear_touches_more_lines(self, tiny_config, tiny_workload):
        bilinear, _ = FrameRenderer(
            tiny_config, Sampler(FilterMode.BILINEAR)
        ).render(tiny_workload)
        trilinear, _ = FrameRenderer(
            tiny_config, Sampler(FilterMode.TRILINEAR)
        ).render(tiny_workload)
        assert trilinear.total_texture_lines >= bilinear.total_texture_lines
        assert trilinear.total_quads == bilinear.total_quads
