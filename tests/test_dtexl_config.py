"""Tests for the named DTexL design points."""

import pytest

from repro.config import GPUConfig
from repro.core.dtexl import (
    BASELINE,
    DTEXL_BEST,
    FIG8_MAPPING_NAMES,
    PAPER_CONFIGURATIONS,
    DTexLConfig,
)


class TestRegistry:
    def test_baseline_matches_paper(self):
        assert BASELINE.grouping == "FG-xshift2"
        assert BASELINE.order == "zorder"
        assert BASELINE.decoupled is False

    def test_dtexl_best_matches_paper(self):
        assert DTEXL_BEST.grouping == "CG-square"
        assert DTEXL_BEST.assignment == "flp2"
        assert DTEXL_BEST.order == "hilbert"
        assert DTEXL_BEST.decoupled is True

    def test_all_fig8_mappings_registered(self):
        for name in FIG8_MAPPING_NAMES:
            assert name in PAPER_CONFIGURATIONS

    def test_fig8_mappings_are_decoupled_coarse(self):
        for name in FIG8_MAPPING_NAMES:
            cfg = PAPER_CONFIGURATIONS[name]
            assert cfg.decoupled
            assert cfg.grouping.startswith("CG-")

    def test_sorder_rows_use_yrect(self):
        assert PAPER_CONFIGURATIONS["Sorder-const"].grouping == "CG-yrect"
        assert PAPER_CONFIGURATIONS["Sorder-flp"].grouping == "CG-yrect"

    def test_upper_bound_flag(self):
        assert PAPER_CONFIGURATIONS["upper-bound"].upper_bound


class TestBuilding:
    def test_build_scheduler(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        scheduler = DTEXL_BEST.build_scheduler(config)
        assert scheduler.num_steps == config.num_tiles

    def test_effective_config_passthrough(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        assert BASELINE.effective_gpu_config(config) is config

    def test_effective_config_upper_bound(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        ub = PAPER_CONFIGURATIONS["upper-bound"].effective_gpu_config(config)
        assert ub.num_shader_cores == 1
        assert ub.texture_cache.size_bytes == 4 * config.texture_cache.size_bytes

    def test_resolvers(self):
        assert DTEXL_BEST.resolve_grouping().name == "CG-square"
        assert DTEXL_BEST.resolve_assignment().name == "flp2"

    def test_unknown_grouping_fails_at_build(self):
        config = GPUConfig(screen_width=128, screen_height=64)
        bad = DTexLConfig(name="bad", grouping="CG-pentagon")
        with pytest.raises(KeyError):
            bad.build_scheduler(config)
