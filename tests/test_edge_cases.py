"""Edge-case and robustness tests across the stack."""

import pytest

from repro.config import GPUConfig
from repro.core.dtexl import BASELINE, DTEXL_BEST
from repro.geometry.mesh import Scene
from repro.sim.driver import FrameRenderer
from repro.sim.replay import TraceReplayer
from repro.texture.texture import TextureAllocator
from repro.workloads.recipe import BuiltWorkload, SceneRecipe


class TestEmptyAndDegenerateScenes:
    def test_empty_scene_renders(self):
        config = GPUConfig(screen_width=64, screen_height=64)
        workload = BuiltWorkload(
            scene=Scene(name="empty"), allocator=TextureAllocator()
        )
        # An empty scene still needs one texture slot for the allocator.
        trace, _ = FrameRenderer(config).render(workload)
        assert trace.total_quads == 0
        assert trace.stats.num_primitives == 0

    def test_empty_trace_replays(self):
        config = GPUConfig(screen_width=64, screen_height=64)
        workload = BuiltWorkload(
            scene=Scene(name="empty"), allocator=TextureAllocator()
        )
        trace, _ = FrameRenderer(config).render(workload)
        result = TraceReplayer(config).run(trace, BASELINE)
        assert result.total_quads == 0
        assert result.l1_accesses == 0
        # The pipeline still walks (and flushes) every tile.
        assert result.frame_cycles > 0
        assert result.framebuffer_write_lines > 0

    def test_empty_trace_decoupled(self):
        config = GPUConfig(screen_width=64, screen_height=64)
        workload = BuiltWorkload(
            scene=Scene(name="empty"), allocator=TextureAllocator()
        )
        trace, _ = FrameRenderer(config).render(workload)
        result = TraceReplayer(config).run(trace, DTEXL_BEST)
        assert result.total_quads == 0


class TestOddScreenShapes:
    @pytest.mark.parametrize(
        "width,height", [(32, 32), (96, 32), (32, 96), (160, 64)]
    )
    def test_various_grids_render_and_replay(self, width, height):
        config = GPUConfig(screen_width=width, screen_height=height)
        recipe = SceneRecipe(
            name="edge", seed=13, is_3d=False, texture_budget_mib=0.2,
            depth_complexity=1.0, sprite_size=(0.3, 0.6),
        )
        trace, _ = FrameRenderer(config).render(recipe.build(config))
        assert trace.total_quads > 0
        base = TraceReplayer(config).run(trace, BASELINE)
        dtexl = TraceReplayer(config).run(trace, DTEXL_BEST)
        assert base.total_quads == dtexl.total_quads

    def test_non_multiple_screen_clips_correctly(self):
        """A 48x48 screen has partial edge tiles; no quad may exceed it."""
        config = GPUConfig(screen_width=48, screen_height=48)
        recipe = SceneRecipe(
            name="clip", seed=14, is_3d=False, texture_budget_mib=0.2,
            depth_complexity=1.0,
        )
        trace, _ = FrameRenderer(config).render(recipe.build(config))
        assert trace.stats.pixels_shaded <= 48 * 48 * 10
        for tile, entry in trace.tiles.items():
            for quad in entry.quads:
                px = tile[0] * 32 + quad.qx * 2
                py = tile[1] * 32 + quad.qy * 2
                assert px < 48 and py < 48

    def test_single_tile_screen(self):
        config = GPUConfig(screen_width=32, screen_height=32)
        assert config.num_tiles == 1
        scheduler = DTEXL_BEST.build_scheduler(config)
        assert scheduler.tiles == [(0, 0)]
        assert scheduler.permutation_at(0) == (0, 1, 2, 3)


class TestSingleCoreConfigs:
    def test_two_core_config_replays(self):
        """Core counts other than 4 still work (slots fold via modulo)."""
        config = GPUConfig(
            screen_width=64, screen_height=64, num_shader_cores=2
        )
        recipe = SceneRecipe(
            name="two", seed=15, is_3d=False, texture_budget_mib=0.2,
            depth_complexity=1.0,
        )
        trace, _ = FrameRenderer(config).render(recipe.build(config))
        result = TraceReplayer(config).run(trace, BASELINE)
        assert len(result.timing.sc_busy_cycles) == 2
        assert result.total_quads == trace.total_quads

    def test_eight_core_config_replays(self):
        config = GPUConfig(
            screen_width=64, screen_height=64, num_shader_cores=8
        )
        recipe = SceneRecipe(
            name="eight", seed=15, is_3d=False, texture_budget_mib=0.2,
            depth_complexity=1.0,
        )
        trace, _ = FrameRenderer(config).render(recipe.build(config))
        result = TraceReplayer(config).run(trace, BASELINE)
        assert len(result.timing.sc_busy_cycles) == 8
        # Slots 0..3 fold onto cores 0..3; cores 4..7 stay idle.
        assert sum(
            1 for counts in result.per_tile_quad_counts
            for core, n in enumerate(counts) if core >= 4 and n > 0
        ) == 0


class TestTextureEdgeCases:
    def test_one_by_one_texture(self):
        from repro.texture.texture import Texture

        texture = Texture(0, 1, 1, base_address=1 << 28)
        assert texture.num_mip_levels == 1
        assert texture.texel_line(0, 0) == (1 << 28) // 64

    def test_extreme_aspect_texture(self):
        from repro.texture.texture import Texture

        texture = Texture(0, 512, 2, base_address=1 << 28)
        seen = set()
        for y in range(2):
            for x in range(512):
                addr = texture.texel_address(x, y, 0)
                assert addr not in seen
                seen.add(addr)

    def test_sampling_at_uv_boundaries(self):
        from repro.texture.sampler import Sampler
        from repro.texture.texture import Texture

        texture = Texture(0, 64, 64, base_address=1 << 28)
        sampler = Sampler()
        for uv in [(0.0, 0.0), (1.0, 1.0), (0.0, 1.0), (-0.25, 2.5)]:
            footprint = sampler.footprint(texture, *uv)
            assert footprint.line_count >= 1
