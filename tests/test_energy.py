"""Tests for the event-energy GPU power model."""

import pytest

from repro.power.energy_model import EnergyBreakdown, EnergyModel, EnergyParams


def frame(model, **overrides):
    # Ratios mirror a real replayed frame: SCs busy most of the frame,
    # ~2.5 texture accesses per quad, ~20% L1 miss rate.
    kwargs = dict(
        l1_accesses=160_000,
        l2_accesses=32_000,
        dram_accesses=2_000,
        vertex_accesses=4_000,
        tile_accesses=4_000,
        sc_issue_cycles=300_000,
        quads_processed=64_000,
        frame_cycles=100_000,
        frequency_mhz=600,
    )
    kwargs.update(overrides)
    return model.frame_energy(**kwargs)


class TestEnergyParams:
    def test_defaults_nonnegative(self):
        EnergyParams()  # must not raise

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyParams(l2_access_nj=-1.0)

    def test_event_energies_ordered_by_structure_size(self):
        p = EnergyParams()
        assert p.l1_access_nj < p.l2_access_nj < p.dram_access_nj


class TestBreakdown:
    def test_total_is_sum_of_components(self):
        breakdown = frame(EnergyModel())
        assert breakdown.total_mj == pytest.approx(
            sum(breakdown.components_mj.values())
        )

    def test_dynamic_excludes_static(self):
        breakdown = frame(EnergyModel())
        assert breakdown.dynamic_mj == pytest.approx(
            breakdown.total_mj - breakdown.components_mj["static"]
        )

    def test_fractions_sum_to_one(self):
        breakdown = frame(EnergyModel())
        total = sum(
            breakdown.fraction(name) for name in breakdown.components_mj
        )
        assert total == pytest.approx(1.0)

    def test_empty_breakdown(self):
        empty = EnergyBreakdown()
        assert empty.total_mj == 0.0
        assert empty.fraction("l2") == 0.0


class TestScaling:
    def test_static_scales_with_frame_time(self):
        model = EnergyModel()
        short = frame(model, frame_cycles=10_000)
        long = frame(model, frame_cycles=20_000)
        assert long.components_mj["static"] == pytest.approx(
            2 * short.components_mj["static"]
        )

    def test_l2_component_scales_with_accesses(self):
        model = EnergyModel()
        few = frame(model, l2_accesses=100)
        many = frame(model, l2_accesses=300)
        assert many.components_mj["l2"] == pytest.approx(
            3 * few.components_mj["l2"]
        )

    def test_faster_clock_reduces_static_energy(self):
        model = EnergyModel()
        slow = frame(model, frequency_mhz=300)
        fast = frame(model, frequency_mhz=600)
        assert fast.components_mj["static"] < slow.components_mj["static"]

    def test_dram_dominates_per_event(self):
        model = EnergyModel()
        breakdown = frame(model, l2_accesses=100, dram_accesses=100,
                          l1_accesses=100)
        assert (
            breakdown.components_mj["dram"]
            > breakdown.components_mj["l2"]
            > breakdown.components_mj["l1_texture"]
        )

    def test_static_fraction_reasonable(self):
        """Calibration guard: 20-55% of a typical frame is static."""
        breakdown = frame(EnergyModel())
        assert 0.1 < breakdown.fraction("static") < 0.7


class TestFramebufferWrites:
    def test_component_present_and_scaling(self):
        model = EnergyModel()
        none = frame(model, framebuffer_write_lines=0)
        some = frame(model, framebuffer_write_lines=10_000)
        assert none.components_mj["framebuffer"] == 0.0
        assert some.components_mj["framebuffer"] > 0.0
        more = frame(model, framebuffer_write_lines=20_000)
        assert more.components_mj["framebuffer"] == pytest.approx(
            2 * some.components_mj["framebuffer"]
        )

    def test_rejects_negative_write_energy(self):
        with pytest.raises(ValueError):
            EnergyParams(framebuffer_write_nj=-0.1)
