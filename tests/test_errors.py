"""Tests for the typed error taxonomy and its adoption."""

import pytest

from repro.config import CacheConfig, GPUConfig
from repro.errors import (
    BudgetExceededError,
    ConfigError,
    ReplayError,
    ReproError,
    TraceIntegrityError,
    UnknownWorkloadError,
    WorkloadError,
    is_transient,
)
from repro.workloads.animation import Animation
from repro.workloads.games import build_game
from repro.workloads.recipe import plan_texture_sides


class TestHierarchy:
    def test_every_leaf_is_a_repro_error(self):
        for leaf in (ConfigError, WorkloadError, UnknownWorkloadError,
                     TraceIntegrityError, ReplayError, BudgetExceededError):
            assert issubclass(leaf, ReproError)

    def test_budget_is_a_replay_error(self):
        assert issubclass(BudgetExceededError, ReplayError)

    def test_value_error_compatibility(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(WorkloadError, ValueError)

    def test_key_error_compatibility(self):
        assert issubclass(UnknownWorkloadError, KeyError)

    def test_unknown_workload_str_is_not_reprd(self):
        error = UnknownWorkloadError("unknown game 'XX'")
        assert str(error) == "unknown game 'XX'"


class TestTransience:
    def test_not_transient_by_default(self):
        assert not is_transient(ReproError("boom"))

    def test_constructor_flag(self):
        assert is_transient(ReproError("boom", transient=True))
        assert not is_transient(ReplayError("boom", transient=False))

    def test_foreign_exceptions_are_not_transient(self):
        assert not is_transient(RuntimeError("boom"))


class TestAdoption:
    def test_gpu_config_raises_config_error(self):
        with pytest.raises(ConfigError):
            GPUConfig(screen_width=0)
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=-1)

    def test_unknown_game_raises_typed_key_error(self):
        with pytest.raises(UnknownWorkloadError):
            build_game("NOPE", GPUConfig(screen_width=128, screen_height=64))
        with pytest.raises(UnknownWorkloadError):
            Animation.of_game("NOPE")

    def test_bad_animation_raises_workload_error(self):
        with pytest.raises(WorkloadError):
            Animation.of_game("SWa", num_frames=0)

    def test_bad_texture_budget_raises_workload_error(self):
        import random
        with pytest.raises(WorkloadError):
            plan_texture_sides(0, 4, random.Random(1))
