"""Smoke tests for the example scripts (the fast ones run for real)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py", "render_frame.py", "design_space_explorer.py",
            "decoupled_pipeline_demo.py", "suite_evaluation.py",
            "animation_study.py", "cache_analysis.py",
        } <= names

    def test_all_examples_compile(self):
        import py_compile

        for path in EXAMPLES.glob("*.py"):
            py_compile.compile(str(path), doraise=True)

    def test_decoupled_pipeline_demo_runs(self):
        result = run_example("decoupled_pipeline_demo.py")
        assert result.returncode == 0, result.stderr
        assert "rotating hot subtile" in result.stdout
        assert "Decoupled-Barrier" in result.stdout

    def test_animation_study_runs_small(self):
        result = run_example("animation_study.py", "SWa", "2")
        assert result.returncode == 0, result.stderr
        assert "warm-up ratio" in result.stdout

    def test_design_space_explorer_runs_small(self):
        result = run_example("design_space_explorer.py", "SWa", "128x64")
        assert result.returncode == 0, result.stderr
        assert "Sweep 3" in result.stdout
