"""Tests for the experiment runner and suite aggregation."""

import pytest

from repro.core.dtexl import BASELINE, PAPER_CONFIGURATIONS
from repro.sim.experiment import ExperimentRunner, SuiteResult


@pytest.fixture(scope="module")
def runner(tiny_config):
    return ExperimentRunner(tiny_config, games=["GTr", "SWa"])


class TestTraceCache:
    def test_trace_rendered_once(self, runner):
        a = runner.trace_for("GTr")
        b = runner.trace_for("GTr")
        assert a is b

    def test_run_uses_cached_trace(self, runner):
        runner.run("GTr", BASELINE)
        assert "GTr" in runner._traces


class TestSuite:
    def test_run_suite_covers_selected_games(self, runner):
        result = runner.run_suite(BASELINE)
        assert set(result.per_game) == {"GTr", "SWa"}
        assert result.design_point == "baseline"

    def test_total_l2(self, runner):
        result = runner.run_suite(BASELINE)
        assert result.total_l2_accesses == sum(
            r.l2_accesses for r in result.per_game.values()
        )

    def test_speedup_vs_self_is_one(self, runner):
        base = runner.run_suite(BASELINE)
        assert base.mean_speedup_vs(base) == pytest.approx(1.0)

    def test_l2_decrease_vs_self_is_zero(self, runner):
        base = runner.run_suite(BASELINE)
        assert base.mean_l2_decrease_vs(base) == pytest.approx(0.0)

    def test_energy_decrease_vs_self_is_zero(self, runner):
        base = runner.run_suite(BASELINE)
        assert base.mean_energy_decrease_vs(base) == pytest.approx(0.0)

    def test_cg_suite_beats_baseline_l2(self, runner):
        base = runner.run_suite(BASELINE)
        cg = runner.run_suite(PAPER_CONFIGURATIONS["CG-square-coupled"])
        assert cg.mean_l2_decrease_vs(base) > 10.0

    def test_default_games_are_the_full_suite(self, tiny_config):
        full = ExperimentRunner(tiny_config)
        assert len(full.games) == 10
